// windim_cli - dimension, evaluate and simulate window flow control for
// a network described in the text spec format (see src/cli/spec.h).
//
//   windim_cli dimension <spec-file> [--solver=NAME] [--max-window=N]
//                        [--objective=power|gpower=A|delaycap=T] [--csv]
//   windim_cli evaluate  <spec-file> E1 E2 ... [--solver=NAME]
//                        [--solver-threads=N]
//   windim_cli simulate  <spec-file> E1 E2 ... [--time=S] [--seed=N]
//                        [--buffers=K] [--permits=P] [--reverse-acks]
//                        [--reps=N]
//   windim_cli sweep     <spec-file> [--loads=0.5,1,1.5,2] [--solver=NAME]
//   windim_cli capacity  <spec-file> --budget=KBPS [--rule=sqrt|prop]
//   windim_cli serve     --socket=PATH | --stdio [--threads=N]
//   windim_cli solvers
//
// Solver names come from the solver registry (windim_cli solvers lists
// them); --evaluator is accepted as a compatibility alias of --solver.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "cli/spec.h"
#include "control/matrix.h"
#include "control/registry.h"
#include "control/scenario.h"
#include "obs/convergence.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "serve/server.h"
#include "sim/msgnet_sim.h"
#include "sim/replicate.h"
#include "solver/registry.h"
#include "solver/workspace.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "verify/corpus.h"
#include "verify/fuzz.h"
#include "windim/windim.h"

namespace {

using namespace windim;

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  windim_cli dimension <spec> [--solver=NAME] [--max-window=N]\n"
      "                       [--objective=power|gpower=A|delaycap=T|\n"
      "                        alpha-fair|power-fair-constrained] [--csv]\n"
      "                       [--alpha=0|1|2|inf] [--min-fairness=F]\n"
      "                       [--max-delay=T]\n"
      "                       [--pareto-out=FILE] [--pareto-points=N]\n"
      "                       [--threads=N] [--solver-threads=N]\n"
      "                       [--max-evals=N] [--cold-start]\n"
      "                       [--metrics-out=FILE] [--trace-out=FILE]\n"
      "                       [--trace-spans-out=FILE] "
      "[--convergence-out=FILE]\n"
      "  windim_cli evaluate  <spec> E1 E2 ... [--solver=NAME]\n"
      "                       [--solver-threads=N]\n"
      "  windim_cli simulate  <spec> E1 E2 ... [--time=S] [--seed=N]\n"
      "                       [--buffers=K] [--permits=P] [--reverse-acks]\n"
      "                       [--reps=N]\n"
      "  windim_cli sweep     <spec> [--loads=0.5,1,1.5,2] [--solver=NAME]\n"
      "                       [--threads=N]\n"
      "  windim_cli scenario  <spec> [--policies=A,B] [--scenarios=A,B]\n"
      "                       [--time=S] [--warmup=S] [--seed=N] "
      "[--jobs=N]\n"
      "                       [--max-window=N] [--solver=NAME]\n"
      "                       [--tracking-period=S] "
      "[--ramp=T:F,T:F,...]\n"
      "                       [--scorecard-out=FILE] [--metrics-out=FILE]\n"
      "                       [--trace-spans-out=FILE]\n"
      "  windim_cli capacity  <spec> --budget=KBPS [--rule=sqrt|prop]\n"
      "  windim_cli serve     --socket=PATH | --stdio [--threads=N]\n"
      "                       [--cache-size=N] [--max-request-bytes=N]\n"
      "                       [--default-deadline-ms=MS] [--no-window]\n"
      "                       [--metrics-out=FILE] [--metrics-listen=FILE]\n"
      "                       [--flight-out=FILE]\n"
      "  windim_cli solvers\n"
      "  windim_cli fuzz      [--seeds=N] [--family=NAME,...] [--jobs=N]\n"
      "                       [--solver=NAME,...] [--time-budget=SECONDS]\n"
      "                       [--base-seed=N] [--corpus-out=DIR]\n"
      "                       [--replay=DIR|FILE] [--sim] [--no-shrink]\n"
      "                       [--no-ctmc] [--quiet] [--metrics-out=FILE]\n"
      "                       [--trace-spans-out=FILE]\n"
      "solvers: see `windim_cli solvers` (--evaluator = alias of "
      "--solver)\n"
      "fuzz families: fcfs-closed disciplines queue-dependent semiclosed\n"
      "               mixed cyclic windim (default: all); large-cyclic\n"
      "               (1k+ chains) must be requested by name\n");
  return 2;
}

/// Resolves a --solver/--evaluator name against the registry; prints
/// the registry's available-solver error on unknown names.
const solver::Solver* resolve_solver(const std::string& name) {
  try {
    return &solver::SolverRegistry::instance().require(name);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return nullptr;
  }
}

/// "--key=value" matcher; returns the value part.
std::optional<std::string> flag_value(const std::string& arg,
                                      const char* key) {
  const std::string prefix = std::string("--") + key + "=";
  if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  return std::nullopt;
}

/// Writes the global metrics snapshot as one JSON object.
bool write_metrics_json(const std::string& path) {
  const std::string body = obs::MetricsRegistry::global().snapshot().to_json();
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write '%s'\n", path.c_str());
    return false;
  }
  out << body << '\n';
  return static_cast<bool>(out);
}

std::optional<cli::NetworkSpec> load_spec(const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open '%s'\n", path);
    return std::nullopt;
  }
  try {
    return cli::parse_network_spec(in);
  } catch (const cli::SpecError& e) {
    std::fprintf(stderr, "error: %s: %s\n", path, e.what());
    return std::nullopt;
  }
}

void print_evaluation(const core::Evaluation& ev,
                      const std::vector<net::TrafficClass>& classes) {
  std::printf("windows:    %s\n", util::format_window(ev.windows).c_str());
  std::printf("throughput: %.3f msg/s\n", ev.throughput);
  std::printf("delay:      %.4f s\n", ev.mean_delay);
  std::printf("power:      %.2f\n", ev.power);
  std::printf("fairness:   %.4f\n", ev.fairness);
  for (std::size_t r = 0; r < classes.size(); ++r) {
    std::printf("  %-12s window %d  throughput %8.3f msg/s  delay %7.2f ms\n",
                classes[r].name.c_str(), ev.windows[r],
                ev.class_throughput[r], ev.class_delay[r] * 1000.0);
  }
}

int cmd_dimension(const cli::NetworkSpec& spec,
                  const std::vector<std::string>& args) {
  core::DimensionOptions options;
  bool csv = false;
  std::string metrics_out;
  std::string trace_out;
  std::string spans_out;
  std::string convergence_out;
  std::string pareto_out;
  int pareto_points = 9;
  for (const std::string& arg : args) {
    if (auto v = flag_value(arg, "solver")) {
      if (resolve_solver(*v) == nullptr) return 2;
      options.solver = *v;
    } else if (auto v = flag_value(arg, "evaluator")) {
      // Compatibility alias: evaluator names are registry names.
      if (resolve_solver(*v) == nullptr) return 2;
      options.solver = *v;
    } else if (auto v = flag_value(arg, "max-window")) {
      options.max_window = std::stoi(*v);
    } else if (auto v = flag_value(arg, "objective")) {
      if (*v == "power") {
        options.objective = core::DimensionObjective::kPower;
      } else if (v->rfind("gpower=", 0) == 0) {
        options.objective = core::DimensionObjective::kGeneralizedPower;
        options.power_exponent = std::stod(v->substr(7));
      } else if (v->rfind("delaycap=", 0) == 0) {
        options.objective =
            core::DimensionObjective::kThroughputUnderDelayCap;
        options.max_delay = std::stod(v->substr(9));
        if (!(options.max_delay > 0.0)) {
          std::fprintf(stderr,
                       "error: --objective=delaycap requires a positive "
                       "delay cap in seconds (got '%s')\n",
                       v->substr(9).c_str());
          return 2;
        }
      } else if (*v == "alpha-fair") {
        options.objective = core::DimensionObjective::kAlphaFair;
      } else if (*v == "power-fair-constrained") {
        options.objective =
            core::DimensionObjective::kPowerFairConstrained;
      } else {
        std::fprintf(stderr,
                     "error: unknown objective '%s' (power, gpower=A, "
                     "delaycap=T, alpha-fair, power-fair-constrained)\n",
                     v->c_str());
        return 2;
      }
    } else if (auto v = flag_value(arg, "alpha")) {
      if (*v == "inf") {
        options.alpha = std::numeric_limits<double>::infinity();
      } else {
        options.alpha = std::stod(*v);
      }
      if (!(options.alpha == 0.0 || options.alpha == 1.0 ||
            options.alpha == 2.0 || std::isinf(options.alpha))) {
        std::fprintf(stderr, "error: --alpha must be 0, 1, 2 or inf\n");
        return 2;
      }
    } else if (auto v = flag_value(arg, "min-fairness")) {
      options.min_fairness = std::stod(*v);
      if (std::isnan(options.min_fairness) || options.min_fairness < 0.0 ||
          options.min_fairness > 1.0) {
        std::fprintf(stderr, "error: --min-fairness must be in [0, 1]\n");
        return 2;
      }
    } else if (auto v = flag_value(arg, "max-delay")) {
      options.max_delay = std::stod(*v);
      if (!(options.max_delay > 0.0)) {
        std::fprintf(stderr,
                     "error: --max-delay must be a positive delay cap in "
                     "seconds (got '%s')\n",
                     v->c_str());
        return 2;
      }
    } else if (auto v = flag_value(arg, "pareto-out")) {
      pareto_out = *v;
    } else if (auto v = flag_value(arg, "pareto-points")) {
      pareto_points = std::stoi(*v);
      if (pareto_points < 2) {
        std::fprintf(stderr, "error: --pareto-points must be >= 2\n");
        return 2;
      }
    } else if (auto v = flag_value(arg, "threads")) {
      // 1 = serial; N > 1 = speculative parallel probes; 0 = hardware.
      options.threads = std::stoi(*v);
    } else if (auto v = flag_value(arg, "solver-threads")) {
      // Chain-block-parallel MVA sweeps inside each evaluation;
      // bit-identical to the serial sweep for any thread count.
      options.solver_threads = std::stoi(*v);
      if (options.solver_threads <= 0) {
        std::fprintf(stderr, "error: --solver-threads must be >= 1\n");
        return 2;
      }
    } else if (auto v = flag_value(arg, "max-evals")) {
      options.max_evaluations =
          static_cast<std::size_t>(std::stoull(*v));
    } else if (arg == "--cold-start") {
      options.warm_start = false;
    } else if (arg == "--csv") {
      csv = true;
    } else if (auto v = flag_value(arg, "metrics-out")) {
      metrics_out = *v;
    } else if (auto v = flag_value(arg, "trace-out")) {
      trace_out = *v;
    } else if (auto v = flag_value(arg, "trace-spans-out")) {
      spans_out = *v;
    } else if (auto v = flag_value(arg, "convergence-out")) {
      convergence_out = *v;
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", arg.c_str());
      return 2;
    }
  }

  if (!metrics_out.empty()) obs::MetricsRegistry::global().set_enabled(true);
  obs::SearchTrace trace;
  if (!trace_out.empty()) options.trace = &trace;
  obs::ConvergenceLog convergence;
  if (!convergence_out.empty()) options.convergence = &convergence;
  obs::SpanTracer& spans = obs::SpanTracer::global();
  if (!spans_out.empty()) {
    spans.set_enabled(true);
    options.spans = &spans;
  }

  if (!pareto_out.empty()) {
    // Pareto mode: sweep the power/fairness trade-off instead of a
    // single solve; the single-solve flags (evaluator, bounds, threads,
    // budget) configure every solve of the scan.
    core::ParetoOptions popts;
    popts.base = options;
    popts.num_points = pareto_points;
    // An explicit --min-fairness becomes the lowest floor of the scan
    // (the default anchors it at the unconstrained optimum's fairness).
    if (options.min_fairness > 0.0) {
      popts.min_fairness_floor = options.min_fairness;
    }
    const core::WindowProblem problem(spec.topology, spec.classes);
    const core::ParetoFront front = core::pareto_front(problem, popts);
    std::ofstream out(pareto_out);
    if (!out) {
      std::fprintf(stderr, "error: cannot write '%s'\n", pareto_out.c_str());
      return 1;
    }
    out << core::to_json(front) << '\n';
    if (!out) {
      std::fprintf(stderr, "error: cannot write '%s'\n", pareto_out.c_str());
      return 1;
    }
    if (!metrics_out.empty() && !write_metrics_json(metrics_out)) return 1;
    if (front.cancelled) {
      std::fprintf(stderr, "warning: pareto scan cancelled mid-sweep\n");
    }
    if (front.budget_exhausted) {
      std::fprintf(stderr,
                   "warning: evaluation budget exhausted during the scan\n");
    }
    util::TextTable table(
        {"floor", "fairness", "power", "throughput", "delay_ms", "windows"});
    for (const core::ParetoPoint& p : front.points) {
      table.begin_row()
          .add(p.fairness_floor, 4)
          .add(p.fairness, 4)
          .add(p.power, 2)
          .add(p.throughput, 3)
          .add(p.mean_delay * 1000.0, 2)
          .add(util::format_window(p.windows));
    }
    std::printf("%s", table.render().c_str());
    std::printf(
        "pareto:     %zu points (%zu solves, %zu infeasible, %zu "
        "dominated)\n",
        front.points.size(), front.runs, front.infeasible_runs,
        front.dominated_dropped);
    return 0;
  }

  core::DimensionResult result;
  {
    // Root span covering the whole command; compile covers the
    // compile-once model construction the search amortizes.
    obs::SpanTracer::Scope dim_span(options.spans, "dimension");
    std::optional<core::WindowProblem> problem;
    {
      obs::SpanTracer::Scope compile_span(options.spans, "compile");
      compile_span.arg("classes",
                       static_cast<std::int64_t>(spec.classes.size()));
      problem.emplace(spec.topology, spec.classes);
    }
    result = core::dimension_windows(*problem, options);
  }
  if (!spans_out.empty()) {
    spans.set_enabled(false);
    if (!spans.write_json(spans_out)) {
      std::fprintf(stderr, "error: cannot write '%s'\n", spans_out.c_str());
      return 1;
    }
  }
  if (!convergence_out.empty() && !convergence.write_jsonl(convergence_out)) {
    std::fprintf(stderr, "error: cannot write '%s'\n",
                 convergence_out.c_str());
    return 1;
  }
  if (!trace_out.empty() && !trace.write_jsonl(trace_out)) {
    std::fprintf(stderr, "error: cannot write '%s'\n", trace_out.c_str());
    return 1;
  }
  if (!metrics_out.empty() && !write_metrics_json(metrics_out)) return 1;
  if (result.budget_exhausted) {
    std::fprintf(stderr,
                 "warning: evaluation budget exhausted after %zu "
                 "evaluations; reporting best point found so far\n",
                 result.objective_evaluations);
  }
  if (result.evaluation.class_throughput.empty()) {
    // The budget did not even cover the initial point: there is no
    // evaluation to report.
    std::fprintf(stderr,
                 "error: evaluation budget too small to evaluate the "
                 "initial point\n");
    return 1;
  }

  if (csv) {
    util::TextTable table({"class", "window", "throughput", "delay_ms"});
    for (std::size_t r = 0; r < spec.classes.size(); ++r) {
      table.begin_row()
          .add(spec.classes[r].name)
          .add(result.optimal_windows[r])
          .add(result.evaluation.class_throughput[r], 3)
          .add(result.evaluation.class_delay[r] * 1000.0, 2);
    }
    std::printf("%s", table.render_csv().c_str());
    return 0;
  }
  std::printf("evaluator:  %s\n",
              options.solver.empty() ? core::to_string(options.evaluator)
                                     : options.solver.c_str());
  print_evaluation(result.evaluation, spec.classes);
  std::printf("search:     %zu evaluations (+%zu cached)\n",
              result.objective_evaluations, result.cache_hits);
  return 0;
}

std::optional<std::vector<int>> parse_windows(
    const std::vector<std::string>& args, std::size_t count,
    std::vector<std::string>& remaining) {
  std::vector<int> windows;
  for (const std::string& arg : args) {
    if (arg.rfind("--", 0) == 0) {
      remaining.push_back(arg);
      continue;
    }
    try {
      windows.push_back(std::stoi(arg));
    } catch (const std::exception&) {
      std::fprintf(stderr, "error: bad window '%s'\n", arg.c_str());
      return std::nullopt;
    }
  }
  if (windows.size() != count) {
    std::fprintf(stderr, "error: expected %zu windows, got %zu\n", count,
                 windows.size());
    return std::nullopt;
  }
  return windows;
}

int cmd_evaluate(const cli::NetworkSpec& spec,
                 const std::vector<std::string>& args) {
  std::vector<std::string> flags;
  const auto windows = parse_windows(args, spec.classes.size(), flags);
  if (!windows) return 2;
  std::string solver_name = "heuristic-mva";
  int solver_threads = 1;
  for (const std::string& arg : flags) {
    if (auto v = flag_value(arg, "solver")) {
      solver_name = *v;
    } else if (auto v = flag_value(arg, "evaluator")) {
      solver_name = *v;
    } else if (auto v = flag_value(arg, "solver-threads")) {
      solver_threads = std::stoi(*v);
      if (solver_threads <= 0) {
        std::fprintf(stderr, "error: --solver-threads must be >= 1\n");
        return 2;
      }
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", arg.c_str());
      return 2;
    }
  }
  const solver::Solver* solver = resolve_solver(solver_name);
  if (solver == nullptr) return 2;
  const core::WindowProblem problem(spec.topology, spec.classes);
  solver::Workspace ws;
  // Chain-block-parallel MVA sweeps; bit-identical to the serial sweep
  // for any thread count (solver/heuristic_mva.cc), so this is purely
  // a wall-clock knob for continental-scale models.
  std::optional<util::ThreadPool> pool;
  if (solver_threads > 1) {
    pool.emplace(static_cast<std::size_t>(solver_threads));
    ws.hints.pool = &*pool;
  }
  std::printf("evaluator:  %s\n", std::string(solver->name()).c_str());
  print_evaluation(problem.evaluate_with(*windows, *solver, ws),
                   spec.classes);
  return 0;
}

int cmd_simulate(const cli::NetworkSpec& spec,
                 const std::vector<std::string>& args) {
  std::vector<std::string> flags;
  const auto windows = parse_windows(args, spec.classes.size(), flags);
  if (!windows) return 2;
  sim::MsgNetOptions options;
  options.windows = *windows;
  options.sim_time = 600.0;
  options.warmup = 60.0;
  int replications = 1;
  for (const std::string& arg : flags) {
    if (auto v = flag_value(arg, "time")) {
      options.sim_time = std::stod(*v);
      options.warmup = options.sim_time / 10.0;
    } else if (auto v = flag_value(arg, "seed")) {
      options.seed = static_cast<std::uint64_t>(std::stoull(*v));
    } else if (auto v = flag_value(arg, "buffers")) {
      options.node_buffer_limit.assign(
          static_cast<std::size_t>(spec.topology.num_nodes()),
          std::stoi(*v));
    } else if (auto v = flag_value(arg, "permits")) {
      options.isarithmic_permits = std::stoi(*v);
    } else if (arg == "--reverse-acks") {
      options.ack_mode = sim::AckMode::kReversePath;
    } else if (auto v = flag_value(arg, "reps")) {
      replications = std::stoi(*v);
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", arg.c_str());
      return 2;
    }
  }
  if (replications > 1) {
    const sim::ReplicatedResult rep = sim::run_replications(
        spec.topology, spec.classes, options, replications);
    std::printf("%d replications of %.0f s each:\n", replications,
                options.sim_time);
    std::printf("delivered:  %.3f +- %.3f msg/s\n", rep.delivered_rate.mean,
                rep.delivered_rate.half_width);
    std::printf("net delay:  %.4f +- %.4f s\n",
                rep.mean_network_delay.mean,
                rep.mean_network_delay.half_width);
    std::printf("power:      %.2f +- %.2f\n", rep.power.mean,
                rep.power.half_width);
    return 0;
  }
  const sim::MsgNetResult r =
      sim::simulate_msgnet(spec.topology, spec.classes, options);
  std::printf("simulated %.0f s (warmup %.0f s), seed %llu\n",
              options.sim_time, options.warmup,
              static_cast<unsigned long long>(options.seed));
  std::printf("delivered:  %.3f msg/s\n", r.delivered_rate);
  std::printf("net delay:  %.4f s\n", r.mean_network_delay);
  std::printf("power:      %.2f\n", r.power);
  std::printf("in network: %.2f msgs (time average)\n", r.mean_in_network);
  for (std::size_t k = 0; k < spec.classes.size(); ++k) {
    const sim::MsgNetClassStats& s = r.per_class[k];
    std::printf("  %-12s offered %7.2f  delivered %7.2f  dropped %6.2f  "
                "delay %7.2f ms\n",
                spec.classes[k].name.c_str(), s.offered_rate,
                s.delivered_rate, s.dropped_rate,
                s.mean_network_delay * 1000.0);
  }
  return 0;
}

/// Splits a comma-separated value list ("a,b,c") into tokens.
std::vector<std::string> split_csv(const std::string& value) {
  std::vector<std::string> tokens;
  std::size_t pos = 0;
  while (pos <= value.size()) {
    std::size_t comma = value.find(',', pos);
    if (comma == std::string::npos) comma = value.size();
    const std::string token = value.substr(pos, comma - pos);
    if (!token.empty()) tokens.push_back(token);
    pos = comma + 1;
  }
  return tokens;
}

int cmd_scenario(const cli::NetworkSpec& spec,
                 const std::vector<std::string>& args) {
  control::MatrixOptions options;
  std::string scorecard_out;
  std::string metrics_out;
  std::string spans_out;
  for (const std::string& arg : args) {
    if (auto v = flag_value(arg, "policies")) {
      options.policies = split_csv(*v);
      for (const std::string& name : options.policies) {
        if (!control::is_policy(name)) {
          std::fprintf(stderr, "error: %s\n",
                       control::unknown_policy_message(name).c_str());
          return 2;
        }
      }
    } else if (auto v = flag_value(arg, "scenarios")) {
      options.scenarios = split_csv(*v);
      for (const std::string& name : options.scenarios) {
        if (!control::is_scenario(name)) {
          std::fprintf(stderr, "error: %s\n",
                       control::unknown_scenario_message(name).c_str());
          return 2;
        }
      }
    } else if (auto v = flag_value(arg, "time")) {
      options.sim_time = std::stod(*v);
      if (!(options.sim_time > 0.0)) {
        std::fprintf(stderr,
                     "error: --time must be a positive duration in seconds\n");
        return 2;
      }
      options.warmup = options.sim_time / 10.0;
    } else if (auto v = flag_value(arg, "warmup")) {
      options.warmup = std::stod(*v);
      if (options.warmup < 0.0) {
        std::fprintf(
            stderr,
            "error: --warmup must be a non-negative duration in seconds\n");
        return 2;
      }
    } else if (auto v = flag_value(arg, "seed")) {
      options.seed = static_cast<std::uint64_t>(std::stoull(*v));
    } else if (auto v = flag_value(arg, "jobs")) {
      options.jobs = std::stoi(*v);
    } else if (auto v = flag_value(arg, "max-window")) {
      options.max_window = std::stoi(*v);
    } else if (auto v = flag_value(arg, "solver")) {
      if (resolve_solver(*v) == nullptr) return 2;
      options.solver = *v;
    } else if (auto v = flag_value(arg, "tracking-period")) {
      options.tracking_period = std::stod(*v);
      if (!(options.tracking_period > 0.0)) {
        std::fprintf(stderr,
                     "error: --tracking-period must be a positive duration "
                     "in seconds\n");
        return 2;
      }
    } else if (auto v = flag_value(arg, "ramp")) {
      // T:FACTOR[,T:FACTOR...] — a custom piecewise-linear load
      // profile replacing the built-in ramp scenario.
      for (const std::string& token : split_csv(*v)) {
        const std::size_t colon = token.find(':');
        if (colon == std::string::npos || colon == 0 ||
            colon + 1 >= token.size()) {
          std::fprintf(stderr,
                       "error: --ramp expects T:FACTOR[,T:FACTOR...]\n");
          return 2;
        }
        sim::RateBreakpoint bp;
        bp.time = std::stod(token.substr(0, colon));
        bp.factor = std::stod(token.substr(colon + 1));
        options.custom_ramp.points.push_back(bp);
      }
      // Rejects out-of-order breakpoints and negative factors up
      // front, before any cell runs.
      try {
        options.custom_ramp.validate();
      } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
      }
    } else if (auto v = flag_value(arg, "scorecard-out")) {
      scorecard_out = *v;
    } else if (auto v = flag_value(arg, "metrics-out")) {
      metrics_out = *v;
    } else if (auto v = flag_value(arg, "trace-spans-out")) {
      spans_out = *v;
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", arg.c_str());
      return 2;
    }
  }
  if (!metrics_out.empty()) obs::MetricsRegistry::global().set_enabled(true);
  if (!spans_out.empty()) obs::SpanTracer::global().set_enabled(true);

  const control::MatrixResult result =
      control::run_matrix(spec.topology, spec.classes, options);

  std::printf("static WINDIM optimum: %s  power %.2f  delay %.4f s\n",
              util::format_window(result.static_windows).c_str(),
              result.static_power, result.static_delay);
  std::printf("matrix: %zu scenarios x %zu policies, %.0f s each, seed "
              "%llu\n",
              result.scenarios.size(), result.policies.size(),
              result.sim_time,
              static_cast<unsigned long long>(result.seed));
  util::TextTable table({"scenario", "policy", "power", "delay(ms)",
                         "p99(ms)", "loss", "fairness"});
  for (const control::MatrixCell& cell : result.cells) {
    table.begin_row()
        .add(cell.scenario)
        .add(cell.policy)
        .add(cell.power, 2)
        .add(cell.mean_delay * 1000.0, 2)
        .add(cell.p99_delay * 1000.0, 2)
        .add(cell.loss, 4)
        .add(cell.fairness, 4);
  }
  std::printf("%s", table.render().c_str());

  if (!scorecard_out.empty()) {
    std::ofstream out(scorecard_out);
    if (!out) {
      std::fprintf(stderr, "error: cannot write '%s'\n",
                   scorecard_out.c_str());
      return 1;
    }
    out << control::render_scorecard(result);
    if (!out) return 1;
    std::printf("scorecard:  %s\n", scorecard_out.c_str());
  }
  if (!metrics_out.empty() && !write_metrics_json(metrics_out)) return 1;
  if (!spans_out.empty() &&
      !obs::SpanTracer::global().write_json(spans_out)) {
    std::fprintf(stderr, "error: cannot write '%s'\n", spans_out.c_str());
    return 1;
  }
  return 0;
}

int cmd_sweep(const cli::NetworkSpec& spec,
              const std::vector<std::string>& args) {
  std::vector<double> factors{0.5, 1.0, 1.5, 2.0};
  core::DimensionOptions options;
  for (const std::string& arg : args) {
    if (auto v = flag_value(arg, "loads")) {
      factors.clear();
      std::size_t pos = 0;
      while (pos < v->size()) {
        std::size_t comma = v->find(',', pos);
        if (comma == std::string::npos) comma = v->size();
        factors.push_back(std::stod(v->substr(pos, comma - pos)));
        pos = comma + 1;
      }
    } else if (auto v = flag_value(arg, "solver")) {
      if (resolve_solver(*v) == nullptr) return 2;
      options.solver = *v;
    } else if (auto v = flag_value(arg, "evaluator")) {
      if (resolve_solver(*v) == nullptr) return 2;
      options.solver = *v;
    } else if (auto v = flag_value(arg, "threads")) {
      options.threads = std::stoi(*v);
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", arg.c_str());
      return 2;
    }
  }
  util::TextTable table(
      {"load factor", "E_opt", "throughput", "delay(ms)", "power"});
  for (double f : factors) {
    auto classes = spec.classes;
    for (auto& tc : classes) tc.arrival_rate *= f;
    const core::WindowProblem problem(spec.topology, classes);
    const core::DimensionResult r = core::dimension_windows(problem, options);
    table.begin_row()
        .add(f, 2)
        .add_window(r.optimal_windows)
        .add(r.evaluation.throughput, 2)
        .add(r.evaluation.mean_delay * 1000.0, 1)
        .add(r.evaluation.power, 1);
  }
  std::printf("%s", table.render().c_str());
  return 0;
}

int cmd_capacity(const cli::NetworkSpec& spec,
                 const std::vector<std::string>& args) {
  double budget = -1.0;
  bool sqrt_rule = true;
  for (const std::string& arg : args) {
    if (auto v = flag_value(arg, "budget")) {
      budget = std::stod(*v);
    } else if (auto v = flag_value(arg, "rule")) {
      if (*v == "sqrt") {
        sqrt_rule = true;
      } else if (*v == "prop") {
        sqrt_rule = false;
      } else {
        std::fprintf(stderr, "error: unknown rule '%s'\n", v->c_str());
        return 2;
      }
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", arg.c_str());
      return 2;
    }
  }
  if (budget <= 0.0) {
    std::fprintf(stderr, "error: --budget=KBPS is required\n");
    return 2;
  }
  const core::CapacityAssignment a =
      sqrt_rule
          ? core::assign_capacities_sqrt(spec.topology, spec.classes, budget)
          : core::assign_capacities_proportional(spec.topology, spec.classes,
                                                 budget);
  util::TextTable table({"channel", "load (kbit/s)", "capacity (kbit/s)"});
  for (int c = 0; c < spec.topology.num_channels(); ++c) {
    table.begin_row()
        .add(spec.topology.channel(c).name)
        .add(a.load_kbps[static_cast<std::size_t>(c)], 2)
        .add(a.capacity_kbps[static_cast<std::size_t>(c)], 2);
  }
  std::printf("%s", table.render().c_str());
  std::printf("predicted open-network delay: %.2f ms\n",
              a.mean_delay * 1000.0);
  return 0;
}

int cmd_fuzz(const std::vector<std::string>& args) {
  verify::FuzzOptions options;
  options.seeds = 100;
  std::string replay_path;
  std::string metrics_out;
  std::string spans_out;
  bool quiet = false;
  for (const std::string& arg : args) {
    if (auto v = flag_value(arg, "seeds")) {
      options.seeds = std::stoi(*v);
    } else if (auto v = flag_value(arg, "family")) {
      // Comma-separated family tokens; "all" = every family.
      std::size_t pos = 0;
      while (pos <= v->size()) {
        std::size_t comma = v->find(',', pos);
        if (comma == std::string::npos) comma = v->size();
        const std::string token = v->substr(pos, comma - pos);
        pos = comma + 1;
        if (token.empty()) continue;
        if (token == "all") {
          options.families.clear();
          continue;
        }
        const auto family = verify::family_from_string(token);
        if (!family) {
          std::fprintf(stderr, "error: unknown family '%s'\n", token.c_str());
          return 2;
        }
        options.families.push_back(*family);
      }
    } else if (auto v = flag_value(arg, "solver")) {
      // Comma-separated registry names restricting the solver-pair and
      // envelope oracles; "all" = no restriction.
      std::size_t pos = 0;
      while (pos <= v->size()) {
        std::size_t comma = v->find(',', pos);
        if (comma == std::string::npos) comma = v->size();
        const std::string token = v->substr(pos, comma - pos);
        pos = comma + 1;
        if (token.empty()) continue;
        if (token == "all") {
          options.oracle.solvers.clear();
          continue;
        }
        if (resolve_solver(token) == nullptr) return 2;
        options.oracle.solvers.push_back(token);
      }
    } else if (auto v = flag_value(arg, "time-budget")) {
      options.time_budget_seconds = std::stod(*v);
    } else if (auto v = flag_value(arg, "jobs")) {
      options.jobs = std::stoi(*v);
    } else if (auto v = flag_value(arg, "base-seed")) {
      options.base_seed = static_cast<std::uint64_t>(std::stoull(*v));
    } else if (auto v = flag_value(arg, "corpus-out")) {
      options.corpus_dir = *v;
    } else if (auto v = flag_value(arg, "replay")) {
      replay_path = *v;
    } else if (arg == "--sim") {
      options.oracle.with_simulation = true;
    } else if (arg == "--no-shrink") {
      options.shrink_failures = false;
    } else if (arg == "--no-ctmc") {
      options.oracle.with_ctmc = false;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (auto v = flag_value(arg, "metrics-out")) {
      metrics_out = *v;
    } else if (auto v = flag_value(arg, "trace-spans-out")) {
      spans_out = *v;
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", arg.c_str());
      return 2;
    }
  }

  if (!metrics_out.empty()) obs::MetricsRegistry::global().set_enabled(true);
  if (!spans_out.empty()) obs::SpanTracer::global().set_enabled(true);
  verify::FuzzReport report;
  if (!replay_path.empty()) {
    const std::vector<std::string> files =
        verify::list_corpus_files(replay_path);
    if (files.empty()) {
      std::fprintf(stderr, "error: no corpus files under '%s'\n",
                   replay_path.c_str());
      return 2;
    }
    report = verify::replay_corpus(files, options);
  } else {
    report = verify::run_fuzz(options);
  }
  if (!spans_out.empty()) {
    obs::SpanTracer::global().set_enabled(false);
    if (!obs::SpanTracer::global().write_json(spans_out)) {
      std::fprintf(stderr, "error: cannot write '%s'\n", spans_out.c_str());
      return 1;
    }
  }
  if (!metrics_out.empty() && !write_metrics_json(metrics_out)) return 1;
  if (!quiet) {
    std::printf("%s", verify::to_json(report).c_str());
  }
  if (report.unexpected_passes > 0) {
    std::fprintf(stderr,
                 "note: %d corpus entr%s no longer fail%s the annotated "
                 "oracle; consider removing them\n",
                 report.unexpected_passes,
                 report.unexpected_passes == 1 ? "y" : "ies",
                 report.unexpected_passes == 1 ? "s" : "");
  }
  return report.ok() ? 0 : 1;
}

int cmd_serve(const std::vector<std::string>& args) {
  serve::ServeOptions options;
  std::string socket_path;
  std::string metrics_out;
  bool stdio = false;
  for (const std::string& arg : args) {
    if (auto v = flag_value(arg, "socket")) {
      socket_path = *v;
    } else if (arg == "--stdio") {
      stdio = true;
    } else if (auto v = flag_value(arg, "metrics-out")) {
      // Flag parity with dimension/fuzz/scenario: one cumulative
      // registry snapshot on graceful shutdown.
      metrics_out = *v;
    } else if (auto v = flag_value(arg, "metrics-listen")) {
      // SIGUSR1 scrape target: the live OpenMetrics exposition lands
      // here without touching the daemon's stdio.
      options.expo_path = *v;
    } else if (auto v = flag_value(arg, "flight-out")) {
      options.flight_path = *v;
    } else if (arg == "--no-window") {
      options.enable_window = false;
    } else if (auto v = flag_value(arg, "threads")) {
      options.threads = std::stoi(*v);
    } else if (auto v = flag_value(arg, "cache-size")) {
      const int n = std::stoi(*v);
      if (n <= 0) {
        std::fprintf(stderr, "error: --cache-size must be >= 1\n");
        return 2;
      }
      options.cache_capacity = static_cast<std::size_t>(n);
    } else if (auto v = flag_value(arg, "max-request-bytes")) {
      const long long n = std::stoll(*v);
      if (n <= 0) {
        std::fprintf(stderr, "error: --max-request-bytes must be >= 1\n");
        return 2;
      }
      options.max_request_bytes = static_cast<std::size_t>(n);
    } else if (auto v = flag_value(arg, "default-deadline-ms")) {
      options.default_deadline_ms = std::stod(*v);
      if (options.default_deadline_ms < 0.0) {
        std::fprintf(stderr, "error: --default-deadline-ms must be >= 0\n");
        return 2;
      }
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", arg.c_str());
      return 2;
    }
  }
  if (stdio == !socket_path.empty()) {
    std::fprintf(stderr,
                 "error: serve needs exactly one of --socket=PATH or "
                 "--stdio\n");
    return 2;
  }
  serve::Server server(options);
  int rc = 0;
  if (stdio) {
    rc = server.serve_stream(std::cin, std::cout);
  } else {
    rc = server.serve_unix(socket_path, [&socket_path]() {
      // Readiness line the smoke harness synchronizes on.
      std::printf("listening %s\n", socket_path.c_str());
      std::fflush(stdout);
    });
  }
  if (!metrics_out.empty() && !write_metrics_json(metrics_out)) return 1;
  return rc;
}

int cmd_solvers() {
  util::TextTable table({"name", "kind", "chains", "queue lengths", "notes"});
  for (const solver::Solver* s : solver::SolverRegistry::instance().solvers()) {
    const solver::Traits t = s->traits();
    std::string notes;
    if (t.semiclosed_view) notes += "semiclosed view; ";
    if (t.supports_queue_dependent) notes += "queue-dependent; ";
    if (t.supports_warm_start) notes += "warm start; ";
    if (!notes.empty()) notes.resize(notes.size() - 2);
    table.begin_row()
        .add(std::string(s->name()))
        .add(t.exact ? "exact" : t.iterative ? "iterative" : "bound")
        .add(t.requires_single_chain ? "single" : "multi")
        .add(t.has_queue_lengths ? "yes" : "no")
        .add(notes);
  }
  std::printf("%s", table.render().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    if (command == "fuzz") {
      // fuzz takes no spec file: every instance is generated or
      // replayed from the corpus.
      return cmd_fuzz(std::vector<std::string>(argv + 2, argv + argc));
    }
    if (command == "serve") {
      // serve takes no spec file: models arrive inside requests.
      return cmd_serve(std::vector<std::string>(argv + 2, argv + argc));
    }
    if (command == "solvers") return cmd_solvers();
    if (argc < 3) return usage();
    const auto spec = load_spec(argv[2]);
    if (!spec) return 1;
    std::vector<std::string> args(argv + 3, argv + argc);
    if (command == "dimension") return cmd_dimension(*spec, args);
    if (command == "evaluate") return cmd_evaluate(*spec, args);
    if (command == "simulate") return cmd_simulate(*spec, args);
    if (command == "sweep") return cmd_sweep(*spec, args);
    if (command == "scenario") return cmd_scenario(*spec, args);
    if (command == "capacity") return cmd_capacity(*spec, args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
