// Property-based tests: invariants checked over families of randomized
// queueing networks drawn from the verify/gen generator library (the
// same families the `windim fuzz` differential harness uses), so every
// property here is pinned to a deterministic (family, seed) pair.
#include <gtest/gtest.h>

#include <cmath>

#include "exact/convolution.h"
#include "exact/product_form.h"
#include "exact/semiclosed.h"
#include "mva/approx.h"
#include "mva/exact_multichain.h"
#include "util/rng.h"
#include "verify/gen.h"
#include "windim/windim.h"

namespace windim {
namespace {

using verify::Family;
using verify::Instance;

qn::Station fcfs(const std::string& name) {
  qn::Station s;
  s.name = name;
  s.discipline = qn::Discipline::kFcfs;
  return s;
}

/// True when every station is fixed-rate or infinite-server (the MVA
/// solvers' domain; queue-dependent rates are convolution-only).
bool fixed_rate_only(const qn::NetworkModel& m) {
  for (const qn::Station& s : m.stations()) {
    if (!s.rate_multipliers.empty()) return false;
  }
  return true;
}

class GenFamilyProperty : public ::testing::TestWithParam<int> {};

TEST_P(GenFamilyProperty, ConvolutionMatchesBruteForce) {
  // Product-form counts are discipline-blind (BCMP): the brute-force
  // state sum must agree with the convolution recursion on FCFS, mixed
  // PS/LCFS-PR/IS and queue-dependent stations alike.
  for (Family family : {Family::kFcfsClosed, Family::kDisciplines,
                        Family::kQueueDependent}) {
    const Instance inst =
        verify::generate(family, static_cast<std::uint64_t>(GetParam()));
    const exact::ConvolutionResult conv =
        exact::solve_convolution(inst.model);
    const exact::ProductFormResult brute =
        exact::solve_product_form(inst.model);
    for (int r = 0; r < inst.model.num_chains(); ++r) {
      EXPECT_NEAR(
          conv.chain_throughput[static_cast<std::size_t>(r)],
          brute.chain_throughput[static_cast<std::size_t>(r)],
          1e-8 *
              (1.0 + brute.chain_throughput[static_cast<std::size_t>(r)]))
          << inst.name << " chain " << r;
    }
    for (int n = 0; n < inst.model.num_stations(); ++n) {
      for (int r = 0; r < inst.model.num_chains(); ++r) {
        EXPECT_NEAR(conv.queue_length(n, r), brute.queue_length(n, r), 1e-7)
            << inst.name;
      }
    }
  }
}

TEST_P(GenFamilyProperty, ExactMvaMatchesConvolution) {
  for (Family family : {Family::kFcfsClosed, Family::kDisciplines}) {
    const Instance inst = verify::generate(
        family, static_cast<std::uint64_t>(GetParam()) + 1000);
    ASSERT_TRUE(fixed_rate_only(inst.model)) << inst.name;
    const mva::MvaSolution mva = mva::solve_exact_multichain(inst.model);
    const exact::ConvolutionResult conv =
        exact::solve_convolution(inst.model);
    for (int r = 0; r < inst.model.num_chains(); ++r) {
      EXPECT_NEAR(
          mva.chain_throughput[static_cast<std::size_t>(r)],
          conv.chain_throughput[static_cast<std::size_t>(r)],
          1e-7 * (1.0 + conv.chain_throughput[static_cast<std::size_t>(r)]))
          << inst.name;
    }
  }
}

TEST_P(GenFamilyProperty, PopulationConservationEverywhere) {
  for (Family family : {Family::kFcfsClosed, Family::kDisciplines}) {
    const Instance inst = verify::generate(
        family, static_cast<std::uint64_t>(GetParam()) + 2000);
    const exact::ConvolutionResult conv =
        exact::solve_convolution(inst.model);
    const mva::MvaSolution approx = mva::solve_approx_mva(inst.model);
    for (int r = 0; r < inst.model.num_chains(); ++r) {
      double conv_total = 0.0, approx_total = 0.0;
      for (int n = 0; n < inst.model.num_stations(); ++n) {
        conv_total += conv.queue_length(n, r);
        approx_total += approx.queue_length(n, r);
      }
      EXPECT_NEAR(conv_total, inst.model.chain(r).population, 1e-8)
          << inst.name;
      EXPECT_NEAR(approx_total, inst.model.chain(r).population, 1e-5)
          << inst.name;
    }
  }
}

TEST_P(GenFamilyProperty, HeuristicBoundedErrorAtTinyPopulations) {
  // Populations of 1-4 are the heuristic's worst case (it is only
  // asymptotically exact, thesis 4.2); bound the error at 25% there.
  // tests/mva_accuracy_test.cc tracks the tighter aggregate envelope;
  // the windim_test/integration_test suites check the few-percent
  // regime on realistic window sizes.
  for (Family family : {Family::kFcfsClosed, Family::kDisciplines}) {
    const Instance inst = verify::generate(
        family, static_cast<std::uint64_t>(GetParam()) + 3000);
    const mva::MvaSolution approx = mva::solve_approx_mva(inst.model);
    const mva::MvaSolution exact = mva::solve_exact_multichain(inst.model);
    ASSERT_TRUE(approx.converged) << inst.name;
    for (int r = 0; r < inst.model.num_chains(); ++r) {
      const double x = exact.chain_throughput[static_cast<std::size_t>(r)];
      const double h = approx.chain_throughput[static_cast<std::size_t>(r)];
      EXPECT_LT(std::abs(h - x) / x, 0.25) << inst.name << " chain " << r;
    }
  }
}

TEST_P(GenFamilyProperty, UtilizationWithinUnitInterval) {
  // Every all-closed family, including the route-ordered ones.
  for (Family family :
       {Family::kFcfsClosed, Family::kDisciplines, Family::kQueueDependent,
        Family::kCyclic, Family::kWindim}) {
    const Instance inst = verify::generate(
        family, static_cast<std::uint64_t>(GetParam()) + 4000);
    const exact::ConvolutionResult conv =
        exact::solve_convolution(inst.model);
    for (int n = 0; n < inst.model.num_stations(); ++n) {
      // An infinite-server "utilization" is the mean number in service,
      // which may legitimately exceed 1.
      if (inst.model.station(n).is_delay()) continue;
      EXPECT_GE(conv.station_utilization[static_cast<std::size_t>(n)],
                -1e-12)
          << inst.name;
      EXPECT_LE(conv.station_utilization[static_cast<std::size_t>(n)],
                1.0 + 1e-9)
          << inst.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GenFamilyProperty, ::testing::Range(0, 12));

// ---------------------------------------------------- window-model properties

class WindowSweepProperty
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(WindowSweepProperty, ThroughputMonotoneAndBounded) {
  const auto [s1, s2] = GetParam();
  const core::WindowProblem problem(net::canada_topology(),
                                    net::two_class_traffic(s1, s2));
  double previous = -1.0;
  for (int e = 1; e <= 6; ++e) {
    const core::Evaluation ev =
        problem.evaluate({e, e}, core::Evaluator::kConvolution);
    // Monotone in the window.
    EXPECT_GT(ev.throughput, previous);
    previous = ev.throughput;
    // Never above offered load or channel capacity.
    EXPECT_LE(ev.class_throughput[0], s1 + 1e-9);
    EXPECT_LE(ev.class_throughput[1], s2 + 1e-9);
    // Shared 50 kbit/s channels cap the *sum* at 50 msg/s.
    EXPECT_LE(ev.throughput, 50.0 + 1e-9);
  }
}

TEST_P(WindowSweepProperty, PowerSurfaceHasInteriorOrBoundaryMaximum) {
  const auto [s1, s2] = GetParam();
  const core::WindowProblem problem(net::canada_topology(),
                                    net::two_class_traffic(s1, s2));
  // The diagonal power curve rises then falls (or is monotone to the
  // boundary): verify it is unimodal along the diagonal.
  std::vector<double> power;
  for (int e = 1; e <= 10; ++e) {
    power.push_back(problem.evaluate({e, e}).power);
  }
  int direction_changes = 0;
  for (std::size_t i = 2; i < power.size(); ++i) {
    const bool was_rising = power[i - 1] > power[i - 2];
    const bool is_rising = power[i] > power[i - 1];
    if (was_rising != is_rising) ++direction_changes;
  }
  EXPECT_LE(direction_changes, 1) << "power curve is not unimodal";
}

INSTANTIATE_TEST_SUITE_P(
    Loads, WindowSweepProperty,
    ::testing::Values(std::make_tuple(10.0, 10.0), std::make_tuple(20.0, 20.0),
                      std::make_tuple(40.0, 40.0), std::make_tuple(10.0, 30.0),
                      std::make_tuple(5.0, 45.0), std::make_tuple(60.0, 60.0)));

// ------------------------------------------------- pattern-search properties

class SearchSeedProperty : public ::testing::TestWithParam<int> {};

TEST_P(SearchSeedProperty, PatternSearchFindsExhaustiveOptimumOnPowerSurface) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 7000);
  const double s1 = rng.uniform(8.0, 60.0);
  const double s2 = rng.uniform(8.0, 60.0);
  const core::WindowProblem problem(net::canada_topology(),
                                    net::two_class_traffic(s1, s2));
  const core::DimensionResult dim = core::dimension_windows(problem);
  const search::Objective objective = [&](const search::Point& e) {
    const core::Evaluation ev = problem.evaluate(e);
    return ev.power > 0.0 ? 1.0 / ev.power
                          : std::numeric_limits<double>::infinity();
  };
  const search::ExhaustiveResult exhaustive =
      search::exhaustive_search(objective, {1, 1}, {10, 10});
  // Equal value (ties in the flat region are acceptable as long as the
  // achieved power matches the global optimum).
  EXPECT_NEAR(1.0 / dim.evaluation.power, exhaustive.best_value,
              1e-9 + 1e-6 * exhaustive.best_value)
      << "s1=" << s1 << " s2=" << s2;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SearchSeedProperty, ::testing::Range(0, 8));

// ------------------------------------------------- semiclosed properties

class SemiclosedProperty : public ::testing::TestWithParam<int> {};

TEST_P(SemiclosedProperty, CarriedThroughputMonotoneInBound) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 11000);
  qn::NetworkModel m;
  const int stations = rng.uniform_int(2, 4);
  std::vector<double> times(static_cast<std::size_t>(stations));
  for (double& t : times) t = rng.uniform(0.01, 0.1);
  qn::Chain c;
  c.type = qn::ChainType::kClosed;
  for (int n = 0; n < stations; ++n) {
    m.add_station(fcfs("q"));
    c.visits.push_back({n, 1.0, times[static_cast<std::size_t>(n)]});
  }
  m.add_chain(std::move(c));
  const double rate = rng.uniform(3.0, 30.0);
  double previous_carried = -1.0;
  double previous_blocking = 2.0;
  for (int bound = 1; bound <= 6; ++bound) {
    const exact::SemiclosedResult r =
        exact::solve_semiclosed(m, {{rate, 0, bound}});
    // A larger window carries more and blocks less.
    EXPECT_GT(r.carried_throughput[0], previous_carried);
    EXPECT_LT(r.blocking_probability[0], previous_blocking);
    // Carried throughput never exceeds the offered rate.
    EXPECT_LE(r.carried_throughput[0], rate + 1e-9);
    previous_carried = r.carried_throughput[0];
    previous_blocking = r.blocking_probability[0];
  }
}

TEST_P(SemiclosedProperty, PinnedBoundsMatchConvolution) {
  // [E, E] bounds == closed network at population E, whatever the rate:
  // checked on the generator's semiclosed family with its random bounds
  // replaced by pinned ones.
  const Instance inst = verify::generate(
      Family::kSemiclosed, static_cast<std::uint64_t>(GetParam()) + 12000);
  ASSERT_EQ(inst.semiclosed.size(),
            static_cast<std::size_t>(inst.model.num_chains()));
  std::vector<exact::SemiclosedChainSpec> pinned = inst.semiclosed;
  for (int r = 0; r < inst.model.num_chains(); ++r) {
    pinned[static_cast<std::size_t>(r)].min_population =
        inst.model.chain(r).population;
    pinned[static_cast<std::size_t>(r)].max_population =
        inst.model.chain(r).population;
  }
  const exact::SemiclosedResult semi =
      exact::solve_semiclosed(inst.model, pinned);
  const exact::ConvolutionResult conv = exact::solve_convolution(inst.model);
  for (int n = 0; n < inst.model.num_stations(); ++n) {
    for (int r = 0; r < inst.model.num_chains(); ++r) {
      EXPECT_NEAR(semi.queue_length(n, r), conv.queue_length(n, r), 1e-7)
          << inst.name << " station " << n << " chain " << r;
    }
  }
}

TEST_P(SemiclosedProperty, GeneratedBoundsKeepBlockingInUnitInterval) {
  const Instance inst = verify::generate(
      Family::kSemiclosed, static_cast<std::uint64_t>(GetParam()) + 13000);
  const exact::SemiclosedResult r =
      exact::solve_semiclosed(inst.model, inst.semiclosed);
  for (std::size_t k = 0; k < inst.semiclosed.size(); ++k) {
    EXPECT_GE(r.blocking_probability[k], -1e-12) << inst.name;
    EXPECT_LE(r.blocking_probability[k], 1.0 + 1e-12) << inst.name;
    EXPECT_LE(r.carried_throughput[k],
              inst.semiclosed[k].arrival_rate + 1e-9)
        << inst.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SemiclosedProperty, ::testing::Range(0, 6));

}  // namespace
}  // namespace windim
