// Property-based tests: invariants checked over families of randomized
// queueing networks (parameterized by RNG seed).
#include <gtest/gtest.h>

#include <cmath>

#include "exact/convolution.h"
#include "exact/semiclosed.h"
#include "exact/product_form.h"
#include "mva/approx.h"
#include "mva/exact_multichain.h"
#include "util/rng.h"
#include "windim/windim.h"

namespace windim {
namespace {

qn::Station fcfs(const std::string& name) {
  qn::Station s;
  s.name = name;
  s.discipline = qn::Discipline::kFcfs;
  return s;
}

/// Random all-closed multichain model: 2-4 chains over 3-6 stations,
/// random subsets, demands in [0.01, 0.3], populations 1-4.
qn::NetworkModel random_closed_model(util::Rng& rng) {
  qn::NetworkModel m;
  const int num_stations = rng.uniform_int(3, 6);
  for (int n = 0; n < num_stations; ++n) {
    m.add_station(fcfs("q" + std::to_string(n)));
  }
  const int num_chains = rng.uniform_int(2, 4);
  // Per-station service time (shared by all chains: FCFS product form).
  std::vector<double> station_time(static_cast<std::size_t>(num_stations));
  for (double& t : station_time) t = rng.uniform(0.01, 0.3);
  for (int r = 0; r < num_chains; ++r) {
    qn::Chain c;
    c.name = "c" + std::to_string(r);
    c.type = qn::ChainType::kClosed;
    c.population = rng.uniform_int(1, 4);
    // Visit a random nonempty subset of stations.
    std::vector<int> stations;
    for (int n = 0; n < num_stations; ++n) {
      if (rng.uniform01() < 0.6) stations.push_back(n);
    }
    if (stations.empty()) stations.push_back(rng.uniform_int(0, num_stations - 1));
    for (int n : stations) {
      c.visits.push_back(
          {n, 1.0, station_time[static_cast<std::size_t>(n)]});
    }
    m.add_chain(std::move(c));
  }
  return m;
}

class RandomNetworkProperty : public ::testing::TestWithParam<int> {};

TEST_P(RandomNetworkProperty, ConvolutionMatchesBruteForce) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const qn::NetworkModel m = random_closed_model(rng);
  const exact::ConvolutionResult conv = exact::solve_convolution(m);
  const exact::ProductFormResult brute = exact::solve_product_form(m);
  for (int r = 0; r < m.num_chains(); ++r) {
    EXPECT_NEAR(conv.chain_throughput[static_cast<std::size_t>(r)],
                brute.chain_throughput[static_cast<std::size_t>(r)],
                1e-8 * (1.0 + brute.chain_throughput[static_cast<std::size_t>(r)]))
        << "chain " << r;
  }
  for (int n = 0; n < m.num_stations(); ++n) {
    for (int r = 0; r < m.num_chains(); ++r) {
      EXPECT_NEAR(conv.queue_length(n, r), brute.queue_length(n, r), 1e-7);
    }
  }
}

TEST_P(RandomNetworkProperty, ExactMvaMatchesConvolution) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 1000);
  const qn::NetworkModel m = random_closed_model(rng);
  const mva::MvaSolution mva = mva::solve_exact_multichain(m);
  const exact::ConvolutionResult conv = exact::solve_convolution(m);
  for (int r = 0; r < m.num_chains(); ++r) {
    EXPECT_NEAR(mva.chain_throughput[static_cast<std::size_t>(r)],
                conv.chain_throughput[static_cast<std::size_t>(r)],
                1e-7 * (1.0 + conv.chain_throughput[static_cast<std::size_t>(r)]));
  }
}

TEST_P(RandomNetworkProperty, PopulationConservationEverywhere) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 2000);
  const qn::NetworkModel m = random_closed_model(rng);
  const exact::ConvolutionResult conv = exact::solve_convolution(m);
  const mva::MvaSolution approx = mva::solve_approx_mva(m);
  for (int r = 0; r < m.num_chains(); ++r) {
    double conv_total = 0.0, approx_total = 0.0;
    for (int n = 0; n < m.num_stations(); ++n) {
      conv_total += conv.queue_length(n, r);
      approx_total += approx.queue_length(n, r);
    }
    EXPECT_NEAR(conv_total, m.chain(r).population, 1e-8);
    EXPECT_NEAR(approx_total, m.chain(r).population, 1e-5);
  }
}

TEST_P(RandomNetworkProperty, HeuristicBoundedErrorAtTinyPopulations) {
  // Populations of 1-4 are the heuristic's worst case (it is only
  // asymptotically exact, thesis 4.2); bound the error at 20% there.
  // The windim_test/integration_test suites check the few-percent regime
  // on realistic window sizes.
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 3000);
  const qn::NetworkModel m = random_closed_model(rng);
  const mva::MvaSolution approx = mva::solve_approx_mva(m);
  const mva::MvaSolution exact = mva::solve_exact_multichain(m);
  ASSERT_TRUE(approx.converged);
  for (int r = 0; r < m.num_chains(); ++r) {
    const double x = exact.chain_throughput[static_cast<std::size_t>(r)];
    const double h = approx.chain_throughput[static_cast<std::size_t>(r)];
    EXPECT_LT(std::abs(h - x) / x, 0.20) << "chain " << r;
  }
}

TEST_P(RandomNetworkProperty, UtilizationWithinUnitInterval) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 4000);
  const qn::NetworkModel m = random_closed_model(rng);
  const exact::ConvolutionResult conv = exact::solve_convolution(m);
  for (int n = 0; n < m.num_stations(); ++n) {
    EXPECT_GE(conv.station_utilization[static_cast<std::size_t>(n)], -1e-12);
    EXPECT_LE(conv.station_utilization[static_cast<std::size_t>(n)],
              1.0 + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomNetworkProperty,
                         ::testing::Range(0, 12));

// ---------------------------------------------------- window-model properties

class WindowSweepProperty
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(WindowSweepProperty, ThroughputMonotoneAndBounded) {
  const auto [s1, s2] = GetParam();
  const core::WindowProblem problem(net::canada_topology(),
                                    net::two_class_traffic(s1, s2));
  double previous = -1.0;
  for (int e = 1; e <= 6; ++e) {
    const core::Evaluation ev =
        problem.evaluate({e, e}, core::Evaluator::kConvolution);
    // Monotone in the window.
    EXPECT_GT(ev.throughput, previous);
    previous = ev.throughput;
    // Never above offered load or channel capacity.
    EXPECT_LE(ev.class_throughput[0], s1 + 1e-9);
    EXPECT_LE(ev.class_throughput[1], s2 + 1e-9);
    // Shared 50 kbit/s channels cap the *sum* at 50 msg/s.
    EXPECT_LE(ev.throughput, 50.0 + 1e-9);
  }
}

TEST_P(WindowSweepProperty, PowerSurfaceHasInteriorOrBoundaryMaximum) {
  const auto [s1, s2] = GetParam();
  const core::WindowProblem problem(net::canada_topology(),
                                    net::two_class_traffic(s1, s2));
  // The diagonal power curve rises then falls (or is monotone to the
  // boundary): verify it is unimodal along the diagonal.
  std::vector<double> power;
  for (int e = 1; e <= 10; ++e) {
    power.push_back(problem.evaluate({e, e}).power);
  }
  int direction_changes = 0;
  for (std::size_t i = 2; i < power.size(); ++i) {
    const bool was_rising = power[i - 1] > power[i - 2];
    const bool is_rising = power[i] > power[i - 1];
    if (was_rising != is_rising) ++direction_changes;
  }
  EXPECT_LE(direction_changes, 1) << "power curve is not unimodal";
}

INSTANTIATE_TEST_SUITE_P(
    Loads, WindowSweepProperty,
    ::testing::Values(std::make_tuple(10.0, 10.0), std::make_tuple(20.0, 20.0),
                      std::make_tuple(40.0, 40.0), std::make_tuple(10.0, 30.0),
                      std::make_tuple(5.0, 45.0), std::make_tuple(60.0, 60.0)));

// ------------------------------------------------- pattern-search properties

class SearchSeedProperty : public ::testing::TestWithParam<int> {};

TEST_P(SearchSeedProperty, PatternSearchFindsExhaustiveOptimumOnPowerSurface) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 7000);
  const double s1 = rng.uniform(8.0, 60.0);
  const double s2 = rng.uniform(8.0, 60.0);
  const core::WindowProblem problem(net::canada_topology(),
                                    net::two_class_traffic(s1, s2));
  const core::DimensionResult dim = core::dimension_windows(problem);
  const search::Objective objective = [&](const search::Point& e) {
    const core::Evaluation ev = problem.evaluate(e);
    return ev.power > 0.0 ? 1.0 / ev.power
                          : std::numeric_limits<double>::infinity();
  };
  const search::ExhaustiveResult exhaustive =
      search::exhaustive_search(objective, {1, 1}, {10, 10});
  // Equal value (ties in the flat region are acceptable as long as the
  // achieved power matches the global optimum).
  EXPECT_NEAR(1.0 / dim.evaluation.power, exhaustive.best_value,
              1e-9 + 1e-6 * exhaustive.best_value)
      << "s1=" << s1 << " s2=" << s2;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SearchSeedProperty, ::testing::Range(0, 8));

// ------------------------------------------------- semiclosed properties

class SemiclosedProperty : public ::testing::TestWithParam<int> {};

TEST_P(SemiclosedProperty, CarriedThroughputMonotoneInBound) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 11000);
  qn::NetworkModel m;
  const int stations = rng.uniform_int(2, 4);
  std::vector<double> times(static_cast<std::size_t>(stations));
  for (double& t : times) t = rng.uniform(0.01, 0.1);
  qn::Chain c;
  c.type = qn::ChainType::kClosed;
  for (int n = 0; n < stations; ++n) {
    m.add_station(fcfs("q"));
    c.visits.push_back({n, 1.0, times[static_cast<std::size_t>(n)]});
  }
  m.add_chain(std::move(c));
  const double rate = rng.uniform(3.0, 30.0);
  double previous_carried = -1.0;
  double previous_blocking = 2.0;
  for (int bound = 1; bound <= 6; ++bound) {
    const exact::SemiclosedResult r =
        exact::solve_semiclosed(m, {{rate, 0, bound}});
    // A larger window carries more and blocks less.
    EXPECT_GT(r.carried_throughput[0], previous_carried);
    EXPECT_LT(r.blocking_probability[0], previous_blocking);
    // Carried throughput never exceeds the offered rate.
    EXPECT_LE(r.carried_throughput[0], rate + 1e-9);
    previous_carried = r.carried_throughput[0];
    previous_blocking = r.blocking_probability[0];
  }
}

TEST_P(SemiclosedProperty, PinnedBoundsMatchConvolution) {
  // [E, E] bounds == closed network at population E, whatever the rate.
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 12000);
  const qn::NetworkModel m = random_closed_model(rng);
  std::vector<exact::SemiclosedChainSpec> specs;
  for (int r = 0; r < m.num_chains(); ++r) {
    specs.push_back(exact::SemiclosedChainSpec{
        rng.uniform(1.0, 20.0), m.chain(r).population,
        m.chain(r).population});
  }
  const exact::SemiclosedResult semi = exact::solve_semiclosed(m, specs);
  const exact::ConvolutionResult conv = exact::solve_convolution(m);
  for (int n = 0; n < m.num_stations(); ++n) {
    for (int r = 0; r < m.num_chains(); ++r) {
      EXPECT_NEAR(semi.queue_length(n, r), conv.queue_length(n, r), 1e-7)
          << "station " << n << " chain " << r;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SemiclosedProperty, ::testing::Range(0, 6));

}  // namespace
}  // namespace windim
