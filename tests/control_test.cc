// Unit tests of the online window policies (src/control): every
// reactive controller is driven through a hand-computed event sequence
// and its real-valued window trajectory pinned exactly — the policies
// consume no randomness, so the trajectories are arithmetic, not
// statistics.  The policy/scenario registries and the dynamics
// validators are covered here too, so the CLI and serve error paths
// stay honest about what is available.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "control/policies.h"
#include "control/registry.h"
#include "control/scenario.h"
#include "net/examples.h"
#include "sim/dynamics.h"
#include "windim/dimension.h"
#include "windim/problem.h"

namespace windim::control {
namespace {

TEST(StaticPolicyTest, ReturnsWindowsVerbatim) {
  const StaticWindowController c({3, 7});
  EXPECT_EQ(c.window(0), 3);
  EXPECT_EQ(c.window(1), 7);
  EXPECT_LE(c.tick_period(), 0.0);  // no periodic callback
}

TEST(AimdPolicyTest, HandComputedTrajectory) {
  // Defaults: +1 per timely delivery, x0.5 on congestion, threshold
  // 0.35 s, cooldown 1 s, window in [1, 64].
  AimdController c({3}, AimdConfig{});
  EXPECT_EQ(c.window(0), 3);

  c.on_delivery(0, 0.1, 0.20);  // timely: 3 -> 4
  EXPECT_DOUBLE_EQ(c.raw_window(0), 4.0);
  c.on_delivery(0, 0.2, 0.35);  // exactly at threshold still counts: -> 5
  EXPECT_DOUBLE_EQ(c.raw_window(0), 5.0);
  c.on_delivery(0, 0.3, 0.50);  // late: multiplicative cut 5 -> 2.5
  EXPECT_DOUBLE_EQ(c.raw_window(0), 2.5);
  EXPECT_EQ(c.window(0), 2);  // floor of the real-valued window
  c.on_delivery(0, 0.6, 0.90);  // within cooldown: no second cut
  EXPECT_DOUBLE_EQ(c.raw_window(0), 2.5);
  c.on_drop(0, 1.5);  // cooldown expired; a drop cuts too: 2.5 -> 1.25
  EXPECT_DOUBLE_EQ(c.raw_window(0), 1.25);
  EXPECT_EQ(c.window(0), 1);
  c.on_drop(0, 3.0);  // 1.25 * 0.5 floors at min_window = 1
  EXPECT_DOUBLE_EQ(c.raw_window(0), 1.0);
  EXPECT_EQ(c.window(0), 1);
}

TEST(AimdPolicyTest, AdditiveIncreaseCapsAtMaxWindow) {
  AimdConfig config;
  config.max_window = 4.0;
  AimdController c({3}, config);
  c.on_delivery(0, 0.1, 0.0);
  c.on_delivery(0, 0.2, 0.0);
  c.on_delivery(0, 0.3, 0.0);
  EXPECT_DOUBLE_EQ(c.raw_window(0), 4.0);
  EXPECT_EQ(c.window(0), 4);
}

TEST(AimdPolicyTest, ResetRestoresInitialWindowsAndCooldown) {
  AimdController c({3, 5}, AimdConfig{});
  c.on_delivery(0, 0.1, 9.0);  // cut class 0
  EXPECT_DOUBLE_EQ(c.raw_window(0), 1.5);
  c.reset(0.0);
  EXPECT_DOUBLE_EQ(c.raw_window(0), 3.0);
  EXPECT_DOUBLE_EQ(c.raw_window(1), 5.0);
  // The cooldown clock is cleared too: an immediate cut works again.
  c.on_delivery(0, 0.05, 9.0);
  EXPECT_DOUBLE_EQ(c.raw_window(0), 1.5);
}

TEST(AimdPolicyTest, RejectsEmptyInitialWindows) {
  EXPECT_THROW(AimdController({}, AimdConfig{}), std::invalid_argument);
}

TEST(DelayTriggeredPolicyTest, HandComputedTrajectory) {
  // Defaults: +1 per quiet period (0.5 s), -10 on a late delivery,
  // threshold 0.35 s, window in [1, 64].
  DelayTriggeredController c({5}, DelayTriggeredConfig{});
  EXPECT_EQ(c.window(0), 5);

  c.on_delivery(0, 0.1, 0.10);  // first quiet delivery: 5 -> 6
  EXPECT_DOUBLE_EQ(c.raw_window(0), 6.0);
  c.on_delivery(0, 0.3, 0.10);  // 0.2 s since last step: rate-limited
  EXPECT_DOUBLE_EQ(c.raw_window(0), 6.0);
  c.on_delivery(0, 0.7, 0.10);  // 0.6 s elapsed: 6 -> 7
  EXPECT_DOUBLE_EQ(c.raw_window(0), 7.0);
  c.on_delivery(0, 0.8, 0.40);  // late: subtractive cut floors at 1
  EXPECT_DOUBLE_EQ(c.raw_window(0), 1.0);
  EXPECT_EQ(c.window(0), 1);
  // The cut restarts the period clock: no increase until 1.3.
  c.on_delivery(0, 1.0, 0.10);
  EXPECT_DOUBLE_EQ(c.raw_window(0), 1.0);
  c.on_delivery(0, 1.3, 0.10);
  EXPECT_DOUBLE_EQ(c.raw_window(0), 2.0);
}

TEST(DelayTriggeredPolicyTest, ClassesAreIndependent) {
  DelayTriggeredController c({4, 4}, DelayTriggeredConfig{});
  c.on_delivery(0, 0.1, 0.9);  // cut class 0 only
  EXPECT_EQ(c.window(0), 1);
  EXPECT_EQ(c.window(1), 4);
}

TEST(TrackingPolicyTest, RedimensionsFromObservedRates) {
  const net::Topology topo = net::canada_topology();
  const auto classes = net::two_class_traffic(25.0, 25.0);
  TrackingConfig config;
  config.period = 10.0;
  config.smoothing = 1.0;  // adopt the observation outright
  TrackingWindimController c(topo, classes, {1, 1}, config);
  EXPECT_EQ(c.window(0), 1);
  EXPECT_DOUBLE_EQ(c.tick_period(), 10.0);

  // Feeding the nominal rates must reproduce the nominal optimum.
  core::WindowProblem problem(topo, classes);
  const core::DimensionResult nominal = core::dimension_windows(problem, {});
  c.on_tick(10.0, {25.0, 25.0});
  EXPECT_EQ(c.redimensions(), 1);
  for (std::size_t r = 0; r < nominal.optimal_windows.size(); ++r) {
    EXPECT_EQ(c.window(static_cast<int>(r)),
              nominal.optimal_windows[r])
        << "class " << r;
  }

  // A malformed observation vector is ignored, not adopted.
  c.on_tick(20.0, {25.0});
  EXPECT_EQ(c.redimensions(), 1);
}

TEST(TrackingPolicyTest, RejectsMalformedConstruction) {
  const net::Topology topo = net::canada_topology();
  const auto classes = net::two_class_traffic(25.0, 25.0);
  EXPECT_THROW(TrackingWindimController(topo, classes, {1}, TrackingConfig{}),
               std::invalid_argument);
  TrackingConfig bad_period;
  bad_period.period = 0.0;
  EXPECT_THROW(TrackingWindimController(topo, classes, {1, 1}, bad_period),
               std::invalid_argument);
}

TEST(PolicyRegistryTest, NamesAreSortedAndComplete) {
  const std::vector<std::string> expected{"aimd", "delay-triggered", "static",
                                          "tracking-windim"};
  EXPECT_EQ(policy_names(), expected);
  for (const std::string& name : expected) EXPECT_TRUE(is_policy(name));
  EXPECT_FALSE(is_policy("bogus"));
}

TEST(PolicyRegistryTest, FactoryBuildsEveryPolicy) {
  const net::Topology topo = net::canada_topology();
  const auto classes = net::two_class_traffic(25.0, 25.0);
  PolicyContext context;
  context.topology = &topo;
  context.classes = &classes;
  context.static_windows = {3, 3};
  context.delay_threshold = 0.4;
  for (const std::string& name : policy_names()) {
    const std::unique_ptr<sim::WindowController> c =
        make_policy(name, context);
    ASSERT_NE(c, nullptr) << name;
    EXPECT_EQ(c->window(0), 3) << name;  // all start from the optimum
  }
}

TEST(PolicyRegistryTest, UnknownNameCarriesTheAvailableList) {
  EXPECT_EQ(unknown_policy_message("bogus"),
            "unknown policy 'bogus'; available policies: aimd, "
            "delay-triggered, static, tracking-windim");
  const net::Topology topo = net::canada_topology();
  const auto classes = net::two_class_traffic(25.0, 25.0);
  PolicyContext context;
  context.topology = &topo;
  context.classes = &classes;
  context.static_windows = {3, 3};
  EXPECT_THROW((void)make_policy("bogus", context), std::invalid_argument);
}

TEST(ScenarioRegistryTest, NamesAreSortedAndComplete) {
  const std::vector<std::string> expected{"flash-crowd", "link-failure",
                                          "on-off", "ramp", "random-service",
                                          "stationary"};
  EXPECT_EQ(scenario_names(), expected);
  for (const std::string& name : expected) EXPECT_TRUE(is_scenario(name));
  EXPECT_FALSE(is_scenario("meteor"));
}

TEST(ScenarioRegistryTest, BuildersValidateAgainstTheTopology) {
  for (const std::string& name : scenario_names()) {
    const ScenarioSpec spec = make_scenario(name, 100.0, 4);
    EXPECT_EQ(spec.name, name);
    EXPECT_NO_THROW(spec.dynamics.validate(4)) << name;
    EXPECT_GT(spec.dynamics.peak_factor(), 0.0) << name;
  }
  // Stationary is the empty dynamics (the analytic cross-check cell).
  const ScenarioSpec stationary = make_scenario("stationary", 100.0, 4);
  EXPECT_TRUE(stationary.dynamics.profile.points.empty());
  EXPECT_FALSE(stationary.dynamics.modulation.enabled);
  EXPECT_TRUE(stationary.dynamics.failures.empty());
  EXPECT_FALSE(stationary.dynamics.random_service);

  const ScenarioSpec failure = make_scenario("link-failure", 100.0, 4);
  ASSERT_EQ(failure.dynamics.failures.size(), 1u);
  EXPECT_DOUBLE_EQ(failure.dynamics.failures[0].fail_time, 40.0);
  EXPECT_DOUBLE_EQ(failure.dynamics.failures[0].repair_time, 60.0);

  EXPECT_THROW((void)make_scenario("meteor", 100.0, 4),
               std::invalid_argument);
  EXPECT_THROW((void)make_scenario("ramp", 0.0, 4), std::invalid_argument);
}

TEST(DynamicsTest, RateProfileInterpolatesAndValidates) {
  const sim::RateProfile ramp = sim::ramp_profile(0.5, 1.5, 100.0);
  EXPECT_DOUBLE_EQ(ramp.at(-1.0), 0.5);   // flat before the first knot
  EXPECT_DOUBLE_EQ(ramp.at(0.0), 0.5);
  EXPECT_DOUBLE_EQ(ramp.at(50.0), 1.0);   // linear interpolation
  EXPECT_DOUBLE_EQ(ramp.at(100.0), 1.5);
  EXPECT_DOUBLE_EQ(ramp.at(200.0), 1.5);  // flat after the last knot
  EXPECT_DOUBLE_EQ(ramp.peak(), 1.5);
  EXPECT_NO_THROW(ramp.validate());

  const sim::RateProfile crowd = sim::flash_crowd_profile(3.0, 50.0, 10.0);
  EXPECT_DOUBLE_EQ(crowd.at(0.0), 1.0);
  EXPECT_DOUBLE_EQ(crowd.at(45.0), 2.0);  // halfway up the spike
  EXPECT_DOUBLE_EQ(crowd.at(50.0), 3.0);
  EXPECT_DOUBLE_EQ(crowd.at(70.0), 1.0);
  EXPECT_DOUBLE_EQ(crowd.peak(), 3.0);

  sim::RateProfile out_of_order;
  out_of_order.points = {{10.0, 1.0}, {5.0, 2.0}};
  EXPECT_THROW(out_of_order.validate(), std::invalid_argument);
  sim::RateProfile negative;
  negative.points = {{0.0, -0.5}};
  EXPECT_THROW(negative.validate(), std::invalid_argument);
}

TEST(DynamicsTest, ScenarioValidationRejectsBadComponents) {
  sim::ScenarioDynamics bad_channel;
  bad_channel.failures.push_back({7, 10.0, 20.0});
  EXPECT_THROW(bad_channel.validate(4), std::invalid_argument);

  sim::ScenarioDynamics bad_order;
  bad_order.failures.push_back({0, 20.0, 10.0});
  EXPECT_THROW(bad_order.validate(4), std::invalid_argument);

  sim::ScenarioDynamics bad_sojourn;
  bad_sojourn.modulation.enabled = true;
  bad_sojourn.modulation.mean_on = 0.0;
  EXPECT_THROW(bad_sojourn.validate(4), std::invalid_argument);

  sim::ScenarioDynamics modulated;
  modulated.modulation.enabled = true;
  modulated.modulation.on_factor = 1.5;
  modulated.modulation.off_factor = 0.5;
  modulated.profile = sim::ramp_profile(1.0, 2.0, 10.0);
  EXPECT_DOUBLE_EQ(modulated.peak_factor(), 3.0);  // 2.0 x 1.5
}

}  // namespace
}  // namespace windim::control
