#include <gtest/gtest.h>

#include "net/generators.h"
#include "windim/windim.h"

namespace windim::net {
namespace {

TEST(GeneratorsTest, LineTopologyShape) {
  const Topology t = line_topology(5, 50.0);
  EXPECT_EQ(t.num_nodes(), 5);
  EXPECT_EQ(t.num_channels(), 4);
  EXPECT_EQ(t.shortest_route(0, 4).size(), 4u);
  EXPECT_THROW((void)line_topology(1, 50.0), std::invalid_argument);
}

TEST(GeneratorsTest, RingTopologyShape) {
  const Topology t = ring_topology(6, 50.0);
  EXPECT_EQ(t.num_nodes(), 6);
  EXPECT_EQ(t.num_channels(), 6);
  // Opposite nodes are 3 hops apart either way.
  EXPECT_EQ(t.shortest_route(0, 3).size(), 3u);
  EXPECT_THROW((void)ring_topology(2, 50.0), std::invalid_argument);
}

TEST(GeneratorsTest, StarTopologyShape) {
  const Topology t = star_topology(4, 50.0);
  EXPECT_EQ(t.num_nodes(), 5);
  EXPECT_EQ(t.num_channels(), 4);
  // Leaf to leaf goes through the hub: 2 hops.
  EXPECT_EQ(t.shortest_route(t.node_index("leaf0"), t.node_index("leaf3"))
                .size(),
            2u);
}

TEST(GeneratorsTest, GridTopologyShape) {
  const Topology t = grid_topology(3, 4, 50.0);
  EXPECT_EQ(t.num_nodes(), 12);
  // 4 rows * 2 horizontal + 3 cols * 3 vertical = 8 + 9.
  EXPECT_EQ(t.num_channels(), 17);
  // Corner to corner: Manhattan distance = 2 + 3.
  EXPECT_EQ(t.shortest_route(t.node_index("g0_0"), t.node_index("g2_3"))
                .size(),
            5u);
}

TEST(GeneratorsTest, RandomTopologyIsConnected) {
  for (int seed = 0; seed < 10; ++seed) {
    util::Rng rng(static_cast<std::uint64_t>(seed));
    const Topology t = random_topology(8, 4, 25.0, 100.0, rng);
    EXPECT_EQ(t.num_nodes(), 8);
    EXPECT_GE(t.num_channels(), 7);  // spanning tree at minimum
    for (int n = 1; n < t.num_nodes(); ++n) {
      EXPECT_NO_THROW((void)t.shortest_route(0, n));
    }
    for (int c = 0; c < t.num_channels(); ++c) {
      EXPECT_GE(t.channel(c).capacity_kbps, 25.0);
      EXPECT_LE(t.channel(c).capacity_kbps, 100.0);
    }
  }
}

TEST(GeneratorsTest, RandomTrafficIsRoutable) {
  util::Rng rng(7);
  const Topology t = grid_topology(3, 3, 50.0);
  const auto classes = random_traffic(t, 6, 5.0, 20.0, rng);
  EXPECT_EQ(classes.size(), 6u);
  for (const TrafficClass& tc : classes) {
    EXPECT_GE(tc.arrival_rate, 5.0);
    EXPECT_LE(tc.arrival_rate, 20.0);
    EXPECT_GE(tc.path.size(), 2u);
    // The generated path must be a valid channel route.
    EXPECT_NO_THROW((void)t.route_channels(tc.path));
  }
}

TEST(GeneratorsTest, GeneratedNetworksDimensionable) {
  // End-to-end: random topology + traffic feed straight into WINDIM.
  util::Rng rng(42);
  const Topology t = random_topology(6, 3, 25.0, 75.0, rng);
  const auto classes = random_traffic(t, 3, 5.0, 15.0, rng);
  const core::WindowProblem problem(t, classes);
  const core::DimensionResult r = core::dimension_windows(problem);
  EXPECT_EQ(r.optimal_windows.size(), 3u);
  EXPECT_GT(r.evaluation.power, 0.0);
}

TEST(GeneratorsTest, RejectsBadParameters) {
  util::Rng rng(1);
  EXPECT_THROW((void)random_topology(1, 0, 10.0, 20.0, rng),
               std::invalid_argument);
  EXPECT_THROW((void)random_topology(4, 0, 0.0, 20.0, rng),
               std::invalid_argument);
  const Topology t = line_topology(3, 50.0);
  EXPECT_THROW((void)random_traffic(t, 0, 1.0, 2.0, rng),
               std::invalid_argument);
  EXPECT_THROW((void)random_traffic(t, 1, 5.0, 2.0, rng),
               std::invalid_argument);
  EXPECT_THROW((void)grid_topology(1, 1, 50.0), std::invalid_argument);
}

}  // namespace
}  // namespace windim::net
