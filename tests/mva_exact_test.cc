#include <gtest/gtest.h>

#include "exact/convolution.h"
#include "mva/exact_multichain.h"
#include "mva/single_chain.h"

namespace windim::mva {
namespace {

qn::Station fcfs(const std::string& name) {
  qn::Station s;
  s.name = name;
  s.discipline = qn::Discipline::kFcfs;
  return s;
}

qn::NetworkModel shared_middle(int pop1, int pop2) {
  qn::NetworkModel m;
  const int a = m.add_station(fcfs("a"));
  const int shared = m.add_station(fcfs("shared"));
  const int b = m.add_station(fcfs("b"));
  qn::Chain c1;
  c1.type = qn::ChainType::kClosed;
  c1.population = pop1;
  c1.visits = {{a, 1.0, 0.08}, {shared, 1.0, 0.05}};
  m.add_chain(std::move(c1));
  qn::Chain c2;
  c2.type = qn::ChainType::kClosed;
  c2.population = pop2;
  c2.visits = {{shared, 1.0, 0.05}, {b, 1.0, 0.11}};
  m.add_chain(std::move(c2));
  return m;
}

TEST(ExactMvaTest, AgreesWithConvolutionTwoChains) {
  const qn::NetworkModel m = shared_middle(4, 3);
  const MvaSolution mva = solve_exact_multichain(m);
  const exact::ConvolutionResult conv = exact::solve_convolution(m);
  for (int r = 0; r < 2; ++r) {
    EXPECT_NEAR(mva.chain_throughput[static_cast<std::size_t>(r)],
                conv.chain_throughput[static_cast<std::size_t>(r)], 1e-9);
  }
  for (int n = 0; n < 3; ++n) {
    for (int r = 0; r < 2; ++r) {
      EXPECT_NEAR(mva.queue_length(n, r), conv.queue_length(n, r), 1e-8);
    }
  }
}

TEST(ExactMvaTest, SingleChainReducesToSingleChainMva) {
  qn::NetworkModel m;
  qn::Chain c;
  c.type = qn::ChainType::kClosed;
  c.population = 6;
  for (double d : {0.1, 0.25, 0.18}) {
    const int idx = m.add_station(fcfs("q"));
    c.visits.push_back({idx, 1.0, d});
  }
  m.add_chain(std::move(c));
  const MvaSolution multi = solve_exact_multichain(m);
  const SingleChainResult single = solve_single_chain(m);
  EXPECT_NEAR(multi.chain_throughput[0], single.throughput[6], 1e-10);
  for (int n = 0; n < 3; ++n) {
    EXPECT_NEAR(multi.queue_length(n, 0),
                single.mean_number[6][static_cast<std::size_t>(n)], 1e-9);
  }
}

TEST(ExactMvaTest, PopulationConservation) {
  const qn::NetworkModel m = shared_middle(5, 6);
  const MvaSolution mva = solve_exact_multichain(m);
  for (int r = 0; r < 2; ++r) {
    double total = 0.0;
    for (int n = 0; n < 3; ++n) total += mva.queue_length(n, r);
    EXPECT_NEAR(total, m.chain(r).population, 1e-9);
  }
}

TEST(ExactMvaTest, IsStationsSupported) {
  qn::NetworkModel m;
  const int a = m.add_station(fcfs("a"));
  qn::Station is;
  is.name = "think";
  is.discipline = qn::Discipline::kInfiniteServer;
  const int z = m.add_station(std::move(is));
  for (int r = 0; r < 2; ++r) {
    qn::Chain c;
    c.type = qn::ChainType::kClosed;
    c.population = 4;
    c.visits = {{a, 1.0, 0.05}, {z, 1.0, 1.0}};
    m.add_chain(std::move(c));
  }
  const MvaSolution mva = solve_exact_multichain(m);
  const exact::ConvolutionResult conv = exact::solve_convolution(m);
  for (int r = 0; r < 2; ++r) {
    EXPECT_NEAR(mva.chain_throughput[static_cast<std::size_t>(r)],
                conv.chain_throughput[static_cast<std::size_t>(r)], 1e-9);
    EXPECT_NEAR(mva.queue_length(z, r), conv.queue_length(z, r), 1e-8);
  }
}

TEST(ExactMvaTest, ThreeChainsAgreeWithConvolution) {
  qn::NetworkModel m;
  const int hub = m.add_station(fcfs("hub"));
  for (int r = 0; r < 3; ++r) {
    const int leg = m.add_station(fcfs("leg" + std::to_string(r)));
    qn::Chain c;
    c.type = qn::ChainType::kClosed;
    c.population = 2 + r;
    c.visits = {{hub, 1.0, 0.03}, {leg, 1.0, 0.05 + 0.02 * r}};
    m.add_chain(std::move(c));
  }
  const MvaSolution mva = solve_exact_multichain(m);
  const exact::ConvolutionResult conv = exact::solve_convolution(m);
  for (int r = 0; r < 3; ++r) {
    EXPECT_NEAR(mva.chain_throughput[static_cast<std::size_t>(r)],
                conv.chain_throughput[static_cast<std::size_t>(r)], 1e-9);
  }
}

TEST(ExactMvaTest, RejectsQueueDependentStations) {
  qn::NetworkModel m;
  qn::Station s = fcfs("mm2");
  s.rate_multipliers = {1.0, 2.0};
  const int a = m.add_station(std::move(s));
  qn::Chain c;
  c.type = qn::ChainType::kClosed;
  c.population = 2;
  c.visits = {{a, 1.0, 0.1}};
  m.add_chain(std::move(c));
  EXPECT_THROW((void)solve_exact_multichain(m), qn::ModelError);
}

TEST(ExactMvaTest, RejectsOpenChains) {
  qn::NetworkModel m = shared_middle(1, 1);
  qn::Chain open;
  open.type = qn::ChainType::kOpen;
  open.arrival_rate = 1.0;
  open.visits = {{0, 1.0, 0.01}};
  m.add_chain(std::move(open));
  EXPECT_THROW((void)solve_exact_multichain(m), qn::ModelError);
}

}  // namespace
}  // namespace windim::mva
