#include <gtest/gtest.h>

#include <cmath>

#include "exact/buzen.h"
#include "exact/convolution.h"
#include "exact/product_form.h"
#include "markov/closed_ctmc.h"

namespace windim::exact {
namespace {

qn::Station fcfs(const std::string& name) {
  qn::Station s;
  s.name = name;
  s.discipline = qn::Discipline::kFcfs;
  return s;
}

/// Two chains sharing a middle station - the canonical interaction case.
qn::NetworkModel shared_middle(int pop1, int pop2) {
  qn::NetworkModel m;
  const int a = m.add_station(fcfs("a"));
  const int shared = m.add_station(fcfs("shared"));
  const int b = m.add_station(fcfs("b"));
  qn::Chain c1;
  c1.name = "c1";
  c1.type = qn::ChainType::kClosed;
  c1.population = pop1;
  c1.visits = {{a, 1.0, 0.08}, {shared, 1.0, 0.05}};
  m.add_chain(std::move(c1));
  qn::Chain c2;
  c2.name = "c2";
  c2.type = qn::ChainType::kClosed;
  c2.population = pop2;
  c2.visits = {{shared, 1.0, 0.05}, {b, 1.0, 0.11}};
  m.add_chain(std::move(c2));
  return m;
}

TEST(ConvolutionTest, SingleChainReducesToBuzen) {
  qn::NetworkModel m;
  qn::Chain c;
  c.type = qn::ChainType::kClosed;
  c.population = 6;
  for (double d : {0.1, 0.25, 0.18}) {
    const int idx = m.add_station(fcfs("q"));
    c.visits.push_back({idx, 1.0, d});
  }
  m.add_chain(std::move(c));
  const ConvolutionResult conv = solve_convolution(m);
  const BuzenResult buzen = solve_buzen(m);
  EXPECT_NEAR(conv.chain_throughput[0], buzen.throughput, 1e-10);
  for (int n = 0; n < 3; ++n) {
    EXPECT_NEAR(conv.queue_length(n, 0),
                buzen.mean_number[static_cast<std::size_t>(n)], 1e-9);
  }
}

TEST(ConvolutionTest, MatchesBruteForceTwoChains) {
  const qn::NetworkModel m = shared_middle(3, 4);
  const ConvolutionResult conv = solve_convolution(m);
  const ProductFormResult brute = solve_product_form(m);
  for (int r = 0; r < 2; ++r) {
    EXPECT_NEAR(conv.chain_throughput[static_cast<std::size_t>(r)],
                brute.chain_throughput[static_cast<std::size_t>(r)], 1e-10);
  }
  for (int n = 0; n < 3; ++n) {
    for (int r = 0; r < 2; ++r) {
      EXPECT_NEAR(conv.queue_length(n, r), brute.queue_length(n, r), 1e-9)
          << "station " << n << " chain " << r;
    }
  }
}

TEST(ConvolutionTest, MatchesCtmcOracle) {
  // Independent exact method: full global-balance solution.
  qn::CyclicNetwork net;
  net.stations = {fcfs("a"), fcfs("shared"), fcfs("b")};
  net.chains = {{"c1", {0, 1}, {0.08, 0.05}, 3},
                {"c2", {1, 2}, {0.05, 0.11}, 4}};
  const markov::ClosedCtmcResult ctmc = markov::solve_closed_ctmc(net);
  const ConvolutionResult conv = solve_convolution(net.to_model());
  for (int r = 0; r < 2; ++r) {
    EXPECT_NEAR(conv.chain_throughput[static_cast<std::size_t>(r)],
                ctmc.throughput[static_cast<std::size_t>(r)], 1e-7);
  }
  for (int n = 0; n < 3; ++n) {
    for (int r = 0; r < 2; ++r) {
      EXPECT_NEAR(conv.queue_length(n, r), ctmc.queue_length(n, r), 1e-7);
    }
  }
}

TEST(ConvolutionTest, QueueLengthsSumToPopulations) {
  const qn::NetworkModel m = shared_middle(5, 2);
  const ConvolutionResult conv = solve_convolution(m);
  for (int r = 0; r < 2; ++r) {
    double total = 0.0;
    for (int n = 0; n < m.num_stations(); ++n) {
      total += conv.queue_length(n, r);
    }
    EXPECT_NEAR(total, m.chain(r).population, 1e-9);
  }
}

TEST(ConvolutionTest, LittleLawPerChainAndStation) {
  const qn::NetworkModel m = shared_middle(4, 4);
  const ConvolutionResult conv = solve_convolution(m);
  for (int n = 0; n < m.num_stations(); ++n) {
    for (int r = 0; r < 2; ++r) {
      EXPECT_NEAR(conv.queue_length(n, r),
                  conv.chain_throughput[static_cast<std::size_t>(r)] *
                      conv.time(n, r),
                  1e-10);
    }
  }
}

TEST(ConvolutionTest, SymmetricChainsGetSymmetricSolutions) {
  // Mirror-image chains with equal populations must have equal
  // throughputs.
  qn::NetworkModel m;
  const int a = m.add_station(fcfs("a"));
  const int shared = m.add_station(fcfs("shared"));
  const int b = m.add_station(fcfs("b"));
  for (int r = 0; r < 2; ++r) {
    qn::Chain c;
    c.type = qn::ChainType::kClosed;
    c.population = 3;
    if (r == 0) {
      c.visits = {{a, 1.0, 0.07}, {shared, 1.0, 0.04}};
    } else {
      c.visits = {{b, 1.0, 0.07}, {shared, 1.0, 0.04}};
    }
    m.add_chain(std::move(c));
  }
  const ConvolutionResult conv = solve_convolution(m);
  EXPECT_NEAR(conv.chain_throughput[0], conv.chain_throughput[1], 1e-10);
  EXPECT_NEAR(conv.queue_length(0, 0), conv.queue_length(2, 1), 1e-10);
}

TEST(ConvolutionTest, UtilizationBelowOneAndConsistent) {
  const qn::NetworkModel m = shared_middle(6, 6);
  const ConvolutionResult conv = solve_convolution(m);
  for (int n = 0; n < m.num_stations(); ++n) {
    EXPECT_GE(conv.station_utilization[static_cast<std::size_t>(n)], 0.0);
    EXPECT_LE(conv.station_utilization[static_cast<std::size_t>(n)],
              1.0 + 1e-12);
  }
  // Shared station utilization = sum of demand * throughput.
  const double expected = 0.05 * (conv.chain_throughput[0] +
                                  conv.chain_throughput[1]);
  EXPECT_NEAR(conv.station_utilization[1], expected, 1e-10);
}

TEST(ConvolutionTest, IsStationMatchesBruteForce) {
  qn::NetworkModel m;
  const int a = m.add_station(fcfs("a"));
  qn::Station think;
  think.name = "think";
  think.discipline = qn::Discipline::kInfiniteServer;
  const int z = m.add_station(std::move(think));
  for (int r = 0; r < 2; ++r) {
    qn::Chain c;
    c.type = qn::ChainType::kClosed;
    c.population = 3;
    c.visits = {{a, 1.0, 0.1}, {z, 1.0, 0.5 + 0.25 * r}};
    m.add_chain(std::move(c));
  }
  const ConvolutionResult conv = solve_convolution(m);
  const ProductFormResult brute = solve_product_form(m);
  for (int r = 0; r < 2; ++r) {
    EXPECT_NEAR(conv.chain_throughput[static_cast<std::size_t>(r)],
                brute.chain_throughput[static_cast<std::size_t>(r)], 1e-9);
    EXPECT_NEAR(conv.queue_length(z, r), brute.queue_length(z, r), 1e-9);
  }
}

TEST(ConvolutionTest, QueueDependentStationMatchesBruteForce) {
  qn::NetworkModel m;
  qn::Station mm2 = fcfs("mm2");
  mm2.rate_multipliers = {1.0, 2.0};
  const int a = m.add_station(std::move(mm2));
  const int b = m.add_station(fcfs("b"));
  for (int r = 0; r < 2; ++r) {
    qn::Chain c;
    c.type = qn::ChainType::kClosed;
    c.population = 2 + r;
    c.visits = {{a, 1.0, 0.2}, {b, 1.0, 0.1}};
    m.add_chain(std::move(c));
  }
  const ConvolutionResult conv = solve_convolution(m);
  const ProductFormResult brute = solve_product_form(m);
  for (int r = 0; r < 2; ++r) {
    EXPECT_NEAR(conv.chain_throughput[static_cast<std::size_t>(r)],
                brute.chain_throughput[static_cast<std::size_t>(r)], 1e-9);
    for (int n = 0; n < 2; ++n) {
      EXPECT_NEAR(conv.queue_length(n, r), brute.queue_length(n, r), 1e-8);
    }
  }
}

TEST(ConvolutionTest, MarginalDistributionsMatchCtmcOracle) {
  // Full distributional agreement with the global-balance solution, not
  // just the means.
  qn::CyclicNetwork net;
  net.stations = {fcfs("a"), fcfs("shared"), fcfs("b")};
  net.chains = {{"c1", {0, 1}, {0.08, 0.05}, 3},
                {"c2", {1, 2}, {0.05, 0.11}, 2}};
  const markov::ClosedCtmcResult ctmc = markov::solve_closed_ctmc(net);
  ConvolutionOptions options;
  options.compute_marginals = true;
  const ConvolutionResult conv =
      solve_convolution(net.to_model(), options);
  for (int n = 0; n < 3; ++n) {
    for (std::size_t k = 0;
         k < ctmc.marginal[static_cast<std::size_t>(n)].size(); ++k) {
      const double conv_p =
          k < conv.marginal[static_cast<std::size_t>(n)].size()
              ? conv.marginal[static_cast<std::size_t>(n)][k]
              : 0.0;
      EXPECT_NEAR(conv_p, ctmc.marginal[static_cast<std::size_t>(n)][k],
                  1e-7)
          << "station " << n << " count " << k;
    }
  }
}

TEST(ConvolutionTest, MarginalDistributionsWhenRequested) {
  ConvolutionOptions options;
  options.compute_marginals = true;
  const qn::NetworkModel m = shared_middle(3, 3);
  const ConvolutionResult conv = solve_convolution(m, options);
  ASSERT_EQ(conv.marginal.size(), 3u);
  for (int n = 0; n < 3; ++n) {
    double total = 0.0, mean = 0.0;
    for (std::size_t k = 0; k < conv.marginal[static_cast<std::size_t>(n)].size();
         ++k) {
      const double p = conv.marginal[static_cast<std::size_t>(n)][k];
      EXPECT_GE(p, -1e-12);
      total += p;
      mean += static_cast<double>(k) * p;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
    const double expected_mean =
        conv.queue_length(n, 0) + conv.queue_length(n, 1);
    EXPECT_NEAR(mean, expected_mean, 1e-8);
  }
}

TEST(ConvolutionTest, ZeroPopulationChainContributesNothing) {
  const qn::NetworkModel m = shared_middle(4, 0);
  const ConvolutionResult conv = solve_convolution(m);
  EXPECT_DOUBLE_EQ(conv.chain_throughput[1], 0.0);
  EXPECT_NEAR(conv.queue_length(1, 1), 0.0, 1e-12);
  // Chain 1 behaves as if alone.
  qn::NetworkModel alone;
  const int a = alone.add_station(fcfs("a"));
  const int s = alone.add_station(fcfs("shared"));
  qn::Chain c;
  c.type = qn::ChainType::kClosed;
  c.population = 4;
  c.visits = {{a, 1.0, 0.08}, {s, 1.0, 0.05}};
  alone.add_chain(std::move(c));
  EXPECT_NEAR(conv.chain_throughput[0],
              solve_buzen(alone).throughput, 1e-10);
}

TEST(ConvolutionTest, ThroughputMonotoneInOwnPopulation) {
  double previous = 0.0;
  for (int pop = 1; pop <= 8; ++pop) {
    const ConvolutionResult conv = solve_convolution(shared_middle(pop, 3));
    EXPECT_GT(conv.chain_throughput[0], previous);
    previous = conv.chain_throughput[0];
  }
}

TEST(ConvolutionTest, MoreCompetitionLowersOtherChainThroughput) {
  const double alone = solve_convolution(shared_middle(4, 1))
                           .chain_throughput[0];
  const double crowded = solve_convolution(shared_middle(4, 8))
                             .chain_throughput[0];
  EXPECT_LT(crowded, alone);
}

TEST(ConvolutionTest, RejectsOpenChains) {
  qn::NetworkModel m = shared_middle(2, 2);
  qn::Chain open;
  open.type = qn::ChainType::kOpen;
  open.arrival_rate = 1.0;
  open.visits = {{0, 1.0, 0.01}};
  m.add_chain(std::move(open));
  EXPECT_THROW((void)solve_convolution(m), qn::ModelError);
}

TEST(ConvolutionTest, ThreeChainLatticeMatchesBruteForce) {
  qn::NetworkModel m;
  const int a = m.add_station(fcfs("a"));
  const int b = m.add_station(fcfs("b"));
  const int c = m.add_station(fcfs("c"));
  const int hub = m.add_station(fcfs("hub"));
  const double hub_time = 0.03;
  int pops[3] = {2, 3, 1};
  const int firsts[3] = {a, b, c};
  const double first_time[3] = {0.06, 0.09, 0.04};
  for (int r = 0; r < 3; ++r) {
    qn::Chain chain;
    chain.type = qn::ChainType::kClosed;
    chain.population = pops[r];
    chain.visits = {{firsts[r], 1.0, first_time[r]}, {hub, 1.0, hub_time}};
    m.add_chain(std::move(chain));
  }
  const ConvolutionResult conv = solve_convolution(m);
  const ProductFormResult brute = solve_product_form(m);
  for (int r = 0; r < 3; ++r) {
    EXPECT_NEAR(conv.chain_throughput[static_cast<std::size_t>(r)],
                brute.chain_throughput[static_cast<std::size_t>(r)], 1e-10);
  }
  for (int n = 0; n < 4; ++n) {
    for (int r = 0; r < 3; ++r) {
      EXPECT_NEAR(conv.queue_length(n, r), brute.queue_length(n, r), 1e-9);
    }
  }
}

TEST(ConvolutionTest, LogDomainMatchesLinearAtModeratePopulations) {
  const qn::NetworkModel m = shared_middle(3, 4);
  ConvolutionOptions linear;
  linear.domain = ConvolutionDomain::kLinear;
  ConvolutionOptions log;
  log.domain = ConvolutionDomain::kLog;
  const ConvolutionResult a = solve_convolution(m, linear);
  const ConvolutionResult b = solve_convolution(m, log);
  EXPECT_FALSE(a.log_domain);
  EXPECT_TRUE(b.log_domain);
  for (int r = 0; r < 2; ++r) {
    EXPECT_NEAR(a.chain_throughput[static_cast<std::size_t>(r)],
                b.chain_throughput[static_cast<std::size_t>(r)], 1e-9);
  }
  for (int n = 0; n < 3; ++n) {
    for (int r = 0; r < 2; ++r) {
      EXPECT_NEAR(a.queue_length(n, r), b.queue_length(n, r), 1e-9);
    }
  }
}

TEST(ConvolutionTest, AutoStaysLinearWhenTheConstantIsRepresentable) {
  ConvolutionOptions opts;
  opts.domain = ConvolutionDomain::kAuto;
  const ConvolutionResult r = solve_convolution(shared_middle(3, 4), opts);
  EXPECT_FALSE(r.log_domain);
}

TEST(ConvolutionTest, AutoFallsBackToLogDomainOnOverflow) {
  // A queue-dependent station whose rate collapses to 1e-120 of nominal:
  // its lattice coefficient at k customers carries a factor 1e+120k, so
  // the linear normalization constant overflows already at population 4.
  // kLinear must report the degenerate constant; kAuto must
  // transparently re-solve in the log domain and agree with the
  // log-domain Buzen reference.
  qn::NetworkModel m;
  const int a = m.add_station(fcfs("a"));
  qn::Station slow = fcfs("slow");
  slow.rate_multipliers = {1e-120};
  const int s = m.add_station(std::move(slow));
  qn::Chain c;
  c.type = qn::ChainType::kClosed;
  c.population = 4;
  c.visits = {{a, 1.0, 0.05}, {s, 1.0, 0.05}};
  m.add_chain(std::move(c));

  ConvolutionOptions linear;
  linear.domain = ConvolutionDomain::kLinear;
  EXPECT_THROW((void)solve_convolution(m, linear), std::runtime_error);

  ConvolutionOptions auto_domain;
  auto_domain.domain = ConvolutionDomain::kAuto;
  const ConvolutionResult conv = solve_convolution(m, auto_domain);
  EXPECT_TRUE(conv.log_domain);

  const BuzenResult buzen = solve_buzen_log(m);
  ASSERT_TRUE(std::isfinite(conv.chain_throughput[0]));
  ASSERT_GT(buzen.throughput, 0.0);
  EXPECT_NEAR(conv.chain_throughput[0], buzen.throughput,
              1e-9 * buzen.throughput);
  // Conservation: the population piles up behind the collapsed station.
  EXPECT_NEAR(conv.queue_length(0, 0) + conv.queue_length(1, 0), 4.0, 1e-6);
  EXPECT_GT(conv.queue_length(1, 0), 3.9);
}

}  // namespace
}  // namespace windim::exact
