#include <gtest/gtest.h>

#include "net/examples.h"
#include "net/topology.h"

namespace windim::net {
namespace {

TEST(TopologyTest, AddAndLookupNodes) {
  Topology t;
  EXPECT_EQ(t.add_node("a"), 0);
  EXPECT_EQ(t.add_node("b"), 1);
  EXPECT_EQ(t.node_index("b"), 1);
  EXPECT_THROW((void)t.node_index("zzz"), std::out_of_range);
  EXPECT_THROW((void)t.add_node("a"), std::invalid_argument);
  EXPECT_THROW((void)t.add_node(""), std::invalid_argument);
}

TEST(TopologyTest, ChannelsAreHalfDuplex) {
  Topology t;
  t.add_node("a");
  t.add_node("b");
  const int c = t.add_channel("a", "b", 50.0);
  // One channel serves both directions.
  EXPECT_EQ(t.channel_between(0, 1), c);
  EXPECT_EQ(t.channel_between(1, 0), c);
  EXPECT_EQ(t.channel_between(0, 0), -1);
  EXPECT_EQ(t.channel(c).name, "a-b");
}

TEST(TopologyTest, RejectsBadChannels) {
  Topology t;
  t.add_node("a");
  t.add_node("b");
  t.add_channel("a", "b", 50.0);
  EXPECT_THROW((void)t.add_channel("a", "b", 25.0), std::invalid_argument);
  EXPECT_THROW((void)t.add_channel(0, 0, 25.0), std::invalid_argument);
  EXPECT_THROW((void)t.add_channel(0, 5, 25.0), std::invalid_argument);
  EXPECT_THROW((void)t.add_channel(0, 1, 0.0), std::invalid_argument);
}

TEST(TopologyTest, ShortestRouteByHops) {
  // a - b - c - d plus shortcut a - c.
  Topology t;
  for (const char* n : {"a", "b", "c", "d"}) t.add_node(n);
  t.add_channel("a", "b", 50.0);
  const int bc = t.add_channel("b", "c", 50.0);
  const int cd = t.add_channel("c", "d", 50.0);
  const int ac = t.add_channel("a", "c", 25.0);
  EXPECT_EQ(t.shortest_route(0, 3), (std::vector<int>{ac, cd}));
  EXPECT_EQ(t.shortest_route(1, 3), (std::vector<int>{bc, cd}));
  EXPECT_TRUE(t.shortest_route(2, 2).empty());
}

TEST(TopologyTest, ShortestRouteDisconnected) {
  Topology t;
  t.add_node("a");
  t.add_node("b");
  EXPECT_THROW((void)t.shortest_route(0, 1), std::runtime_error);
}

TEST(TopologyTest, RouteChannelsFollowsNamedPath) {
  Topology t;
  for (const char* n : {"a", "b", "c"}) t.add_node(n);
  const int ab = t.add_channel("a", "b", 50.0);
  const int bc = t.add_channel("b", "c", 50.0);
  EXPECT_EQ(t.route_channels({"a", "b", "c"}),
            (std::vector<int>{ab, bc}));
  EXPECT_EQ(t.route_channels({"c", "b", "a"}),
            (std::vector<int>{bc, ab}));
  EXPECT_THROW((void)t.route_channels({"a", "c"}), std::runtime_error);
  EXPECT_THROW((void)t.route_channels({"a"}), std::invalid_argument);
}

// ------------------------------------------------------------ thesis networks

TEST(CanadaTest, TopologyShape) {
  const Topology t = canada_topology();
  EXPECT_EQ(t.num_nodes(), 6);
  EXPECT_EQ(t.num_channels(), 7);
  int fast = 0, slow = 0;
  for (int c = 0; c < t.num_channels(); ++c) {
    if (t.channel(c).capacity_kbps == 50.0) ++fast;
    if (t.channel(c).capacity_kbps == 25.0) ++slow;
  }
  EXPECT_EQ(fast, 5);  // channels 1-5
  EXPECT_EQ(slow, 2);  // channels 6-7
}

TEST(CanadaTest, TwoClassRoutesHaveFourHopsEach) {
  const Topology t = canada_topology();
  const auto classes = two_class_traffic(10.0, 20.0);
  ASSERT_EQ(classes.size(), 2u);
  EXPECT_EQ(t.route_channels(classes[0].path).size(), 4u);
  EXPECT_EQ(t.route_channels(classes[1].path).size(), 4u);
  EXPECT_DOUBLE_EQ(classes[0].arrival_rate, 10.0);
  EXPECT_DOUBLE_EQ(classes[1].arrival_rate, 20.0);
  EXPECT_DOUBLE_EQ(classes[0].mean_message_bits, 1000.0);
}

TEST(CanadaTest, OppositeClassesShareThreeChannels) {
  // The interaction that drives the thesis's 2-class example: classes 1
  // and 2 run in opposite directions over the same half-duplex channels.
  const Topology t = canada_topology();
  const auto classes = two_class_traffic(1.0, 1.0);
  auto r1 = t.route_channels(classes[0].path);
  auto r2 = t.route_channels(classes[1].path);
  int shared = 0;
  for (int c1 : r1) {
    for (int c2 : r2) {
      if (c1 == c2) ++shared;
    }
  }
  EXPECT_EQ(shared, 3);
}

TEST(CanadaTest, FourClassHopCountsMatchTable412) {
  // Kleinrock initialization (4, 4, 3, 1) of Table 4.12.
  const Topology t = canada_topology();
  const auto classes = four_class_traffic(1.0, 1.0, 1.0, 1.0);
  ASSERT_EQ(classes.size(), 4u);
  const int expected[] = {4, 4, 3, 1};
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(t.route_channels(classes[static_cast<std::size_t>(r)].path)
                  .size(),
              static_cast<std::size_t>(expected[r]))
        << "class " << r;
  }
}

TEST(CanadaTest, Class3UsesTheSlowShortcut) {
  const Topology t = canada_topology();
  const auto classes = four_class_traffic(1.0, 1.0, 1.0, 1.0);
  const auto route = t.route_channels(classes[2].path);
  bool uses_25kbps = false;
  for (int c : route) {
    if (t.channel(c).capacity_kbps == 25.0) uses_25kbps = true;
  }
  EXPECT_TRUE(uses_25kbps);
}

}  // namespace
}  // namespace windim::net
