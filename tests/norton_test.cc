// Flow-equivalent-server (Norton) aggregation tests: exactness on
// single-chain product-form networks, validation errors, and the
// large-cyclic spot check that motivates the pass (a collapsed ring is
// a cheap oracle for per-chain marginals of continental fixtures).
#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <vector>

#include "exact/norton.h"
#include "qn/compiled_model.h"
#include "qn/error.h"
#include "qn/network.h"
#include "solver/registry.h"
#include "solver/solver.h"
#include "solver/workspace.h"
#include "verify/gen.h"

namespace windim {
namespace {

qn::Station fcfs(const char* name) {
  qn::Station s;
  s.name = name;
  s.discipline = qn::Discipline::kFcfs;
  return s;
}

qn::Station is(const char* name) {
  qn::Station s;
  s.name = name;
  s.discipline = qn::Discipline::kInfiniteServer;
  return s;
}

// Five-station single-chain closed network with mixed disciplines and
// non-unit visit ratios — enough structure that an indexing mistake in
// the aggregation cannot cancel out.
qn::NetworkModel five_station_model(int population) {
  qn::NetworkModel m;
  m.add_station(fcfs("cpu"));
  m.add_station(fcfs("disk-a"));
  m.add_station(fcfs("disk-b"));
  m.add_station(is("think"));
  m.add_station(fcfs("net"));
  qn::Chain c;
  c.name = "jobs";
  c.type = qn::ChainType::kClosed;
  c.population = population;
  c.visits = {{0, 1.0, 0.05},
              {1, 0.6, 0.08},
              {2, 0.4, 0.12},
              {3, 1.0, 0.5},
              {4, 2.0, 0.03}};
  m.add_chain(std::move(c));
  return m;
}

solver::Solution solve_with(const char* name, const qn::CompiledModel& model,
                            const std::vector<int>& population,
                            solver::Workspace& ws) {
  return solver::SolverRegistry::instance().require(name).solve(
      model, population, ws);
}

TEST(Norton, AggregationIsExactForSingleChainProductForm) {
  const int population = 4;
  const qn::NetworkModel full = five_station_model(population);
  const qn::CompiledModel full_c = qn::CompiledModel::compile(full);
  solver::Workspace full_ws;
  const solver::Solution ref =
      solve_with("convolution", full_c, {population}, full_ws);

  // Collapse the two disks and the network link into one FES.
  const std::array<int, 3> sub{1, 2, 4};
  const exact::NortonResult norton = exact::norton_aggregate(full, sub);
  ASSERT_EQ(norton.aggregated.num_stations(), 3);
  ASSERT_EQ(norton.fes_station, 2);
  ASSERT_EQ(norton.kept, (std::vector<int>{0, 3}));
  ASSERT_EQ(norton.fes_rates.size(), static_cast<std::size_t>(population));

  const qn::CompiledModel agg_c =
      qn::CompiledModel::compile(norton.aggregated);
  solver::Workspace agg_ws;
  const solver::Solution agg =
      solve_with("convolution", agg_c, {population}, agg_ws);

  // Exact, not approximate: chain throughput and every kept station's
  // queue length must reproduce the full model's.
  ASSERT_EQ(agg.chain_throughput.size(), 1u);
  EXPECT_NEAR(agg.chain_throughput[0], ref.chain_throughput[0],
              1e-9 * ref.chain_throughput[0]);
  for (std::size_t i = 0; i < norton.kept.size(); ++i) {
    const double want = ref.queue_length(norton.kept[i], 0);
    const double got = agg.queue_length(static_cast<int>(i), 0);
    EXPECT_NEAR(got, want, 1e-9 * (1.0 + want))
        << "kept station " << norton.kept[i];
  }
  // The FES holds exactly the subnetwork's aggregate population.
  double sub_queue = 0.0;
  for (int n : sub) sub_queue += ref.queue_length(n, 0);
  EXPECT_NEAR(agg.queue_length(norton.fes_station, 0), sub_queue,
              1e-9 * (1.0 + sub_queue));
}

TEST(Norton, FesRatesAreTheShortedSubnetworkThroughputs) {
  const qn::NetworkModel full = five_station_model(3);
  const exact::NortonResult norton = exact::norton_aggregate(
      full, std::array<int, 2>{1, 2});
  ASSERT_EQ(norton.fes_rates.size(), 3u);
  // Throughput of a closed network is strictly increasing in
  // population (finite demands, no saturation at these sizes).
  EXPECT_GT(norton.fes_rates[0], 0.0);
  EXPECT_GT(norton.fes_rates[1], norton.fes_rates[0]);
  EXPECT_GT(norton.fes_rates[2], norton.fes_rates[1]);
}

TEST(Norton, LargeCyclicRingCollapsesToAnExactTwoStationModel) {
  // The verify-suite use case: a single-chain large-cyclic instance
  // (same generator as the continental fixtures, R = 1) has its whole
  // 24-station ring folded into one FES, leaving ring-FES + think — a
  // two-station model any exact solver handles instantly.
  verify::GenOptions opt;
  opt.large_chains = 1;
  const verify::Instance inst =
      verify::generate(verify::Family::kLargeCyclic, 11, opt);
  ASSERT_EQ(inst.model.num_chains(), 1);
  const int population = inst.model.chain(0).population;

  std::vector<int> ring(24);
  for (int n = 0; n < 24; ++n) ring[static_cast<std::size_t>(n)] = n;
  const exact::NortonResult norton = exact::norton_aggregate(inst.model, ring);

  const qn::CompiledModel full_c = qn::CompiledModel::compile(inst.model);
  const qn::CompiledModel agg_c =
      qn::CompiledModel::compile(norton.aggregated);
  solver::Workspace full_ws;
  solver::Workspace agg_ws;
  const solver::Solution ref =
      solve_with("convolution", full_c, {population}, full_ws);
  const solver::Solution agg =
      solve_with("convolution", agg_c, {population}, agg_ws);
  EXPECT_NEAR(agg.chain_throughput[0], ref.chain_throughput[0],
              1e-9 * ref.chain_throughput[0]);
}

TEST(Norton, RejectsInvalidInputs) {
  const qn::NetworkModel single = five_station_model(2);

  // Multichain models are out of scope (Norton is exact only for one
  // chain; the multichain generalization is approximate).
  qn::NetworkModel multi = five_station_model(2);
  qn::Chain extra;
  extra.name = "second";
  extra.type = qn::ChainType::kClosed;
  extra.population = 1;
  extra.visits = {{0, 1.0, 0.05}};
  multi.add_chain(std::move(extra));
  EXPECT_THROW((void)exact::norton_aggregate(multi, std::array<int, 1>{0}),
               qn::ModelError);

  // Subnetwork must be a nonempty proper subset without duplicates,
  // referencing known stations the chain actually visits.
  EXPECT_THROW(
      (void)exact::norton_aggregate(single, std::span<const int>{}),
      qn::ModelError);
  EXPECT_THROW((void)exact::norton_aggregate(
                   single, std::array<int, 5>{0, 1, 2, 3, 4}),
               qn::ModelError);
  EXPECT_THROW(
      (void)exact::norton_aggregate(single, std::array<int, 2>{1, 1}),
      qn::ModelError);
  EXPECT_THROW(
      (void)exact::norton_aggregate(single, std::array<int, 1>{99}),
      qn::ModelError);
}

}  // namespace
}  // namespace windim
