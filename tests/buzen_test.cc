#include <gtest/gtest.h>

#include <cmath>

#include "exact/buzen.h"
#include "exact/product_form.h"

namespace windim::exact {
namespace {

qn::Station fcfs(const std::string& name) {
  qn::Station s;
  s.name = name;
  s.discipline = qn::Discipline::kFcfs;
  return s;
}

qn::NetworkModel cycle(const std::vector<double>& demands, int population,
                       const std::vector<qn::Discipline>& disciplines = {}) {
  qn::NetworkModel m;
  qn::Chain c;
  c.name = "chain";
  c.type = qn::ChainType::kClosed;
  c.population = population;
  for (std::size_t i = 0; i < demands.size(); ++i) {
    qn::Station s = fcfs("q" + std::to_string(i));
    if (!disciplines.empty()) s.discipline = disciplines[i];
    const int idx = m.add_station(std::move(s));
    c.visits.push_back({idx, 1.0, demands[i]});
  }
  m.add_chain(std::move(c));
  return m;
}

TEST(BuzenTest, TwoStationClosedForm) {
  // G(k) = sum_{j=0..k} x0^j x1^(k-j); with the internal rescaling only
  // throughput ratios are externally visible.
  const qn::NetworkModel m = cycle({0.1, 0.25}, 4);
  const BuzenResult r = solve_buzen(m);
  auto g = [&](int k) {
    double sum = 0.0;
    for (int j = 0; j <= k; ++j) sum += std::pow(0.1, j) * std::pow(0.25, k - j);
    return sum;
  };
  EXPECT_NEAR(r.throughput, g(3) / g(4), 1e-12);
}

TEST(BuzenTest, BalancedCycleClosedForm) {
  // M identical stations with demand x, population K:
  // lambda = K / (x (K + M - 1)).
  const int M = 4, K = 6;
  const double x = 0.05;
  const qn::NetworkModel m = cycle(std::vector<double>(M, x), K);
  const BuzenResult r = solve_buzen(m);
  EXPECT_NEAR(r.throughput, K / (x * (K + M - 1)), 1e-10);
  // Balanced: each station holds K/M customers.
  for (int n = 0; n < M; ++n) {
    EXPECT_NEAR(r.mean_number[static_cast<std::size_t>(n)],
                static_cast<double>(K) / M, 1e-10);
  }
}

TEST(BuzenTest, MatchesBruteForceProductForm) {
  const qn::NetworkModel m = cycle({0.12, 0.3, 0.07}, 5);
  const BuzenResult buzen = solve_buzen(m);
  const ProductFormResult brute = solve_product_form(m);
  EXPECT_NEAR(buzen.throughput, brute.chain_throughput[0], 1e-10);
  for (int n = 0; n < 3; ++n) {
    EXPECT_NEAR(buzen.mean_number[static_cast<std::size_t>(n)],
                brute.queue_length(n, 0), 1e-10);
  }
}

TEST(BuzenTest, UtilizationEqualsDemandTimesThroughput) {
  const qn::NetworkModel m = cycle({0.1, 0.2, 0.15}, 4);
  const BuzenResult r = solve_buzen(m);
  for (int n = 0; n < 3; ++n) {
    EXPECT_NEAR(r.utilization[static_cast<std::size_t>(n)],
                m.demand(0, n) * r.throughput, 1e-10);
  }
}

TEST(BuzenTest, MarginalsSumToOneAndToMeans) {
  const qn::NetworkModel m = cycle({0.1, 0.3}, 6);
  const BuzenResult r = solve_buzen(m);
  for (int n = 0; n < 2; ++n) {
    double total = 0.0, mean = 0.0;
    for (std::size_t j = 0; j < r.marginal[static_cast<std::size_t>(n)].size();
         ++j) {
      total += r.marginal[static_cast<std::size_t>(n)][j];
      mean += static_cast<double>(j) *
              r.marginal[static_cast<std::size_t>(n)][j];
    }
    EXPECT_NEAR(total, 1.0, 1e-10);
    EXPECT_NEAR(mean, r.mean_number[static_cast<std::size_t>(n)], 1e-10);
  }
}

TEST(BuzenTest, QueueLengthsSumToPopulation) {
  const qn::NetworkModel m = cycle({0.1, 0.2, 0.3, 0.05}, 7);
  const BuzenResult r = solve_buzen(m);
  double total = 0.0;
  for (double n : r.mean_number) total += n;
  EXPECT_NEAR(total, 7.0, 1e-9);
}

TEST(BuzenTest, BottleneckSaturatesAtLargePopulation) {
  // Throughput approaches 1/max_demand as K grows.
  const qn::NetworkModel m = cycle({0.1, 0.5, 0.2}, 60);
  const BuzenResult r = solve_buzen(m);
  EXPECT_NEAR(r.throughput, 1.0 / 0.5, 0.01);
  EXPECT_LE(r.throughput, 1.0 / 0.5 + 1e-12);  // never above capacity
}

TEST(BuzenTest, IsStationAbsorbsCustomersWithoutQueueing) {
  const qn::NetworkModel m =
      cycle({0.1, 2.0}, 8,
            {qn::Discipline::kFcfs, qn::Discipline::kInfiniteServer});
  const BuzenResult r = solve_buzen(m);
  // IS mean number equals demand * throughput.
  EXPECT_NEAR(r.mean_number[1], 2.0 * r.throughput, 1e-9);
  // And the IS station must match brute force.
  const ProductFormResult brute = solve_product_form(m);
  EXPECT_NEAR(r.throughput, brute.chain_throughput[0], 1e-10);
  EXPECT_NEAR(r.mean_number[1], brute.queue_length(1, 0), 1e-9);
}

TEST(BuzenTest, QueueDependentStationMatchesBruteForce) {
  qn::NetworkModel m;
  qn::Station mm2 = fcfs("mm2");
  mm2.rate_multipliers = {1.0, 2.0};
  const int a = m.add_station(std::move(mm2));
  const int b = m.add_station(fcfs("fix"));
  qn::Chain c;
  c.type = qn::ChainType::kClosed;
  c.population = 5;
  c.visits = {{a, 1.0, 0.4}, {b, 1.0, 0.15}};
  m.add_chain(std::move(c));
  const BuzenResult r = solve_buzen(m);
  const ProductFormResult brute = solve_product_form(m);
  EXPECT_NEAR(r.throughput, brute.chain_throughput[0], 1e-10);
  EXPECT_NEAR(r.mean_number[0], brute.queue_length(0, 0), 1e-9);
  EXPECT_NEAR(r.mean_number[1], brute.queue_length(1, 0), 1e-9);
}

TEST(BuzenTest, ZeroPopulationIsEmptyNetwork) {
  const qn::NetworkModel m = cycle({0.1, 0.2}, 0);
  const BuzenResult r = solve_buzen(m);
  EXPECT_DOUBLE_EQ(r.throughput, 0.0);
  EXPECT_DOUBLE_EQ(r.marginal[0][0], 1.0);
}

TEST(BuzenTest, ThroughputMonotoneInPopulation) {
  double previous = 0.0;
  for (int k = 1; k <= 12; ++k) {
    const BuzenResult r = solve_buzen(cycle({0.1, 0.25, 0.18}, k));
    EXPECT_GT(r.throughput, previous);
    previous = r.throughput;
  }
}

TEST(BuzenTest, RejectsMultichainModels) {
  qn::NetworkModel m = cycle({0.1, 0.2}, 2);
  qn::Chain extra;
  extra.type = qn::ChainType::kClosed;
  extra.population = 1;
  extra.visits = {{0, 1.0, 0.1}};
  m.add_chain(std::move(extra));
  EXPECT_THROW((void)solve_buzen(m), qn::ModelError);
}

// ----------------------------------------------------------------- log domain

TEST(BuzenLogTest, MatchesLinearDomainOnModerateCases) {
  const qn::NetworkModel m = cycle({0.1, 0.3, 0.22}, 8);
  const BuzenResult lin = solve_buzen(m);
  const BuzenResult log = solve_buzen_log(m);
  EXPECT_NEAR(lin.throughput, log.throughput, 1e-9 * lin.throughput);
  for (int n = 0; n < 3; ++n) {
    EXPECT_NEAR(lin.mean_number[static_cast<std::size_t>(n)],
                log.mean_number[static_cast<std::size_t>(n)], 1e-8);
  }
}

TEST(BuzenLogTest, SurvivesExtremePopulationAndDemands) {
  // Demands spanning 4 orders of magnitude and population 400: the
  // linear-domain G would overflow without rescaling; the log domain
  // must stay finite and sane.
  const qn::NetworkModel m = cycle({1e-4, 5.0, 0.01}, 400);
  const BuzenResult r = solve_buzen_log(m);
  EXPECT_TRUE(std::isfinite(r.throughput));
  EXPECT_GT(r.throughput, 0.0);
  EXPECT_LT(r.throughput, 1.0 / 5.0 + 1e-9);  // below bottleneck capacity
  double total = 0.0;
  for (double n : r.mean_number) total += n;
  EXPECT_NEAR(total, 400.0, 1e-6 * 400.0);
}

}  // namespace
}  // namespace windim::exact
