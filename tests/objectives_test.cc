// The objective registry (windim/objectives.h): name round-trips,
// option validation, the exact objective-vector semantics of every
// kind, the Jain-fairness pins of Evaluation.fairness, and the
// exhaustive/pattern-search parity sweep over the whole registry.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "search/exhaustive.h"
#include "search/pattern_search.h"
#include "windim/windim.h"

namespace windim::core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

WindowProblem two_class_problem(double s1 = 20.0, double s2 = 20.0) {
  return WindowProblem(net::canada_topology(),
                       net::two_class_traffic(s1, s2));
}

WindowProblem four_class_problem() {
  return WindowProblem(net::canada_topology(),
                       net::four_class_traffic(6.0, 6.0, 6.0, 12.0));
}

/// Jain's index computed from first principles, independent of
/// obs::jain_fairness: (sum x)^2 / (n * sum x^2).
double jain_by_hand(const std::vector<double>& x) {
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double v : x) {
    sum += v;
    sum_sq += v * v;
  }
  return sum * sum / (static_cast<double>(x.size()) * sum_sq);
}

/// The per-class power allocation Evaluation.fairness is judged over.
std::vector<double> powers_by_hand(const Evaluation& ev) {
  std::vector<double> p;
  for (std::size_t r = 0; r < ev.class_throughput.size(); ++r) {
    p.push_back(ev.class_throughput[r] / ev.class_delay[r]);
  }
  return p;
}

TEST(ObjectiveRegistryTest, NamesRoundTrip) {
  const std::vector<const char*> names = objective_kind_names();
  ASSERT_EQ(names.size(), 5u);
  for (const char* name : names) {
    EXPECT_STREQ(to_string(objective_kind_from_string(name)), name);
  }
}

TEST(ObjectiveRegistryTest, UnknownNameListsTheRegistry) {
  try {
    (void)objective_kind_from_string("bogus");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("bogus"), std::string::npos);
    for (const char* name : objective_kind_names()) {
      EXPECT_NE(msg.find(name), std::string::npos) << name;
    }
  }
}

TEST(ObjectiveRegistryTest, ValidateRejectsOutOfDomainKnobs) {
  ObjectiveSpec spec;
  spec.kind = ObjectiveKind::kGeneralizedPower;
  spec.power_exponent = 0.0;
  EXPECT_THROW(validate(spec), std::invalid_argument);

  spec = {};
  spec.kind = ObjectiveKind::kThroughputUnderDelayCap;
  spec.max_delay = 0.0;
  EXPECT_THROW(validate(spec), std::invalid_argument);

  spec = {};
  spec.kind = ObjectiveKind::kAlphaFair;
  spec.alpha = 0.5;
  EXPECT_THROW(validate(spec), std::invalid_argument);
  spec.alpha = kInf;
  EXPECT_NO_THROW(validate(spec));

  spec = {};
  spec.kind = ObjectiveKind::kPowerFairConstrained;
  spec.min_fairness = 1.5;
  EXPECT_THROW(validate(spec), std::invalid_argument);
  spec.min_fairness = 0.8;
  spec.chain_delay_caps = {0.1, -0.2};
  EXPECT_THROW(validate(spec, 2), std::invalid_argument);
  spec.chain_delay_caps = {0.1, 0.2, 0.3};
  EXPECT_THROW(validate(spec, 2), std::invalid_argument);  // size mismatch
  spec.chain_delay_caps = {0.1, 0.2};
  EXPECT_NO_THROW(validate(spec, 2));
}

// ---------------------------------------------------------------------
// Evaluation.fairness pins: Jain's index over per-class powers, checked
// against a from-first-principles computation.

TEST(FairnessPinTest, SingleChainIsPerfectlyFair) {
  std::vector<net::TrafficClass> classes = net::two_class_traffic(20.0, 20.0);
  classes.resize(1);
  const WindowProblem p(net::canada_topology(), std::move(classes));
  const Evaluation ev = p.evaluate({3});
  EXPECT_GT(ev.power, 0.0);
  EXPECT_DOUBLE_EQ(ev.fairness, 1.0);
}

TEST(FairnessPinTest, SymmetricTwoClassIsPerfectlyFair) {
  const Evaluation ev = two_class_problem().evaluate({3, 3});
  EXPECT_DOUBLE_EQ(ev.class_throughput[0], ev.class_throughput[1]);
  EXPECT_DOUBLE_EQ(ev.fairness, 1.0);
}

TEST(FairnessPinTest, AsymmetricTwoClassMatchesHandComputedJain) {
  const Evaluation ev = two_class_problem(10.0, 30.0).evaluate({2, 5});
  const double jain = jain_by_hand(powers_by_hand(ev));
  EXPECT_GT(jain, 0.0);
  EXPECT_LT(jain, 1.0);
  EXPECT_DOUBLE_EQ(ev.fairness, jain);
}

TEST(FairnessPinTest, FourClassMatchesHandComputedJain) {
  const Evaluation ev = four_class_problem().evaluate({2, 3, 2, 4});
  const double jain = jain_by_hand(powers_by_hand(ev));
  EXPECT_GT(jain, 0.0);
  EXPECT_LT(jain, 1.0);
  EXPECT_DOUBLE_EQ(ev.fairness, jain);
  // Two-value sanity anchor: Jain of {1, 3} is (1+3)^2 / (2*(1+9)).
  EXPECT_DOUBLE_EQ(jain_by_hand({1.0, 3.0}), 16.0 / 20.0);
}

// ---------------------------------------------------------------------
// objective_vector semantics, one synthetic evaluation per kind.

Evaluation synthetic_eval() {
  Evaluation ev;
  ev.throughput = 30.0;
  ev.mean_delay = 0.1;
  ev.power = 300.0;
  ev.class_throughput = {10.0, 20.0};
  ev.class_delay = {0.1, 0.1};
  ev.fairness = 0.9;
  return ev;
}

TEST(ObjectiveVectorTest, PowerIsTheScalarShim) {
  const search::VectorEval v =
      objective_vector(synthetic_eval(), ObjectiveSpec{});
  ASSERT_EQ(v.objectives.size(), 1u);
  EXPECT_DOUBLE_EQ(v.objectives[0], 1.0 / 300.0);
  EXPECT_DOUBLE_EQ(v.violation, 0.0);
}

TEST(ObjectiveVectorTest, GeneralizedPowerUsesTheExponent) {
  ObjectiveSpec spec;
  spec.kind = ObjectiveKind::kGeneralizedPower;
  spec.power_exponent = 2.0;
  const search::VectorEval v = objective_vector(synthetic_eval(), spec);
  ASSERT_EQ(v.objectives.size(), 1u);
  EXPECT_DOUBLE_EQ(v.objectives[0], 0.1 / (30.0 * 30.0));
}

TEST(ObjectiveVectorTest, DelayCapEncodesInfeasibilityAsInfinity) {
  ObjectiveSpec spec;
  spec.kind = ObjectiveKind::kThroughputUnderDelayCap;
  spec.max_delay = 0.2;
  EXPECT_DOUBLE_EQ(objective_vector(synthetic_eval(), spec).objectives[0],
                   -30.0);
  spec.max_delay = 0.05;  // cap below the evaluation's mean delay
  EXPECT_EQ(objective_vector(synthetic_eval(), spec).objectives[0], kInf);
}

TEST(ObjectiveVectorTest, AlphaFairUtilitiesPerAlpha) {
  ObjectiveSpec spec;
  spec.kind = ObjectiveKind::kAlphaFair;
  const Evaluation ev = synthetic_eval();

  spec.alpha = 0.0;  // total throughput
  search::VectorEval v = objective_vector(ev, spec);
  ASSERT_EQ(v.objectives.size(), 2u);
  EXPECT_DOUBLE_EQ(v.objectives[0], -(10.0 + 20.0));
  EXPECT_DOUBLE_EQ(v.objectives[1], 1.0 / 300.0);
  EXPECT_DOUBLE_EQ(v.violation, 0.0);

  spec.alpha = 1.0;  // proportional fairness
  v = objective_vector(ev, spec);
  EXPECT_DOUBLE_EQ(v.objectives[0], -(std::log(10.0) + std::log(20.0)));

  spec.alpha = 2.0;  // harmonic
  v = objective_vector(ev, spec);
  EXPECT_DOUBLE_EQ(v.objectives[0], 1.0 / 10.0 + 1.0 / 20.0);

  spec.alpha = kInf;  // max-min
  v = objective_vector(ev, spec);
  EXPECT_DOUBLE_EQ(v.objectives[0], -10.0);
}

TEST(ObjectiveVectorTest, AlphaFairCountsStarvedChainsAsViolation) {
  ObjectiveSpec spec;
  spec.kind = ObjectiveKind::kAlphaFair;
  spec.alpha = 1.0;
  Evaluation ev = synthetic_eval();
  ev.class_throughput = {0.0, 20.0};
  const search::VectorEval v = objective_vector(ev, spec);
  EXPECT_DOUBLE_EQ(v.violation, 1.0);
  EXPECT_EQ(v.objectives[0], kInf);
}

TEST(ObjectiveVectorTest, PowerFairConstrainedReportsSlack) {
  ObjectiveSpec spec;
  spec.kind = ObjectiveKind::kPowerFairConstrained;
  spec.min_fairness = 0.95;
  const search::VectorEval v = objective_vector(synthetic_eval(), spec);
  ASSERT_EQ(v.objectives.size(), 2u);
  EXPECT_DOUBLE_EQ(v.objectives[0], 1.0 / 300.0);
  EXPECT_DOUBLE_EQ(v.objectives[1], -0.9);
  EXPECT_NEAR(v.violation, 0.05, 1e-12);  // fairness 0.9 under floor 0.95
  EXPECT_FALSE(v.feasible());

  spec.min_fairness = 0.8;
  spec.max_delay = 0.05;  // mean delay 0.1 exceeds the cap by 0.05
  EXPECT_NEAR(objective_vector(synthetic_eval(), spec).violation, 0.05,
              1e-12);
}

// ---------------------------------------------------------------------
// Exhaustive/pattern-search parity over the whole registry: on a small
// box the Hooke-Jeeves search must reach an evaluation the full
// enumeration cannot strictly beat, for every objective kind.

TEST(ObjectiveParityTest, PatternSearchMatchesExhaustiveForEveryKind) {
  const WindowProblem problem = two_class_problem(10.0, 30.0);
  const double cap = problem.evaluate({2, 2}).mean_delay;
  for (const char* name : objective_kind_names()) {
    ObjectiveSpec spec;
    spec.kind = objective_kind_from_string(name);
    if (spec.kind == ObjectiveKind::kGeneralizedPower) {
      spec.power_exponent = 2.0;
    }
    if (spec.kind == ObjectiveKind::kThroughputUnderDelayCap) {
      spec.max_delay = cap;  // feasible at (2, 2) by construction
    }
    if (spec.kind == ObjectiveKind::kPowerFairConstrained) {
      spec.min_fairness = 0.5;
    }
    validate(spec, problem.num_classes());
    const search::Comparator better = objective_comparator(spec);
    const search::VectorObjective objective =
        [&](const search::Point& p) {
          return objective_vector(problem.evaluate(p), spec);
        };

    search::VectorExhaustiveOptions eo;
    eo.better = better;
    const search::VectorExhaustiveResult exhaustive =
        search::vector_exhaustive_search(objective, {1, 1}, {4, 4}, eo);

    search::VectorSearchOptions so;
    so.lower_bound = {1, 1};
    so.upper_bound = {4, 4};
    so.better = better;
    const search::VectorSearchResult pattern =
        search::vector_pattern_search(objective, {1, 1}, so);

    // Parity under the kind's own ordering: the global enumeration
    // cannot strictly beat what the pattern search found.
    EXPECT_FALSE(better(exhaustive.best_eval, pattern.best_eval))
        << "objective " << name << " pattern best lost to exhaustive";
    EXPECT_LE(pattern.evaluations, exhaustive.evaluations) << name;
  }
}

}  // namespace
}  // namespace windim::core
