#include <gtest/gtest.h>

#include <cmath>

#include "mva/approx.h"
#include "mva/bounds.h"
#include "mva/exact_multichain.h"
#include "mva/linearizer.h"
#include "mva/single_chain.h"
#include "util/rng.h"

namespace windim::mva {
namespace {

qn::Station fcfs(const std::string& name) {
  qn::Station s;
  s.name = name;
  s.discipline = qn::Discipline::kFcfs;
  return s;
}

qn::NetworkModel shared_middle(int pop1, int pop2) {
  qn::NetworkModel m;
  const int a = m.add_station(fcfs("a"));
  const int shared = m.add_station(fcfs("shared"));
  const int b = m.add_station(fcfs("b"));
  qn::Chain c1;
  c1.type = qn::ChainType::kClosed;
  c1.population = pop1;
  c1.visits = {{a, 1.0, 0.08}, {shared, 1.0, 0.05}};
  m.add_chain(std::move(c1));
  qn::Chain c2;
  c2.type = qn::ChainType::kClosed;
  c2.population = pop2;
  c2.visits = {{shared, 1.0, 0.05}, {b, 1.0, 0.11}};
  m.add_chain(std::move(c2));
  return m;
}

double throughput_error(const MvaSolution& approx, const MvaSolution& exact,
                        int chain) {
  return std::abs(approx.chain_throughput[static_cast<std::size_t>(chain)] -
                  exact.chain_throughput[static_cast<std::size_t>(chain)]) /
         exact.chain_throughput[static_cast<std::size_t>(chain)];
}

TEST(LinearizerTest, ConvergesAndConservesPopulation) {
  const qn::NetworkModel m = shared_middle(4, 5);
  const MvaSolution sol = solve_linearizer(m);
  EXPECT_TRUE(sol.converged);
  for (int r = 0; r < 2; ++r) {
    double total = 0.0;
    for (int n = 0; n < 3; ++n) total += sol.queue_length(n, r);
    EXPECT_NEAR(total, m.chain(r).population, 1e-6);
  }
}

TEST(LinearizerTest, CloseToExactOnTwoChains) {
  const qn::NetworkModel m = shared_middle(4, 4);
  const MvaSolution lin = solve_linearizer(m);
  const MvaSolution exact = solve_exact_multichain(m);
  for (int r = 0; r < 2; ++r) {
    EXPECT_LT(throughput_error(lin, exact, r), 0.01) << "chain " << r;
  }
}

TEST(LinearizerTest, MoreAccurateThanSchweitzerBard) {
  // The reason Linearizer exists: averaged over a family of random
  // networks it must beat the one-term approximations.
  double linearizer_total = 0.0;
  double schweitzer_total = 0.0;
  int cases = 0;
  for (int seed = 0; seed < 10; ++seed) {
    util::Rng rng(static_cast<std::uint64_t>(seed) + 500);
    qn::NetworkModel m;
    const int stations = rng.uniform_int(3, 5);
    std::vector<double> times(static_cast<std::size_t>(stations));
    for (double& t : times) t = rng.uniform(0.02, 0.2);
    for (int n = 0; n < stations; ++n) m.add_station(fcfs("q"));
    for (int r = 0; r < 2; ++r) {
      qn::Chain c;
      c.type = qn::ChainType::kClosed;
      c.population = rng.uniform_int(2, 5);
      for (int n = 0; n < stations; ++n) {
        if (rng.uniform01() < 0.7) {
          c.visits.push_back({n, 1.0, times[static_cast<std::size_t>(n)]});
        }
      }
      if (c.visits.empty()) {
        c.visits.push_back({0, 1.0, times[0]});
      }
      m.add_chain(std::move(c));
    }
    const MvaSolution exact = solve_exact_multichain(m);
    const MvaSolution lin = solve_linearizer(m);
    ApproxMvaOptions sb;
    sb.sigma = SigmaPolicy::kSchweitzerBard;
    const MvaSolution schweitzer = solve_approx_mva(m, sb);
    for (int r = 0; r < 2; ++r) {
      linearizer_total += throughput_error(lin, exact, r);
      schweitzer_total += throughput_error(schweitzer, exact, r);
      ++cases;
    }
  }
  EXPECT_GT(cases, 0);
  EXPECT_LT(linearizer_total, schweitzer_total);
  EXPECT_LT(linearizer_total / cases, 0.01);  // sub-1% mean error
}

TEST(LinearizerTest, SingleChainNearExact) {
  qn::NetworkModel m;
  qn::Chain c;
  c.type = qn::ChainType::kClosed;
  c.population = 6;
  for (double d : {0.1, 0.25, 0.18}) {
    const int idx = m.add_station(fcfs("q"));
    c.visits.push_back({idx, 1.0, d});
  }
  m.add_chain(std::move(c));
  const MvaSolution lin = solve_linearizer(m);
  const SingleChainResult exact = solve_single_chain(m);
  EXPECT_NEAR(lin.chain_throughput[0], exact.throughput[6],
              0.005 * exact.throughput[6]);
}

TEST(LinearizerTest, IsStationsSupported) {
  qn::NetworkModel m;
  const int a = m.add_station(fcfs("a"));
  qn::Station is;
  is.name = "think";
  is.discipline = qn::Discipline::kInfiniteServer;
  const int z = m.add_station(std::move(is));
  for (int r = 0; r < 2; ++r) {
    qn::Chain c;
    c.type = qn::ChainType::kClosed;
    c.population = 4;
    c.visits = {{a, 1.0, 0.05}, {z, 1.0, 0.9}};
    m.add_chain(std::move(c));
  }
  const MvaSolution lin = solve_linearizer(m);
  const MvaSolution exact = solve_exact_multichain(m);
  for (int r = 0; r < 2; ++r) {
    EXPECT_LT(throughput_error(lin, exact, r), 0.01);
  }
}

TEST(LinearizerTest, ZeroPopulationChain) {
  const MvaSolution sol = solve_linearizer(shared_middle(4, 0));
  EXPECT_DOUBLE_EQ(sol.chain_throughput[1], 0.0);
  EXPECT_GT(sol.chain_throughput[0], 0.0);
}

TEST(LinearizerTest, RejectsOpenChainsAndQdStations) {
  qn::NetworkModel open = shared_middle(2, 2);
  qn::Chain oc;
  oc.type = qn::ChainType::kOpen;
  oc.arrival_rate = 1.0;
  oc.visits = {{0, 1.0, 0.01}};
  open.add_chain(std::move(oc));
  EXPECT_THROW((void)solve_linearizer(open), qn::ModelError);

  qn::NetworkModel qd;
  qn::Station s = fcfs("mm2");
  s.rate_multipliers = {1.0, 2.0};
  const int a = qd.add_station(std::move(s));
  qn::Chain c;
  c.type = qn::ChainType::kClosed;
  c.population = 2;
  c.visits = {{a, 1.0, 0.1}};
  qd.add_chain(std::move(c));
  EXPECT_THROW((void)solve_linearizer(qd), qn::ModelError);
}

// --------------------------------------------------------------------- bounds

TEST(BoundsTest, BracketExactSingleChain) {
  for (int pop : {1, 2, 4, 8, 16}) {
    qn::NetworkModel m;
    qn::Chain c;
    c.type = qn::ChainType::kClosed;
    c.population = pop;
    for (double d : {0.12, 0.3, 0.07}) {
      const int idx = m.add_station(fcfs("q"));
      c.visits.push_back({idx, 1.0, d});
    }
    m.add_chain(std::move(c));
    const ChainBounds b = balanced_job_bounds(m);
    const SingleChainResult exact = solve_single_chain(m);
    const double x = exact.throughput[static_cast<std::size_t>(pop)];
    EXPECT_LE(b.throughput_lower, x + 1e-12) << "pop " << pop;
    EXPECT_GE(b.throughput_upper, x - 1e-12) << "pop " << pop;
  }
}

TEST(BoundsTest, BalancedNetworkIsTight) {
  // On a perfectly balanced network the upper bound is exact.
  qn::NetworkModel m;
  qn::Chain c;
  c.type = qn::ChainType::kClosed;
  c.population = 5;
  for (int n = 0; n < 4; ++n) {
    const int idx = m.add_station(fcfs("q"));
    c.visits.push_back({idx, 1.0, 0.1});
  }
  m.add_chain(std::move(c));
  const ChainBounds b = balanced_job_bounds(m);
  const SingleChainResult exact = solve_single_chain(m);
  EXPECT_NEAR(b.throughput_upper, exact.throughput[5], 1e-10);
}

TEST(BoundsTest, DelayDemandHandled) {
  // IS demand enters the denominators but not the bottleneck.
  const ChainBounds b = balanced_job_bounds({0.1, 0.2}, 1.0, 3);
  EXPECT_LE(b.throughput_upper, 1.0 / 0.2 + 1e-12);
  EXPECT_GT(b.throughput_lower, 0.0);
  EXPECT_NEAR(b.cycle_time_lower * b.throughput_upper, 3.0, 1e-9);
}

TEST(BoundsTest, RandomNetworksAlwaysBracketed) {
  for (int seed = 0; seed < 20; ++seed) {
    util::Rng rng(static_cast<std::uint64_t>(seed) + 900);
    const int stations = rng.uniform_int(2, 7);
    std::vector<double> demands;
    qn::NetworkModel m;
    qn::Chain c;
    c.type = qn::ChainType::kClosed;
    c.population = rng.uniform_int(1, 12);
    for (int n = 0; n < stations; ++n) {
      const int idx = m.add_station(fcfs("q"));
      const double d = rng.uniform(0.01, 0.5);
      c.visits.push_back({idx, 1.0, d});
    }
    const int pop = c.population;
    m.add_chain(std::move(c));
    const ChainBounds b = balanced_job_bounds(m);
    const SingleChainResult exact = solve_single_chain(m);
    const double x = exact.throughput[static_cast<std::size_t>(pop)];
    EXPECT_LE(b.throughput_lower, x + 1e-10) << "seed " << seed;
    EXPECT_GE(b.throughput_upper, x - 1e-10) << "seed " << seed;
  }
}

TEST(BoundsTest, RejectsMalformedInput) {
  EXPECT_THROW((void)balanced_job_bounds({0.1}, 0.0, 0),
               std::invalid_argument);
  EXPECT_THROW((void)balanced_job_bounds({}, 1.0, 2), std::invalid_argument);
  EXPECT_THROW((void)balanced_job_bounds({-0.1}, 0.0, 2),
               std::invalid_argument);
}

}  // namespace
}  // namespace windim::mva
