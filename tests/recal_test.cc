#include <gtest/gtest.h>

#include "exact/buzen.h"
#include "exact/convolution.h"
#include "exact/recal.h"
#include "util/rng.h"
#include "util/simplex.h"

namespace windim::exact {
namespace {

qn::Station fcfs(const std::string& name) {
  qn::Station s;
  s.name = name;
  s.discipline = qn::Discipline::kFcfs;
  return s;
}

qn::NetworkModel shared_middle(int pop1, int pop2) {
  qn::NetworkModel m;
  const int a = m.add_station(fcfs("a"));
  const int shared = m.add_station(fcfs("shared"));
  const int b = m.add_station(fcfs("b"));
  qn::Chain c1;
  c1.type = qn::ChainType::kClosed;
  c1.population = pop1;
  c1.visits = {{a, 1.0, 0.08}, {shared, 1.0, 0.05}};
  m.add_chain(std::move(c1));
  qn::Chain c2;
  c2.type = qn::ChainType::kClosed;
  c2.population = pop2;
  c2.visits = {{shared, 1.0, 0.05}, {b, 1.0, 0.11}};
  m.add_chain(std::move(c2));
  return m;
}

// ------------------------------------------------------------------- simplex

TEST(SimplexIndexerTest, SizeIsBinomial) {
  EXPECT_EQ(util::SimplexIndexer(3, 0).size(), 1u);
  EXPECT_EQ(util::SimplexIndexer(2, 3).size(), 10u);   // C(5,2)
  EXPECT_EQ(util::SimplexIndexer(4, 2).size(), 15u);   // C(6,4)
}

TEST(SimplexIndexerTest, OffsetsAreDenseAndOrdered) {
  const util::SimplexIndexer indexer(3, 4);
  std::size_t expected = 0;
  indexer.for_each([&](const std::vector<int>& v) {
    EXPECT_EQ(indexer.offset(v), expected);
    ++expected;
  });
  EXPECT_EQ(expected, indexer.size());
}

TEST(SimplexIndexerTest, OffsetPlusOneMatchesExplicit) {
  const util::SimplexIndexer indexer(3, 5);
  indexer.for_each([&](const std::vector<int>& v) {
    int total = 0;
    for (int x : v) total += x;
    if (total >= 5) return;
    for (int d = 0; d < 3; ++d) {
      std::vector<int> w = v;
      ++w[static_cast<std::size_t>(d)];
      EXPECT_EQ(indexer.offset_plus_one(v, d), indexer.offset(w));
    }
  });
}

TEST(SimplexIndexerTest, RejectsOutOfBall) {
  const util::SimplexIndexer indexer(2, 3);
  EXPECT_THROW((void)indexer.offset({2, 2}), std::out_of_range);
  EXPECT_THROW((void)indexer.offset({-1, 0}), std::out_of_range);
  EXPECT_THROW((void)indexer.offset({1}), std::out_of_range);
  EXPECT_THROW(util::SimplexIndexer(0, 1), std::invalid_argument);
}

// --------------------------------------------------------------------- RECAL

TEST(RecalTest, SingleChainMatchesBuzen) {
  qn::NetworkModel m;
  qn::Chain c;
  c.type = qn::ChainType::kClosed;
  c.population = 5;
  for (double d : {0.12, 0.3, 0.07}) {
    const int idx = m.add_station(fcfs("q"));
    c.visits.push_back({idx, 1.0, d});
  }
  m.add_chain(std::move(c));
  const RecalResult recal = solve_recal(m);
  const BuzenResult buzen = solve_buzen(m);
  EXPECT_NEAR(recal.chain_throughput[0], buzen.throughput, 1e-9);
  for (int n = 0; n < 3; ++n) {
    EXPECT_NEAR(recal.queue_length(n, 0),
                buzen.mean_number[static_cast<std::size_t>(n)], 1e-8);
  }
}

TEST(RecalTest, TwoChainsMatchConvolution) {
  const qn::NetworkModel m = shared_middle(3, 4);
  const RecalResult recal = solve_recal(m);
  const ConvolutionResult conv = solve_convolution(m);
  for (int r = 0; r < 2; ++r) {
    EXPECT_NEAR(recal.chain_throughput[static_cast<std::size_t>(r)],
                conv.chain_throughput[static_cast<std::size_t>(r)], 1e-9);
  }
  for (int n = 0; n < 3; ++n) {
    for (int r = 0; r < 2; ++r) {
      EXPECT_NEAR(recal.queue_length(n, r), conv.queue_length(n, r), 1e-8)
          << "station " << n << " chain " << r;
    }
  }
}

TEST(RecalTest, ManySmallChainsMatchConvolution) {
  // RECAL's home turf: 6 chains of window 1 through a shared hub.
  qn::NetworkModel m;
  const int hub = m.add_station(fcfs("hub"));
  for (int r = 0; r < 6; ++r) {
    const int leg = m.add_station(fcfs("leg" + std::to_string(r)));
    qn::Chain c;
    c.type = qn::ChainType::kClosed;
    c.population = 1;
    c.visits = {{hub, 1.0, 0.02}, {leg, 1.0, 0.03 + 0.01 * r}};
    m.add_chain(std::move(c));
  }
  const RecalResult recal = solve_recal(m);
  const ConvolutionResult conv = solve_convolution(m);
  for (int r = 0; r < 6; ++r) {
    EXPECT_NEAR(recal.chain_throughput[static_cast<std::size_t>(r)],
                conv.chain_throughput[static_cast<std::size_t>(r)], 1e-9);
  }
}

TEST(RecalTest, IsStationsMatchConvolution) {
  qn::NetworkModel m;
  const int a = m.add_station(fcfs("a"));
  qn::Station is;
  is.name = "think";
  is.discipline = qn::Discipline::kInfiniteServer;
  const int z = m.add_station(std::move(is));
  for (int r = 0; r < 2; ++r) {
    qn::Chain c;
    c.type = qn::ChainType::kClosed;
    c.population = 3;
    c.visits = {{a, 1.0, 0.05}, {z, 1.0, 0.6 + 0.2 * r}};
    m.add_chain(std::move(c));
  }
  const RecalResult recal = solve_recal(m);
  const ConvolutionResult conv = solve_convolution(m);
  for (int r = 0; r < 2; ++r) {
    EXPECT_NEAR(recal.chain_throughput[static_cast<std::size_t>(r)],
                conv.chain_throughput[static_cast<std::size_t>(r)], 1e-9);
    EXPECT_NEAR(recal.queue_length(z, r), conv.queue_length(z, r), 1e-8);
  }
}

TEST(RecalTest, QueueLengthsSumToPopulations) {
  const qn::NetworkModel m = shared_middle(4, 2);
  const RecalResult recal = solve_recal(m);
  for (int r = 0; r < 2; ++r) {
    double total = 0.0;
    for (int n = 0; n < 3; ++n) total += recal.queue_length(n, r);
    EXPECT_NEAR(total, m.chain(r).population, 1e-8);
  }
}

TEST(RecalTest, RandomNetworksMatchConvolution) {
  for (int seed = 0; seed < 8; ++seed) {
    util::Rng rng(static_cast<std::uint64_t>(seed) + 1300);
    qn::NetworkModel m;
    const int stations = rng.uniform_int(2, 4);
    std::vector<double> times(static_cast<std::size_t>(stations));
    for (double& t : times) t = rng.uniform(0.02, 0.25);
    for (int n = 0; n < stations; ++n) m.add_station(fcfs("q"));
    const int chains = rng.uniform_int(2, 4);
    for (int r = 0; r < chains; ++r) {
      qn::Chain c;
      c.type = qn::ChainType::kClosed;
      c.population = rng.uniform_int(1, 3);
      for (int n = 0; n < stations; ++n) {
        if (rng.uniform01() < 0.7) {
          c.visits.push_back({n, 1.0, times[static_cast<std::size_t>(n)]});
        }
      }
      if (c.visits.empty()) c.visits.push_back({0, 1.0, times[0]});
      m.add_chain(std::move(c));
    }
    const RecalResult recal = solve_recal(m);
    const ConvolutionResult conv = solve_convolution(m);
    for (int r = 0; r < chains; ++r) {
      EXPECT_NEAR(recal.chain_throughput[static_cast<std::size_t>(r)],
                  conv.chain_throughput[static_cast<std::size_t>(r)], 1e-8)
          << "seed " << seed << " chain " << r;
    }
  }
}

TEST(RecalTest, ZeroPopulationChainSkipped) {
  const qn::NetworkModel m = shared_middle(3, 0);
  const RecalResult recal = solve_recal(m);
  EXPECT_DOUBLE_EQ(recal.chain_throughput[1], 0.0);
  const ConvolutionResult conv = solve_convolution(m);
  EXPECT_NEAR(recal.chain_throughput[0], conv.chain_throughput[0], 1e-9);
}

TEST(RecalTest, LayerCapEnforced) {
  const qn::NetworkModel m = shared_middle(10, 10);
  EXPECT_THROW((void)solve_recal(m, /*max_layer_size=*/10),
               std::runtime_error);
}

TEST(RecalTest, RejectsUnsupportedModels) {
  qn::NetworkModel open = shared_middle(1, 1);
  qn::Chain oc;
  oc.type = qn::ChainType::kOpen;
  oc.arrival_rate = 1.0;
  oc.visits = {{0, 1.0, 0.01}};
  open.add_chain(std::move(oc));
  EXPECT_THROW((void)solve_recal(open), qn::ModelError);

  qn::NetworkModel qd;
  qn::Station s = fcfs("mm2");
  s.rate_multipliers = {1.0, 2.0};
  const int a = qd.add_station(std::move(s));
  qn::Chain c;
  c.type = qn::ChainType::kClosed;
  c.population = 1;
  c.visits = {{a, 1.0, 0.1}};
  qd.add_chain(std::move(c));
  EXPECT_THROW((void)solve_recal(qd), qn::ModelError);
}

}  // namespace
}  // namespace windim::exact
