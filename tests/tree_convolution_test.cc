#include <gtest/gtest.h>

#include "exact/buzen.h"
#include "exact/convolution.h"
#include "exact/tree_convolution.h"
#include "net/generators.h"
#include "util/rng.h"
#include "windim/windim.h"

namespace windim::exact {
namespace {

qn::Station fcfs(const std::string& name) {
  qn::Station s;
  s.name = name;
  s.discipline = qn::Discipline::kFcfs;
  return s;
}

qn::NetworkModel shared_middle(int pop1, int pop2) {
  qn::NetworkModel m;
  const int a = m.add_station(fcfs("a"));
  const int shared = m.add_station(fcfs("shared"));
  const int b = m.add_station(fcfs("b"));
  qn::Chain c1;
  c1.type = qn::ChainType::kClosed;
  c1.population = pop1;
  c1.visits = {{a, 1.0, 0.08}, {shared, 1.0, 0.05}};
  m.add_chain(std::move(c1));
  qn::Chain c2;
  c2.type = qn::ChainType::kClosed;
  c2.population = pop2;
  c2.visits = {{shared, 1.0, 0.05}, {b, 1.0, 0.11}};
  m.add_chain(std::move(c2));
  return m;
}

TEST(TreeConvolutionTest, SingleChainMatchesBuzen) {
  qn::NetworkModel m;
  qn::Chain c;
  c.type = qn::ChainType::kClosed;
  c.population = 6;
  for (double d : {0.12, 0.3, 0.07}) {
    const int idx = m.add_station(fcfs("q"));
    c.visits.push_back({idx, 1.0, d});
  }
  m.add_chain(std::move(c));
  const TreeConvolutionResult tree = solve_tree_convolution(m);
  const BuzenResult buzen = solve_buzen(m);
  EXPECT_NEAR(tree.chain_throughput[0], buzen.throughput, 1e-9);
}

TEST(TreeConvolutionTest, TwoChainsMatchFlatConvolution) {
  const qn::NetworkModel m = shared_middle(4, 3);
  const TreeConvolutionResult tree = solve_tree_convolution(m);
  const ConvolutionResult flat = solve_convolution(m);
  for (int r = 0; r < 2; ++r) {
    EXPECT_NEAR(tree.chain_throughput[static_cast<std::size_t>(r)],
                flat.chain_throughput[static_cast<std::size_t>(r)], 1e-9);
  }
}

TEST(TreeConvolutionTest, IsStationsSupported) {
  qn::NetworkModel m;
  const int a = m.add_station(fcfs("a"));
  qn::Station is;
  is.name = "think";
  is.discipline = qn::Discipline::kInfiniteServer;
  const int z = m.add_station(std::move(is));
  for (int r = 0; r < 2; ++r) {
    qn::Chain c;
    c.type = qn::ChainType::kClosed;
    c.population = 3 + r;
    c.visits = {{a, 1.0, 0.05}, {z, 1.0, 0.5}};
    m.add_chain(std::move(c));
  }
  const TreeConvolutionResult tree = solve_tree_convolution(m);
  const ConvolutionResult flat = solve_convolution(m);
  for (int r = 0; r < 2; ++r) {
    EXPECT_NEAR(tree.chain_throughput[static_cast<std::size_t>(r)],
                flat.chain_throughput[static_cast<std::size_t>(r)], 1e-9);
  }
}

TEST(TreeConvolutionTest, SingleStationChainsFinishAtLeaves) {
  // Chains confined to one station exercise the leaf-pinning path.
  qn::NetworkModel m;
  const int a = m.add_station(fcfs("a"));
  const int b = m.add_station(fcfs("b"));
  qn::Chain local;
  local.type = qn::ChainType::kClosed;
  local.population = 3;
  local.visits = {{a, 1.0, 0.04}};
  m.add_chain(std::move(local));
  qn::Chain crossing;
  crossing.type = qn::ChainType::kClosed;
  crossing.population = 2;
  crossing.visits = {{a, 1.0, 0.04}, {b, 1.0, 0.09}};
  m.add_chain(std::move(crossing));
  const TreeConvolutionResult tree = solve_tree_convolution(m);
  const ConvolutionResult flat = solve_convolution(m);
  for (int r = 0; r < 2; ++r) {
    EXPECT_NEAR(tree.chain_throughput[static_cast<std::size_t>(r)],
                flat.chain_throughput[static_cast<std::size_t>(r)], 1e-9);
  }
}

TEST(TreeConvolutionTest, ThesisNetworksMatchFlatConvolution) {
  // Both thesis models, full windows.
  {
    const core::WindowProblem p(net::canada_topology(),
                                net::two_class_traffic(20.0, 20.0));
    const qn::NetworkModel m = p.network({4, 4}).to_model();
    const TreeConvolutionResult tree = solve_tree_convolution(m);
    const ConvolutionResult flat = solve_convolution(m);
    for (int r = 0; r < 2; ++r) {
      EXPECT_NEAR(tree.chain_throughput[static_cast<std::size_t>(r)],
                  flat.chain_throughput[static_cast<std::size_t>(r)], 1e-9);
    }
  }
  {
    const core::WindowProblem p(
        net::canada_topology(),
        net::four_class_traffic(6.0, 6.0, 6.0, 12.0));
    const qn::NetworkModel m = p.network({2, 2, 2, 3}).to_model();
    const TreeConvolutionResult tree = solve_tree_convolution(m);
    const ConvolutionResult flat = solve_convolution(m);
    for (int r = 0; r < 4; ++r) {
      EXPECT_NEAR(tree.chain_throughput[static_cast<std::size_t>(r)],
                  flat.chain_throughput[static_cast<std::size_t>(r)], 1e-9)
          << "chain " << r;
    }
  }
}

TEST(TreeConvolutionTest, RandomSparseNetworksMatchFlat) {
  for (int seed = 0; seed < 8; ++seed) {
    util::Rng rng(static_cast<std::uint64_t>(seed) + 4200);
    const net::Topology topo = net::grid_topology(3, 3, 50.0);
    const auto classes = net::random_traffic(topo, 4, 5.0, 15.0, rng);
    const core::WindowProblem p(topo, classes);
    std::vector<int> windows;
    for (int r = 0; r < 4; ++r) windows.push_back(rng.uniform_int(1, 3));
    const qn::NetworkModel m = p.network(windows).to_model();
    const TreeConvolutionResult tree = solve_tree_convolution(m);
    const ConvolutionResult flat = solve_convolution(m);
    for (int r = 0; r < 4; ++r) {
      EXPECT_NEAR(tree.chain_throughput[static_cast<std::size_t>(r)],
                  flat.chain_throughput[static_cast<std::size_t>(r)],
                  1e-8 *
                      (1.0 +
                       flat.chain_throughput[static_cast<std::size_t>(r)]))
          << "seed " << seed << " chain " << r;
    }
  }
}

TEST(TreeConvolutionTest, SparseChainsShrinkTheArrays) {
  // Localized chains on a line: the flat lattice is (E+1)^R while the
  // tree's largest array stays small because distant chains never share
  // an active set.
  const net::Topology topo = net::line_topology(9, 50.0);
  std::vector<net::TrafficClass> classes;
  for (int k = 0; k < 4; ++k) {
    net::TrafficClass tc;
    tc.name = "c" + std::to_string(k);
    tc.arrival_rate = 10.0;
    tc.path = {"n" + std::to_string(2 * k), "n" + std::to_string(2 * k + 1),
               "n" + std::to_string(2 * k + 2)};
    classes.push_back(std::move(tc));
  }
  const core::WindowProblem p(topo, classes);
  const qn::NetworkModel m = p.network({3, 3, 3, 3}).to_model();
  const TreeConvolutionResult tree = solve_tree_convolution(m);
  // Flat lattice would be 4^4 = 256 points; disjoint chains let the tree
  // finish each chain before the next is opened.
  EXPECT_LT(tree.max_array_size, 64u);
  const ConvolutionResult flat = solve_convolution(m);
  for (int r = 0; r < 4; ++r) {
    EXPECT_NEAR(tree.chain_throughput[static_cast<std::size_t>(r)],
                flat.chain_throughput[static_cast<std::size_t>(r)], 1e-9);
  }
}

TEST(TreeConvolutionTest, ZeroPopulationChain) {
  const qn::NetworkModel m = shared_middle(3, 0);
  const TreeConvolutionResult tree = solve_tree_convolution(m);
  EXPECT_DOUBLE_EQ(tree.chain_throughput[1], 0.0);
  const ConvolutionResult flat = solve_convolution(m);
  EXPECT_NEAR(tree.chain_throughput[0], flat.chain_throughput[0], 1e-9);
}

TEST(TreeConvolutionTest, ArraySizeCapEnforced) {
  const qn::NetworkModel m = shared_middle(30, 30);
  EXPECT_THROW((void)solve_tree_convolution(m, /*max_array_size=*/8),
               std::runtime_error);
}

TEST(TreeConvolutionTest, RejectsUnsupportedModels) {
  qn::NetworkModel open = shared_middle(1, 1);
  qn::Chain oc;
  oc.type = qn::ChainType::kOpen;
  oc.arrival_rate = 1.0;
  oc.visits = {{0, 1.0, 0.01}};
  open.add_chain(std::move(oc));
  EXPECT_THROW((void)solve_tree_convolution(open), qn::ModelError);
}

}  // namespace
}  // namespace windim::exact
