#include <gtest/gtest.h>

#include <vector>

#include "sim/calendar.h"
#include "sim/stats.h"

namespace windim::sim {
namespace {

// ------------------------------------------------------------------- calendar

TEST(CalendarTest, ExecutesInTimeOrder) {
  Calendar cal;
  std::vector<int> order;
  cal.schedule(3.0, [&] { order.push_back(3); });
  cal.schedule(1.0, [&] { order.push_back(1); });
  cal.schedule(2.0, [&] { order.push_back(2); });
  cal.run_until(10.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(cal.now(), 10.0);
}

TEST(CalendarTest, TiesBreakFifo) {
  Calendar cal;
  std::vector<int> order;
  cal.schedule(1.0, [&] { order.push_back(0); });
  cal.schedule(1.0, [&] { order.push_back(1); });
  cal.schedule(1.0, [&] { order.push_back(2); });
  cal.run_until(2.0);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(CalendarTest, EventsCanScheduleEvents) {
  Calendar cal;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) cal.schedule(1.0, chain);
  };
  cal.schedule(1.0, chain);
  cal.run_until(100.0);
  EXPECT_EQ(fired, 5);
  EXPECT_DOUBLE_EQ(cal.now(), 100.0);
}

TEST(CalendarTest, RunUntilStopsBeforeLaterEvents) {
  Calendar cal;
  int fired = 0;
  cal.schedule(5.0, [&] { ++fired; });
  cal.run_until(4.0);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(cal.pending(), 1u);
  cal.run_until(6.0);
  EXPECT_EQ(fired, 1);
}

TEST(CalendarTest, RejectsNegativeDelay) {
  Calendar cal;
  EXPECT_THROW(cal.schedule(-1.0, [] {}), std::invalid_argument);
}

TEST(CalendarTest, StepReturnsFalseWhenEmpty) {
  Calendar cal;
  EXPECT_FALSE(cal.step());
}

// ---------------------------------------------------------------------- tally

TEST(TallyStatTest, MeanAndVariance) {
  TallyStat s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.record(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_NEAR(s.mean(), 5.0, 1e-12);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
}

TEST(TallyStatTest, EmptyIsZero) {
  const TallyStat s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

// -------------------------------------------------------------- time-weighted

TEST(TimeWeightedStatTest, PiecewiseConstantAverage) {
  TimeWeightedStat s(0.0, 0.0);
  s.update(1.0, 2.0);  // value 0 on [0,1)
  s.update(3.0, 1.0);  // value 2 on [1,3)
  // value 1 on [3,5): mean = (0*1 + 2*2 + 1*2) / 5 = 1.2
  EXPECT_NEAR(s.mean(5.0), 1.2, 1e-12);
}

TEST(TimeWeightedStatTest, ResetDiscardsHistory) {
  TimeWeightedStat s(0.0, 10.0);
  s.update(5.0, 2.0);
  s.reset(5.0);
  EXPECT_NEAR(s.mean(10.0), 2.0, 1e-12);
}

TEST(TimeWeightedStatTest, RejectsTimeTravel) {
  TimeWeightedStat s(5.0, 0.0);
  EXPECT_THROW(s.update(4.0, 1.0), std::invalid_argument);
}

// ---------------------------------------------------------------- batch means

TEST(BatchMeansTest, TightIntervalOnConstantData) {
  const std::vector<double> data(1000, 3.5);
  const BatchMeansResult r = batch_means(data);
  EXPECT_NEAR(r.mean, 3.5, 1e-12);
  EXPECT_NEAR(r.half_width, 0.0, 1e-12);
  EXPECT_EQ(r.batches, 10);
}

TEST(BatchMeansTest, CoversTrueMeanOfNoisyData) {
  std::vector<double> data;
  // Deterministic "noise" with zero average around 10.
  for (int i = 0; i < 1000; ++i) {
    data.push_back(10.0 + ((i % 7) - 3.0));
  }
  const BatchMeansResult r = batch_means(data);
  EXPECT_NEAR(r.mean, 10.0, 0.05);
  EXPECT_GE(r.half_width, 0.0);
}

TEST(BatchMeansTest, InsufficientDataReportsZeroBatches) {
  const BatchMeansResult r = batch_means({1.0, 2.0}, 10);
  EXPECT_EQ(r.batches, 0);
}

TEST(BatchMeansTest, RejectsTooFewBatches) {
  EXPECT_THROW((void)batch_means({1.0}, 1), std::invalid_argument);
}

}  // namespace
}  // namespace windim::sim
