#include <gtest/gtest.h>

#include "exact/mm_queues.h"
#include "exact/semiclosed.h"
#include "windim/windim.h"
#include "net/examples.h"
#include "sim/msgnet_sim.h"
#include "sim/replicate.h"

namespace windim::sim {
namespace {

net::Topology single_link() {
  net::Topology t;
  t.add_node("src");
  t.add_node("dst");
  t.add_channel("src", "dst", 50.0);  // mu = 50 msg/s at 1000 bits
  return t;
}

std::vector<net::TrafficClass> one_class(double rate) {
  net::TrafficClass c;
  c.name = "c";
  c.path = {"src", "dst"};
  c.arrival_rate = rate;
  return {c};
}

TEST(MsgNetSimTest, UncontrolledSingleLinkMatchesMM1) {
  MsgNetOptions options;
  options.sim_time = 3000.0;
  options.warmup = 300.0;
  const MsgNetResult r =
      simulate_msgnet(single_link(), one_class(25.0), options);
  const exact::MM1 reference(25.0, 50.0);
  EXPECT_NEAR(r.delivered_rate, 25.0, 1.0);
  EXPECT_NEAR(r.mean_network_delay, reference.mean_time(),
              0.1 * reference.mean_time());
}

TEST(MsgNetSimTest, WindowCapsInFlightMessages) {
  MsgNetOptions options;
  options.windows = {2};
  options.sim_time = 1000.0;
  const MsgNetResult r =
      simulate_msgnet(single_link(), one_class(200.0), options);
  // With window 2 and an overloaded source, the time-averaged in-network
  // count must stay at (almost exactly) 2.
  EXPECT_LE(r.mean_in_network, 2.0 + 1e-9);
  EXPECT_GT(r.mean_in_network, 1.8);
  // Throughput is capacity-limited, not offered-limited.
  EXPECT_LT(r.delivered_rate, 51.0);
}

TEST(MsgNetSimTest, WindowTradesDelayForSourceQueueing) {
  // On a single link with an infinite source buffer the window does not
  // change the long-run delivered rate (work conservation) but it
  // sharply reduces the *in-network* delay, shifting the waiting to the
  // source (thesis 2.2: flow control moves congestion to the admittance
  // point).
  MsgNetOptions uncontrolled;
  uncontrolled.sim_time = 1000.0;
  MsgNetOptions windowed = uncontrolled;
  windowed.windows = {1};
  const MsgNetResult a =
      simulate_msgnet(single_link(), one_class(40.0), uncontrolled);
  const MsgNetResult b =
      simulate_msgnet(single_link(), one_class(40.0), windowed);
  EXPECT_NEAR(a.delivered_rate, b.delivered_rate, 0.05 * a.delivered_rate);
  EXPECT_LT(b.mean_network_delay, a.mean_network_delay);
  // Total delay (including source wait) is not reduced.
  EXPECT_GE(b.mean_total_delay, b.mean_network_delay);
}

TEST(MsgNetSimTest, SourceDropsWhenQueueLimitZero) {
  MsgNetOptions options;
  options.windows = {1};
  options.source_queue_limit = 0;
  options.sim_time = 500.0;
  const MsgNetResult r =
      simulate_msgnet(single_link(), one_class(100.0), options);
  EXPECT_GT(r.per_class[0].dropped_rate, 0.0);
  EXPECT_NEAR(r.per_class[0].offered_rate,
              r.per_class[0].admitted_rate + r.per_class[0].dropped_rate,
              2.0);
}

TEST(MsgNetSimTest, IsarithmicPermitsCapTotalPopulation) {
  const net::Topology topo = net::canada_topology();
  const auto classes = net::two_class_traffic(60.0, 60.0);
  MsgNetOptions options;
  options.isarithmic_permits = 5;
  options.sim_time = 300.0;
  const MsgNetResult r = simulate_msgnet(topo, classes, options);
  EXPECT_LE(r.mean_in_network, 5.0 + 1e-9);
  EXPECT_GT(r.delivered_rate, 0.0);
}

TEST(MsgNetSimTest, TightLocalBuffersAloneDeadlock) {
  // The thesis's store-and-forward lockup (2.1/2.3): with tight node
  // buffers, hold-the-channel blocking and no end-to-end control, the
  // two opposed classes deadlock and throughput collapses.
  const net::Topology topo = net::canada_topology();
  const auto classes = net::two_class_traffic(45.0, 45.0);
  MsgNetOptions uncontrolled;
  uncontrolled.sim_time = 300.0;
  MsgNetOptions tight = uncontrolled;
  tight.node_buffer_limit.assign(6, 2);
  const MsgNetResult a = simulate_msgnet(topo, classes, uncontrolled);
  const MsgNetResult b = simulate_msgnet(topo, classes, tight);
  EXPECT_LT(b.delivered_rate, 0.2 * a.delivered_rate);
}

TEST(MsgNetSimTest, EndToEndWindowsPreventLocalBufferDeadlock) {
  // Adding small end-to-end windows bounds the in-network population so
  // the tight buffers can never form a blocking cycle; the network stays
  // live (thesis 2.3: the controls are complementary).
  const net::Topology topo = net::canada_topology();
  const auto classes = net::two_class_traffic(45.0, 45.0);
  MsgNetOptions options;
  options.sim_time = 300.0;
  options.node_buffer_limit.assign(6, 2);
  options.windows = {1, 1};
  const MsgNetResult r = simulate_msgnet(topo, classes, options);
  EXPECT_GT(r.delivered_rate, 5.0);
}

TEST(MsgNetSimTest, TwoClassNetworkDeliversBothClasses) {
  const net::Topology topo = net::canada_topology();
  const auto classes = net::two_class_traffic(15.0, 15.0);
  MsgNetOptions options;
  options.windows = {4, 4};
  options.sim_time = 500.0;
  const MsgNetResult r = simulate_msgnet(topo, classes, options);
  EXPECT_GT(r.per_class[0].delivered_rate, 10.0);
  EXPECT_GT(r.per_class[1].delivered_rate, 10.0);
  EXPECT_GT(r.power, 0.0);
  EXPECT_NEAR(r.delivered_rate,
              r.per_class[0].delivered_rate + r.per_class[1].delivered_rate,
              1e-9);
}

TEST(MsgNetSimTest, FlowBalanceAtModerateLoad) {
  // At stable load, offered ~= delivered (no drops, bounded queues).
  MsgNetOptions options;
  options.windows = {8};
  options.sim_time = 2000.0;
  const MsgNetResult r =
      simulate_msgnet(single_link(), one_class(20.0), options);
  EXPECT_NEAR(r.per_class[0].offered_rate, 20.0, 1.0);
  EXPECT_NEAR(r.per_class[0].delivered_rate, 20.0, 1.0);
  EXPECT_DOUBLE_EQ(r.per_class[0].dropped_rate, 0.0);
}

TEST(MsgNetSimTest, TotalDelayIncludesSourceWait) {
  MsgNetOptions options;
  options.windows = {1};
  options.sim_time = 500.0;
  const MsgNetResult r =
      simulate_msgnet(single_link(), one_class(45.0), options);
  EXPECT_GE(r.mean_total_delay, r.mean_network_delay);
}

TEST(MsgNetSimTest, DeterministicGivenSeed) {
  MsgNetOptions options;
  options.sim_time = 200.0;
  options.seed = 5;
  const MsgNetResult a =
      simulate_msgnet(single_link(), one_class(30.0), options);
  const MsgNetResult b =
      simulate_msgnet(single_link(), one_class(30.0), options);
  EXPECT_DOUBLE_EQ(a.delivered_rate, b.delivered_rate);
  EXPECT_DOUBLE_EQ(a.mean_network_delay, b.mean_network_delay);
}

TEST(MsgNetSimTest, ReversePathAcksSlowTheWindow) {
  // With window 1 and reverse-path acks, a new message cannot start
  // until the ack returns: the effective service cycle lengthens, so
  // throughput drops versus instantaneous acks.
  MsgNetOptions instant;
  instant.windows = {1};
  instant.sim_time = 1000.0;
  MsgNetOptions acked = instant;
  acked.ack_mode = AckMode::kReversePath;
  acked.ack_bits = 1000.0;  // acks as heavy as data: pronounced effect
  const MsgNetResult a =
      simulate_msgnet(single_link(), one_class(200.0), instant);
  const MsgNetResult b =
      simulate_msgnet(single_link(), one_class(200.0), acked);
  // Stop-and-wait over one 50 msg/s half-duplex link: instantaneous acks
  // give ~50 msg/s; data+ack both at 1000 bits halve it to ~25.
  EXPECT_NEAR(a.delivered_rate, 50.0, 3.0);
  EXPECT_NEAR(b.delivered_rate, 25.0, 2.0);
}

TEST(MsgNetSimTest, LightAcksBarelyCost) {
  // 100-bit acks on 1000-bit data: ~10% overhead ceiling.
  MsgNetOptions instant;
  instant.windows = {4};
  instant.sim_time = 1000.0;
  MsgNetOptions acked = instant;
  acked.ack_mode = AckMode::kReversePath;
  acked.ack_bits = 100.0;
  const MsgNetResult a =
      simulate_msgnet(single_link(), one_class(30.0), instant);
  const MsgNetResult b =
      simulate_msgnet(single_link(), one_class(30.0), acked);
  EXPECT_NEAR(b.delivered_rate, a.delivered_rate,
              0.05 * a.delivered_rate);
}

TEST(MsgNetSimTest, ReversePathAcksRespectWindow) {
  // Even with slow acks the window bound holds: data in flight plus
  // outstanding acks never exceed E (here indirectly via throughput
  // ceiling 1/(round trip) for E=1).
  MsgNetOptions acked;
  acked.windows = {1};
  acked.ack_mode = AckMode::kReversePath;
  acked.ack_bits = 1000.0;
  acked.sim_time = 500.0;
  const MsgNetResult r =
      simulate_msgnet(single_link(), one_class(500.0), acked);
  EXPECT_LE(r.mean_in_network, 1.0 + 1e-9);
}

TEST(MsgNetSimTest, ChannelStatsMatchMM1OnSingleLink) {
  MsgNetOptions options;
  options.sim_time = 4000.0;
  options.warmup = 400.0;
  options.seed = 8;
  const MsgNetResult r =
      simulate_msgnet(single_link(), one_class(30.0), options);
  ASSERT_EQ(r.per_channel.size(), 1u);
  const double rho = 30.0 / 50.0;
  EXPECT_NEAR(r.per_channel[0].utilization, rho, 0.03);
  EXPECT_NEAR(r.per_channel[0].mean_queue, rho / (1.0 - rho), 0.15);
  EXPECT_NEAR(r.per_channel[0].carried_rate, 30.0, 1.0);
}

TEST(MsgNetSimTest, ChannelUtilizationConsistentWithThroughput) {
  // U_c = carried rate * mean service time on every channel.
  const net::Topology topo = net::canada_topology();
  const auto classes = net::two_class_traffic(20.0, 20.0);
  MsgNetOptions options;
  options.windows = {4, 4};
  options.sim_time = 1500.0;
  options.warmup = 150.0;
  const MsgNetResult r = simulate_msgnet(topo, classes, options);
  for (int c = 0; c < topo.num_channels(); ++c) {
    const double service =
        1000.0 / (topo.channel(c).capacity_kbps * 1000.0);
    EXPECT_NEAR(r.per_channel[static_cast<std::size_t>(c)].utilization,
                r.per_channel[static_cast<std::size_t>(c)].carried_rate *
                    service,
                0.02)
        << "channel " << c;
  }
}

TEST(MsgNetSimTest, ChannelQueuesMatchClosedModelAtMatchedWindows) {
  // With generous source load the closed-chain model's per-channel queue
  // lengths should be close to the simulated ones.
  const net::Topology topo = net::canada_topology();
  const auto classes = net::two_class_traffic(25.0, 25.0);
  const std::vector<int> windows{3, 3};
  MsgNetOptions options;
  options.windows = windows;
  options.source_queue_limit = 0;  // drop-tail: exact semiclosed regime
  options.sim_time = 3000.0;
  options.warmup = 300.0;
  const MsgNetResult sim = simulate_msgnet(topo, classes, options);

  const core::WindowProblem problem(topo, classes);
  const qn::CyclicNetwork net = problem.network(windows);
  const core::Evaluation analytic =
      problem.evaluate(windows, core::Evaluator::kSemiclosed);
  (void)analytic;
  // Compare channel queue lengths against the semiclosed solver.
  qn::NetworkModel route_model;
  for (const qn::Station& s : net.stations) route_model.add_station(s);
  std::vector<exact::SemiclosedChainSpec> specs;
  for (int r = 0; r < 2; ++r) {
    qn::Chain chain;
    chain.type = qn::ChainType::kClosed;
    for (std::size_t k = 0; k + 1 < net.chains[static_cast<std::size_t>(r)]
                                        .route.size();
         ++k) {
      chain.visits.push_back(
          qn::Visit{net.chains[static_cast<std::size_t>(r)].route[k], 1.0,
                    net.chains[static_cast<std::size_t>(r)].service_times[k]});
    }
    route_model.add_chain(std::move(chain));
    specs.push_back(exact::SemiclosedChainSpec{25.0, 0, windows[static_cast<std::size_t>(r)]});
  }
  const exact::SemiclosedResult semi =
      exact::solve_semiclosed(route_model, specs);
  for (int c = 0; c < topo.num_channels(); ++c) {
    const double expected =
        semi.queue_length(c, 0) + semi.queue_length(c, 1);
    EXPECT_NEAR(sim.per_channel[static_cast<std::size_t>(c)].mean_queue,
                expected, 0.08 + 0.08 * expected)
        << "channel " << c;
  }
}

TEST(MsgNetSimTest, LengthModelDelayOrderingFollowsPollaczekKhinchine) {
  // M/G/1 at fixed mean and load: waiting time scales with (1 + cv^2)/2,
  // so deterministic < Erlang-2 < exponential < hyperexponential.
  auto delay_for = [&](net::LengthModel model) {
    auto classes = one_class(30.0);
    classes[0].length_model = model;
    MsgNetOptions options;
    options.sim_time = 4000.0;
    options.warmup = 400.0;
    options.seed = 12;
    return simulate_msgnet(single_link(), classes, options)
        .mean_network_delay;
  };
  const double det = delay_for(net::LengthModel::kDeterministic);
  const double erl = delay_for(net::LengthModel::kErlang2);
  const double exp = delay_for(net::LengthModel::kExponential);
  const double hyp = delay_for(net::LengthModel::kHyperExp2);
  EXPECT_LT(det, erl);
  EXPECT_LT(erl, exp);
  EXPECT_LT(exp, hyp);
}

TEST(MsgNetSimTest, LengthModelsPreserveMeanThroughput) {
  // All models share the mean, so the carried rate at stable load is the
  // offered rate regardless of the distribution.
  for (auto model :
       {net::LengthModel::kDeterministic, net::LengthModel::kErlang2,
        net::LengthModel::kHyperExp2}) {
    auto classes = one_class(25.0);
    classes[0].length_model = model;
    MsgNetOptions options;
    options.sim_time = 2000.0;
    options.warmup = 200.0;
    const MsgNetResult r = simulate_msgnet(single_link(), classes, options);
    EXPECT_NEAR(r.delivered_rate, 25.0, 1.5)
        << net::to_string(model);
  }
}

TEST(MsgNetSimTest, DeterministicSingleLinkMatchesMD1) {
  // M/D/1: W = rho/(2 mu (1-rho)); T = W + 1/mu.
  auto classes = one_class(30.0);
  classes[0].length_model = net::LengthModel::kDeterministic;
  MsgNetOptions options;
  options.sim_time = 6000.0;
  options.warmup = 600.0;
  options.seed = 4;
  const MsgNetResult r = simulate_msgnet(single_link(), classes, options);
  const double mu = 50.0, rho = 30.0 / 50.0;
  const double expected = rho / (2.0 * mu * (1.0 - rho)) + 1.0 / mu;
  EXPECT_NEAR(r.mean_network_delay, expected, 0.06 * expected);
}

TEST(ReplicateTest, IntervalsCoverTheoreticalValues) {
  // 10 replications of a stable M/M/1 link: the CI should cover the
  // theoretical delivered rate and delay.
  MsgNetOptions options;
  options.sim_time = 600.0;
  options.warmup = 60.0;
  options.seed = 100;
  const ReplicatedResult r =
      run_replications(single_link(), one_class(25.0), options, 10);
  EXPECT_EQ(r.replications, 10);
  EXPECT_EQ(r.runs.size(), 10u);
  const exact::MM1 reference(25.0, 50.0);
  // Allow a slightly widened interval (2x) for coverage robustness.
  EXPECT_NEAR(r.delivered_rate.mean, 25.0,
              2.0 * r.delivered_rate.half_width + 0.2);
  EXPECT_NEAR(r.mean_network_delay.mean, reference.mean_time(),
              2.0 * r.mean_network_delay.half_width + 0.002);
  EXPECT_GT(r.power.mean, 0.0);
  EXPECT_GT(r.delivered_rate.half_width, 0.0);
}

TEST(ReplicateTest, MoreReplicationsTightenTheInterval) {
  MsgNetOptions options;
  options.sim_time = 300.0;
  options.warmup = 30.0;
  const ReplicatedResult few =
      run_replications(single_link(), one_class(25.0), options, 4);
  const ReplicatedResult many =
      run_replications(single_link(), one_class(25.0), options, 16);
  EXPECT_LT(many.delivered_rate.half_width,
            few.delivered_rate.half_width + 1e-12);
}

TEST(ReplicateTest, RejectsTooFewReplications) {
  EXPECT_THROW((void)run_replications(single_link(), one_class(10.0), {}, 1),
               std::invalid_argument);
}

TEST(MsgNetSimTest, RejectsMalformedOptions) {
  MsgNetOptions bad_windows;
  bad_windows.windows = {1, 2};  // one class only
  EXPECT_THROW(
      (void)simulate_msgnet(single_link(), one_class(10.0), bad_windows),
      std::invalid_argument);
  MsgNetOptions bad_buffers;
  bad_buffers.node_buffer_limit = {1};
  EXPECT_THROW(
      (void)simulate_msgnet(single_link(), one_class(10.0), bad_buffers),
      std::invalid_argument);
  EXPECT_THROW((void)simulate_msgnet(single_link(), {}, {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace windim::sim
