// Statistical regression test: the discrete-event closed-network
// simulator, replicated for confidence intervals, must agree with the
// convolution solver on small cyclic networks.  The acceptance band is
// the differential harness's simulation tolerance — a multiple of the
// replication CI half-width plus a small relative slack for residual
// warmup bias — with fixed seeds throughout, so the test is exact-
// repeatable, not flaky.
#include <gtest/gtest.h>

#include <cmath>

#include "exact/convolution.h"
#include "sim/replicate.h"
#include "verify/gen.h"

namespace windim {
namespace {

using verify::Family;
using verify::Instance;

constexpr double kCiFactor = 4.0;  // ~4 half-widths ≈ well beyond 99%
constexpr double kSlack = 0.03;    // residual-bias allowance

TEST(SimVsExact, ReplicatedThroughputCoversConvolution) {
  for (std::uint64_t seed : {1, 2, 3}) {
    const Instance inst = verify::generate(Family::kCyclic, seed);
    ASSERT_TRUE(inst.cyclic.has_value());
    const exact::ConvolutionResult conv =
        exact::solve_convolution(inst.model);
    sim::ClosedSimOptions options;
    options.sim_time = 400.0;
    options.warmup = 50.0;
    options.seed = 9000 + seed;
    const sim::ReplicatedClosedResult rep =
        sim::run_closed_replications(*inst.cyclic, options, 5);
    ASSERT_EQ(rep.chain_throughput.size(),
              static_cast<std::size_t>(inst.model.num_chains()));
    for (int r = 0; r < inst.model.num_chains(); ++r) {
      const double exact =
          conv.chain_throughput[static_cast<std::size_t>(r)];
      const sim::MetricEstimate& est =
          rep.chain_throughput[static_cast<std::size_t>(r)];
      EXPECT_GE(est.half_width, 0.0);
      EXPECT_LE(std::abs(est.mean - exact),
                kCiFactor * est.half_width + kSlack * exact)
          << inst.name << " chain " << r << ": sim " << est.mean << " +- "
          << est.half_width << " vs exact " << exact;
    }
  }
}

TEST(SimVsExact, ReplicatedQueueLengthsCoverConvolution) {
  const Instance inst = verify::generate(Family::kCyclic, 5);
  ASSERT_TRUE(inst.cyclic.has_value());
  const exact::ConvolutionResult conv = exact::solve_convolution(inst.model);
  sim::ClosedSimOptions options;
  options.sim_time = 400.0;
  options.warmup = 50.0;
  options.seed = 777;
  const sim::ReplicatedClosedResult rep =
      sim::run_closed_replications(*inst.cyclic, options, 5);
  for (int n = 0; n < inst.model.num_stations(); ++n) {
    for (int r = 0; r < inst.model.num_chains(); ++r) {
      const double exact = conv.queue_length(n, r);
      const sim::MetricEstimate& est = rep.queue_length(n, r);
      // Queue lengths near zero get an absolute floor on the band.
      EXPECT_LE(std::abs(est.mean - exact),
                kCiFactor * est.half_width + kSlack * exact + 0.02)
          << inst.name << " station " << n << " chain " << r;
    }
  }
}

TEST(SimVsExact, ReplicationEstimatesAreDeterministicInTheSeed) {
  const Instance inst = verify::generate(Family::kCyclic, 2);
  sim::ClosedSimOptions options;
  options.sim_time = 100.0;
  options.warmup = 10.0;
  options.seed = 42;
  const sim::ReplicatedClosedResult a =
      sim::run_closed_replications(*inst.cyclic, options, 3);
  const sim::ReplicatedClosedResult b =
      sim::run_closed_replications(*inst.cyclic, options, 3);
  ASSERT_EQ(a.chain_throughput.size(), b.chain_throughput.size());
  for (std::size_t r = 0; r < a.chain_throughput.size(); ++r) {
    EXPECT_EQ(a.chain_throughput[r].mean, b.chain_throughput[r].mean);
    EXPECT_EQ(a.chain_throughput[r].half_width,
              b.chain_throughput[r].half_width);
  }
}

}  // namespace
}  // namespace windim
