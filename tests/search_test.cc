#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <set>
#include <thread>

#include "search/eval_cache.h"
#include "search/exhaustive.h"
#include "search/pattern_search.h"

namespace windim::search {
namespace {

double quadratic(const Point& p, const Point& target) {
  double f = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    const double d = p[i] - target[i];
    f += d * d;
  }
  return f;
}

TEST(PatternSearchTest, FindsQuadraticMinimumFromAfar) {
  const Point target{7, -3};
  const PatternSearchResult r = pattern_search(
      [&](const Point& p) { return quadratic(p, target); }, {0, 0});
  EXPECT_EQ(r.best, target);
  EXPECT_DOUBLE_EQ(r.best_value, 0.0);
}

TEST(PatternSearchTest, PatternMovesAccelerateAlongDiagonals) {
  // A far-away optimum reachable along a diagonal: pattern moves should
  // need far fewer evaluations than the ~4 * distance of plain
  // coordinate descent.
  const Point target{30, 30};
  const PatternSearchResult r = pattern_search(
      [&](const Point& p) { return quadratic(p, target); }, {0, 0});
  EXPECT_EQ(r.best, target);
  EXPECT_LT(r.evaluations, 100u);
  EXPECT_GE(r.base_points.size(), 3u);
}

TEST(PatternSearchTest, MemoizesRepeatedEvaluations) {
  std::size_t calls = 0;
  const Point target{3, 3};
  const Objective f = [&](const Point& p) {
    ++calls;
    return quadratic(p, target);
  };
  const PatternSearchResult r = pattern_search(f, {1, 1});
  EXPECT_EQ(r.evaluations, calls);
  // The search revisits points; some must have been served from cache.
  EXPECT_GT(r.cache_hits, 0u);
}

TEST(PatternSearchTest, RespectsBounds) {
  PatternSearchOptions options;
  options.lower_bound = {1, 1};
  options.upper_bound = {4, 4};
  // Unconstrained optimum at (0, 0): must stop at the boundary.
  const PatternSearchResult r = pattern_search(
      [&](const Point& p) { return quadratic(p, {0, 0}); }, {3, 3}, options);
  EXPECT_EQ(r.best, (Point{1, 1}));
}

TEST(PatternSearchTest, LargerStepsHalveDownToOne) {
  PatternSearchOptions options;
  options.initial_step = {4, 4};
  const Point target{5, 9};
  const PatternSearchResult r = pattern_search(
      [&](const Point& p) { return quadratic(p, target); }, {0, 0}, options);
  EXPECT_EQ(r.best, target);
  EXPECT_GT(r.step_reductions, 0);
}

TEST(PatternSearchTest, RidgeFollowingDownDiagonalValley) {
  // Diagonal valley f = (x - y)^2 + ((x + y)/10)^2 sloping toward the
  // origin.  The search must descend the valley (large objective
  // reduction) and use diagonal pattern moves (consecutive base points
  // changing both coordinates) rather than pure coordinate descent.
  const Objective f = [](const Point& p) {
    const double x = p[0], y = p[1];
    return (x - y) * (x - y) + (x + y) * (x + y) / 100.0;
  };
  const PatternSearchResult r = pattern_search(f, {40, 38});
  EXPECT_LE(r.best_value, 1.0);
  EXPECT_LE(f(r.best), f({40, 38}) / 50.0);
  bool diagonal_step = false;
  for (std::size_t i = 1; i < r.base_points.size(); ++i) {
    const Point& a = r.base_points[i - 1].first;
    const Point& b = r.base_points[i].first;
    if (a[0] != b[0] && a[1] != b[1]) diagonal_step = true;
  }
  EXPECT_TRUE(diagonal_step);
}

TEST(PatternSearchTest, InitialPointAlreadyOptimal) {
  const PatternSearchResult r = pattern_search(
      [&](const Point& p) { return quadratic(p, {2, 2}); }, {2, 2});
  EXPECT_EQ(r.best, (Point{2, 2}));
  // Only the local exploration around the optimum is evaluated.
  EXPECT_LE(r.evaluations, 5u);
}

TEST(PatternSearchTest, OneDimensional) {
  const PatternSearchResult r = pattern_search(
      [](const Point& p) { return std::abs(p[0] - 13.0); }, {0});
  EXPECT_EQ(r.best, (Point{13}));
}

TEST(PatternSearchTest, FourDimensional) {
  const Point target{2, 5, 1, 7};
  const PatternSearchResult r = pattern_search(
      [&](const Point& p) { return quadratic(p, target); }, {4, 4, 4, 4});
  EXPECT_EQ(r.best, target);
}

TEST(PatternSearchTest, BudgetExhaustionReturnsPartialResult) {
  PatternSearchOptions options;
  options.max_evaluations = 3;
  const PatternSearchResult r = pattern_search(
      [](const Point& p) { return quadratic(p, {50, 50}); }, {0, 0}, options);
  EXPECT_TRUE(r.budget_exhausted);
  EXPECT_LE(r.evaluations, 3u);
  // Best-so-far is never worse than the initial point.
  EXPECT_LE(r.best_value, quadratic({0, 0}, {50, 50}));
  EXPECT_FALSE(r.base_points.empty());
}

TEST(PatternSearchTest, BudgetTooSmallForInitialPoint) {
  PatternSearchOptions options;
  options.max_evaluations = 0;
  const PatternSearchResult r = pattern_search(
      [](const Point& p) { return quadratic(p, {50, 50}); }, {4, 4}, options);
  EXPECT_TRUE(r.budget_exhausted);
  EXPECT_EQ(r.best, (Point{4, 4}));
  EXPECT_TRUE(std::isinf(r.best_value));
}

TEST(PatternSearchTest, AmpleBudgetNeverReportsExhaustion) {
  const PatternSearchResult r = pattern_search(
      [](const Point& p) { return quadratic(p, {5, 5}); }, {0, 0});
  EXPECT_FALSE(r.budget_exhausted);
}

TEST(EvalCacheTest, ShardCountDerivesFromHardwareAndStaysClamped) {
  // Default: hardware_concurrency x 4, power of two, clamped [16, 256].
  const EvalCache derived;
  const std::size_t n = derived.num_shards();
  EXPECT_GE(n, 16u);
  EXPECT_LE(n, 256u);
  EXPECT_EQ(n & (n - 1), 0u) << "shard count must be a power of two";
  const std::size_t cores = std::thread::hardware_concurrency();
  if (cores > 0) {
    EXPECT_GE(n, std::min<std::size_t>(256, cores));  // >= 1 shard per core
  }
  // Explicit counts are honoured (rounded up to a power of two, clamped).
  EXPECT_EQ(EvalCache(SIZE_MAX, 16).num_shards(), 16u);
  EXPECT_EQ(EvalCache(SIZE_MAX, 17).num_shards(), 32u);
  EXPECT_EQ(EvalCache(SIZE_MAX, 1).num_shards(), 16u);
  EXPECT_EQ(EvalCache(SIZE_MAX, 100000).num_shards(), 256u);
  // Statistics invariants hold with a nonstandard shard count.
  EvalCache cache(SIZE_MAX, 64);
  const auto r = cache.lookup_or_reserve({1, 2, 3});
  EXPECT_EQ(r.outcome, EvalCache::Outcome::kReserved);
  cache.insert({1, 2, 3}, 7.0);
  const auto hit = cache.lookup_or_reserve({1, 2, 3});
  EXPECT_EQ(hit.outcome, EvalCache::Outcome::kHit);
  EXPECT_EQ(hit.value.scalar_value(), 7.0);
  EXPECT_EQ(cache.probes(), cache.hits() + cache.misses());
}

TEST(PatternSearchTest, SharedCacheCarriesValuesAcrossSearches) {
  EvalCache cache;
  std::size_t calls = 0;
  const Objective f = [&](const Point& p) {
    ++calls;
    return quadratic(p, {3, 3});
  };
  PatternSearchOptions options;
  options.cache = &cache;
  const PatternSearchResult first = pattern_search(f, {0, 0}, options);
  const std::size_t calls_after_first = calls;
  // A second search over the same region is served mostly from the memo.
  const PatternSearchResult second = pattern_search(f, {1, 1}, options);
  EXPECT_EQ(first.best, second.best);
  EXPECT_LT(calls - calls_after_first, calls_after_first);
  // Per-search counters report deltas, not cache totals.
  EXPECT_EQ(first.evaluations + second.evaluations, calls);
}

TEST(PatternSearchTest, UnitStepsReportNoStepReductions) {
  // With all steps already at 1, halving is impossible: the search must
  // terminate without counting a phantom reduction.
  const PatternSearchResult r = pattern_search(
      [](const Point& p) { return quadratic(p, {6, 2}); }, {0, 0});
  EXPECT_EQ(r.step_reductions, 0);
}

TEST(PatternSearchTest, SpeculativePoolMatchesSerialSearch) {
  util::ThreadPool pool(4);
  const Point target{17, -6};
  const Objective f = [&](const Point& p) { return quadratic(p, target); };
  const PatternSearchResult serial = pattern_search(f, {0, 0});
  PatternSearchOptions options;
  options.pool = &pool;
  const PatternSearchResult parallel = pattern_search(f, {0, 0}, options);
  EXPECT_EQ(serial.best, parallel.best);
  EXPECT_DOUBLE_EQ(serial.best_value, parallel.best_value);
  EXPECT_EQ(serial.base_points, parallel.base_points);
}

TEST(PatternSearchTest, OnNewBaseFiresInTrajectoryOrder) {
  std::vector<Point> anchors;
  PatternSearchOptions options;
  options.on_new_base = [&](const Point& p, double) { anchors.push_back(p); };
  const PatternSearchResult r = pattern_search(
      [](const Point& p) { return quadratic(p, {9, 9}); }, {0, 0}, options);
  ASSERT_EQ(anchors.size(), r.base_points.size());
  for (std::size_t i = 0; i < anchors.size(); ++i) {
    EXPECT_EQ(anchors[i], r.base_points[i].first);
  }
}

TEST(PatternSearchTest, OnProbeStreamIsIdenticalAcrossSerialAndSpeculative) {
  struct Probe {
    std::size_t step;
    Point point;
    double value;
    bool revisit;
    bool operator==(const Probe&) const = default;
  };
  const Point target{11, -4};
  const Objective f = [&](const Point& p) { return quadratic(p, target); };
  auto probes_of = [&](util::ThreadPool* pool) {
    std::vector<Probe> probes;
    PatternSearchOptions options;
    options.pool = pool;
    options.on_probe = [&](std::size_t step, const Point& p, double v,
                           bool revisit) {
      probes.push_back({step, p, v, revisit});
    };
    (void)pattern_search(f, {0, 0}, options);
    return probes;
  };
  const std::vector<Probe> serial = probes_of(nullptr);
  util::ThreadPool pool(4);
  const std::vector<Probe> speculative = probes_of(&pool);
  EXPECT_EQ(serial, speculative);

  // Probe indices are consecutive from zero, every point in bounds, and
  // `revisit` means exactly "seen earlier in this stream".
  ASSERT_FALSE(serial.empty());
  std::set<Point> seen;
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].step, i);
    EXPECT_DOUBLE_EQ(serial[i].value, quadratic(serial[i].point, target));
    EXPECT_EQ(serial[i].revisit, !seen.insert(serial[i].point).second);
  }
  EXPECT_FALSE(serial.front().revisit);
  const auto revisits =
      std::count_if(serial.begin(), serial.end(),
                    [](const Probe& p) { return p.revisit; });
  EXPECT_GT(revisits, 0);  // Hooke-Jeeves revisits points by construction
}

TEST(PatternSearchTest, OnProbeCountsReconcileWithResultTotals) {
  std::size_t probes = 0;
  std::size_t revisits = 0;
  PatternSearchOptions options;
  options.on_probe = [&](std::size_t, const Point&, double, bool revisit) {
    ++probes;
    if (revisit) ++revisits;
  };
  const PatternSearchResult r = pattern_search(
      [](const Point& p) { return quadratic(p, {5, 8}); }, {0, 0}, options);
  EXPECT_EQ(probes, r.evaluations + r.cache_hits);
  EXPECT_EQ(revisits, r.cache_hits);
}

TEST(PatternSearchTest, RejectsMalformedInput) {
  const Objective f = [](const Point&) { return 0.0; };
  EXPECT_THROW((void)pattern_search(f, {}), std::invalid_argument);
  PatternSearchOptions bad_step;
  bad_step.initial_step = {0};
  EXPECT_THROW((void)pattern_search(f, {1}, bad_step), std::invalid_argument);
  PatternSearchOptions bad_bounds;
  bad_bounds.lower_bound = {0, 0};
  EXPECT_THROW((void)pattern_search(f, {1}, bad_bounds),
               std::invalid_argument);
  PatternSearchOptions oob;
  oob.lower_bound = {5};
  EXPECT_THROW((void)pattern_search(f, {1}, oob), std::invalid_argument);
}

// ----------------------------------------------------------------- exhaustive

TEST(ExhaustiveTest, FindsGlobalMinimum) {
  const ExhaustiveResult r = exhaustive_search(
      [](const Point& p) {
        return quadratic(p, {3, 2});
      },
      {1, 1}, {5, 5});
  EXPECT_EQ(r.best, (Point{3, 2}));
  EXPECT_EQ(r.evaluations, 25u);
}

TEST(ExhaustiveTest, SurfaceCoversWholeBox) {
  const ExhaustiveResult r = exhaustive_search(
      [](const Point& p) { return static_cast<double>(p[0] + p[1]); },
      {0, 0}, {2, 3}, /*keep_surface=*/true);
  EXPECT_EQ(r.surface.size(), 12u);
  std::set<Point> points;
  for (const auto& [p, v] : r.surface) points.insert(p);
  EXPECT_EQ(points.size(), 12u);
}

TEST(ExhaustiveTest, AgreesWithPatternSearchOnConvexObjective) {
  const Objective f = [](const Point& p) { return quadratic(p, {4, 6}); };
  const ExhaustiveResult ex = exhaustive_search(f, {1, 1}, {8, 8});
  PatternSearchOptions options;
  options.lower_bound = {1, 1};
  options.upper_bound = {8, 8};
  const PatternSearchResult ps = pattern_search(f, {1, 1}, options);
  EXPECT_EQ(ex.best, ps.best);
  EXPECT_LT(ps.evaluations, ex.evaluations);
}

TEST(ExhaustiveTest, RejectsEmptyBox) {
  const Objective f = [](const Point&) { return 0.0; };
  EXPECT_THROW((void)exhaustive_search(f, {2}, {1}), std::invalid_argument);
  EXPECT_THROW((void)exhaustive_search(f, {}, {}), std::invalid_argument);
}

TEST(ComparatorTest, ScalarComparatorIgnoresViolation) {
  const Comparator better = scalar_comparator();
  const VectorEval lo{{1.0}, 5.0};  // infeasible but smaller objective
  const VectorEval hi{{2.0}, 0.0};
  EXPECT_TRUE(better(lo, hi));
  EXPECT_FALSE(better(hi, lo));
  // Equality keeps the incumbent: neither beats the other.
  EXPECT_FALSE(better(lo, lo));
}

TEST(ComparatorTest, LexicographicRanksFeasibilityFirst) {
  const Comparator better = lexicographic_comparator();
  const VectorEval feasible{{9.0, 9.0}, 0.0};
  const VectorEval infeasible{{1.0, 1.0}, 0.5};
  const VectorEval worse_infeasible{{1.0, 1.0}, 2.0};
  EXPECT_TRUE(better(feasible, infeasible));
  EXPECT_FALSE(better(infeasible, feasible));
  // Two infeasible evaluations rank by smaller violation — the search
  // can walk downhill in constraint slack back into the feasible set.
  EXPECT_TRUE(better(infeasible, worse_infeasible));
  // Two feasible evaluations rank lexicographically.
  const VectorEval tied_first{{9.0, 1.0}, 0.0};
  EXPECT_TRUE(better(tied_first, feasible));
  EXPECT_FALSE(better(feasible, feasible));
}

TEST(ComparatorTest, WeightedSumScalarizesAfterFeasibility) {
  const Comparator better = weighted_sum_comparator({1.0, 10.0});
  const VectorEval a{{5.0, 0.0}, 0.0};  // sum 5
  const VectorEval b{{0.0, 1.0}, 0.0};  // sum 10
  EXPECT_TRUE(better(a, b));
  const VectorEval infeasible{{-100.0, -100.0}, 1.0};
  EXPECT_TRUE(better(b, infeasible));
  EXPECT_THROW((void)weighted_sum_comparator({}), std::invalid_argument);
}

TEST(VectorSearchTest, ScalarShimIsBitForBitThePatternSearch) {
  // The historical scalar search and the vector substrate under the
  // scalar comparator must agree on everything observable: optimum,
  // value, evaluation count and the full base-point trajectory.
  const Objective f = [](const Point& p) { return quadratic(p, {6, 2}); };
  PatternSearchOptions so;
  so.lower_bound = {0, 0};
  so.upper_bound = {9, 9};
  const PatternSearchResult scalar = pattern_search(f, {1, 8}, so);

  VectorSearchOptions vo;
  vo.lower_bound = {0, 0};
  vo.upper_bound = {9, 9};
  const VectorSearchResult vec = vector_pattern_search(
      [&](const Point& p) { return VectorEval::scalar(f(p)); }, {1, 8}, vo);

  EXPECT_EQ(vec.best, scalar.best);
  EXPECT_EQ(scalarize(vec.best_eval), scalar.best_value);
  EXPECT_EQ(vec.evaluations, scalar.evaluations);
  ASSERT_EQ(vec.base_points.size(), scalar.base_points.size());
  for (std::size_t i = 0; i < vec.base_points.size(); ++i) {
    EXPECT_EQ(vec.base_points[i].first, scalar.base_points[i].first);
    EXPECT_EQ(scalarize(vec.base_points[i].second),
              scalar.base_points[i].second);
  }
}

TEST(VectorSearchTest, ExhaustiveShimIsBitForBitTheEnumeration) {
  const Objective f = [](const Point& p) { return quadratic(p, {2, 4}); };
  const ExhaustiveResult scalar = exhaustive_search(f, {1, 1}, {5, 5});
  const VectorExhaustiveResult vec = vector_exhaustive_search(
      [&](const Point& p) { return VectorEval::scalar(f(p)); }, {1, 1},
      {5, 5});
  EXPECT_EQ(vec.best, scalar.best);
  EXPECT_EQ(scalarize(vec.best_eval), scalar.best_value);
  EXPECT_EQ(vec.evaluations, scalar.evaluations);
  EXPECT_EQ(vec.pruned, 0u);
}

TEST(VectorSearchTest, LexicographicSearchWalksBackIntoFeasibleRegion) {
  // Feasible set: p[0] >= 5.  Violation decreases toward it, so the
  // constrained search escapes an infeasible start instead of stalling
  // on a plateau of +inf the way the scalar encoding would.
  const VectorObjective f = [](const Point& p) {
    VectorEval e;
    e.objectives = {quadratic(p, {7, 3})};
    e.violation = std::max(0.0, 5.0 - static_cast<double>(p[0]));
    return e;
  };
  VectorSearchOptions vo;
  vo.lower_bound = {0, 0};
  vo.upper_bound = {9, 9};
  vo.better = lexicographic_comparator();
  const VectorSearchResult r = vector_pattern_search(f, {0, 0}, vo);
  EXPECT_EQ(r.best, (Point{7, 3}));
  EXPECT_TRUE(r.best_eval.feasible());
}

TEST(VectorSearchTest, BoxPruneSkipsLatticeAndKeepsOptimum) {
  // Objective p[0] + p[1] over [0,4]^2; the sound optimistic bound of a
  // sub-box is the value at its lower corner, so boxes whose lower
  // corner already loses to the incumbent are skipped wholesale.
  const VectorObjective f = [](const Point& p) {
    return VectorEval::scalar(static_cast<double>(p[0] + p[1]));
  };
  const VectorExhaustiveResult full =
      vector_exhaustive_search(f, {0, 0}, {4, 4});
  VectorExhaustiveOptions options;
  options.prune = [](const Point& box_lower, const Point&,
                     const VectorEval& incumbent) {
    double bound = 0.0;
    for (int v : box_lower) bound += v;
    return bound > incumbent.objectives[0];
  };
  const VectorExhaustiveResult pruned =
      vector_exhaustive_search(f, {0, 0}, {4, 4}, options);
  EXPECT_EQ(pruned.best, full.best);
  EXPECT_GT(pruned.pruned, 0u);
  EXPECT_EQ(pruned.evaluations + pruned.pruned, full.evaluations);
}

}  // namespace
}  // namespace windim::search
