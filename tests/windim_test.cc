#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "search/exhaustive.h"
#include "windim/windim.h"

namespace windim::core {
namespace {

WindowProblem two_class_problem(double s1 = 20.0, double s2 = 20.0) {
  return WindowProblem(net::canada_topology(),
                       net::two_class_traffic(s1, s2));
}

TEST(WindowProblemTest, BuildsClosedChainModel) {
  const WindowProblem p = two_class_problem();
  EXPECT_EQ(p.num_classes(), 2);
  EXPECT_EQ(p.hops(0), 4);
  EXPECT_EQ(p.hops(1), 4);
  EXPECT_EQ(p.kleinrock_windows(), (std::vector<int>{4, 4}));

  const qn::CyclicNetwork net = p.network({3, 5});
  // 7 channel queues + 2 source queues = 9 stations (thesis Fig 4.6).
  EXPECT_EQ(net.stations.size(), 9u);
  EXPECT_EQ(net.chains.size(), 2u);
  EXPECT_EQ(net.chains[0].population, 3);
  EXPECT_EQ(net.chains[1].population, 5);
  // Route = 4 hops + the reentrant source queue.
  EXPECT_EQ(net.chains[0].route.size(), 5u);
  EXPECT_EQ(net.chains[0].route.back(), p.source_station(0));
}

TEST(WindowProblemTest, ServiceTimesFromCapacities) {
  const WindowProblem p = two_class_problem(25.0, 10.0);
  const qn::CyclicNetwork net = p.network({1, 1});
  // 1000 bits / 50 kbit/s = 0.02 s on the trunk channels.
  for (std::size_t k = 0; k + 1 < net.chains[0].route.size(); ++k) {
    EXPECT_NEAR(net.chains[0].service_times[k], 0.02, 1e-12);
  }
  // Source queue = 1/S_r.
  EXPECT_NEAR(net.chains[0].service_times.back(), 1.0 / 25.0, 1e-12);
  EXPECT_NEAR(net.chains[1].service_times.back(), 1.0 / 10.0, 1e-12);
}

TEST(WindowProblemTest, EvaluateProducesConsistentMetrics) {
  const WindowProblem p = two_class_problem();
  const Evaluation ev = p.evaluate({4, 4});
  EXPECT_GT(ev.throughput, 0.0);
  EXPECT_GT(ev.mean_delay, 0.0);
  EXPECT_NEAR(ev.power, ev.throughput / ev.mean_delay, 1e-9);
  EXPECT_NEAR(ev.throughput, ev.class_throughput[0] + ev.class_throughput[1],
              1e-9);
  EXPECT_TRUE(ev.converged);
  // Throughput cannot exceed the offered load.
  EXPECT_LE(ev.class_throughput[0], 20.0 + 1e-6);
  EXPECT_LE(ev.class_throughput[1], 20.0 + 1e-6);
}

TEST(WindowProblemTest, SymmetricLoadsGiveSymmetricEvaluation) {
  const WindowProblem p = two_class_problem(18.0, 18.0);
  const Evaluation ev = p.evaluate({4, 4});
  EXPECT_NEAR(ev.class_throughput[0], ev.class_throughput[1], 1e-6);
  EXPECT_NEAR(ev.class_delay[0], ev.class_delay[1], 1e-6);
}

TEST(WindowProblemTest, EvaluatorsAgreeReasonably) {
  const WindowProblem p = two_class_problem();
  const Evaluation heuristic = p.evaluate({3, 3}, Evaluator::kHeuristicMva);
  const Evaluation exact_mva = p.evaluate({3, 3}, Evaluator::kExactMva);
  const Evaluation convolution = p.evaluate({3, 3}, Evaluator::kConvolution);
  // The two exact engines agree to solver precision.
  EXPECT_NEAR(exact_mva.power, convolution.power, 1e-6 * exact_mva.power);
  // The heuristic is within a few percent (thesis 4.2).
  EXPECT_NEAR(heuristic.power, exact_mva.power, 0.05 * exact_mva.power);
}

TEST(WindowProblemTest, ThroughputIncreasesWithWindow) {
  const WindowProblem p = two_class_problem();
  double previous = 0.0;
  for (int e = 1; e <= 8; ++e) {
    const Evaluation ev = p.evaluate({e, e}, Evaluator::kConvolution);
    EXPECT_GT(ev.throughput, previous);
    previous = ev.throughput;
  }
}

TEST(WindowProblemTest, DelayIncreasesWithWindow) {
  const WindowProblem p = two_class_problem();
  double previous = 0.0;
  for (int e = 1; e <= 8; ++e) {
    const Evaluation ev = p.evaluate({e, e}, Evaluator::kConvolution);
    EXPECT_GT(ev.mean_delay, previous);
    previous = ev.mean_delay;
  }
}

TEST(WindowProblemTest, ZeroWindowClosesChannel) {
  const WindowProblem p = two_class_problem();
  const Evaluation ev = p.evaluate({0, 3}, Evaluator::kConvolution);
  EXPECT_DOUBLE_EQ(ev.class_throughput[0], 0.0);
  EXPECT_GT(ev.class_throughput[1], 0.0);
}

TEST(WindowProblemTest, RejectsMalformedInput) {
  const WindowProblem p = two_class_problem();
  EXPECT_THROW((void)p.evaluate({1}), std::invalid_argument);
  EXPECT_THROW((void)p.evaluate({-1, 1}), std::invalid_argument);
  EXPECT_THROW(WindowProblem(net::canada_topology(), {}),
               std::invalid_argument);
  EXPECT_THROW(
      WindowProblem(net::canada_topology(), net::two_class_traffic(0.0, 1.0)),
      std::invalid_argument);
}

// ------------------------------------------------------------------- windim

TEST(DimensionTest, MatchesExhaustiveOptimumTwoClass) {
  const WindowProblem p = two_class_problem();
  const DimensionResult result = dimension_windows(p);

  const search::Objective objective = [&](const search::Point& e) {
    const Evaluation ev = p.evaluate(e);
    return ev.power > 0.0 ? 1.0 / ev.power
                          : std::numeric_limits<double>::infinity();
  };
  const search::ExhaustiveResult exhaustive =
      search::exhaustive_search(objective, {1, 1}, {10, 10});
  EXPECT_NEAR(result.evaluation.power, 1.0 / exhaustive.best_value,
              1e-6 / exhaustive.best_value);
  EXPECT_EQ(result.optimal_windows, exhaustive.best);
}

TEST(DimensionTest, SymmetricLoadsGiveSymmetricPower) {
  // Thesis Table 4.7: symmetric loadings yield symmetric optima (the
  // power surface is symmetric, so ties may pick either orientation).
  const DimensionResult r = dimension_windows(two_class_problem(25.0, 25.0));
  const WindowProblem p = two_class_problem(25.0, 25.0);
  const std::vector<int> mirrored{r.optimal_windows[1],
                                  r.optimal_windows[0]};
  const Evaluation at_mirror = p.evaluate(mirrored);
  EXPECT_NEAR(at_mirror.power, r.evaluation.power,
              1e-6 * r.evaluation.power);
}

TEST(DimensionTest, HigherLoadShrinksWindowsAndGrowsPower) {
  // Thesis Table 4.7's headline shape.
  const DimensionResult light = dimension_windows(two_class_problem(12, 13));
  const DimensionResult heavy = dimension_windows(two_class_problem(75, 75));
  EXPECT_LE(heavy.optimal_windows[0], light.optimal_windows[0]);
  EXPECT_LE(heavy.optimal_windows[1], light.optimal_windows[1]);
  EXPECT_GT(heavy.evaluation.power, light.evaluation.power);
}

TEST(DimensionTest, RespectsBounds) {
  DimensionOptions options;
  options.min_window = 3;
  options.max_window = 5;
  const DimensionResult r =
      dimension_windows(two_class_problem(75.0, 75.0), options);
  for (int e : r.optimal_windows) {
    EXPECT_GE(e, 3);
    EXPECT_LE(e, 5);
  }
}

TEST(DimensionTest, CustomInitialWindows) {
  DimensionOptions options;
  options.initial_windows = {8, 8};
  const DimensionResult custom =
      dimension_windows(two_class_problem(), options);
  const DimensionResult standard = dimension_windows(two_class_problem());
  // Different starting points, same optimum (surface is well behaved).
  EXPECT_EQ(custom.optimal_windows, standard.optimal_windows);
}

TEST(DimensionTest, ExactEvaluatorWorksOnSmallBox) {
  DimensionOptions options;
  options.evaluator = Evaluator::kConvolution;
  options.max_window = 6;
  const DimensionResult r =
      dimension_windows(two_class_problem(), options);
  EXPECT_GT(r.evaluation.power, 0.0);
  EXPECT_GE(r.optimal_windows[0], 1);
}

TEST(DimensionTest, FourClassDimensioningRuns) {
  const WindowProblem p(net::canada_topology(),
                        net::four_class_traffic(6.0, 6.0, 6.0, 12.0));
  EXPECT_EQ(p.kleinrock_windows(), (std::vector<int>{4, 4, 3, 1}));
  const DimensionResult r = dimension_windows(p);
  EXPECT_EQ(r.optimal_windows.size(), 4u);
  // Thesis Table 4.12: the searched optimum beats the hop-count rule.
  const Evaluation hop_rule = p.evaluate({4, 4, 3, 1});
  EXPECT_GE(r.evaluation.power, hop_rule.power - 1e-9);
}

TEST(DimensionTest, RejectsBadOptions) {
  DimensionOptions bad;
  bad.min_window = 0;
  EXPECT_THROW((void)dimension_windows(two_class_problem(), bad),
               std::invalid_argument);
  DimensionOptions empty;
  empty.min_window = 5;
  empty.max_window = 4;
  EXPECT_THROW((void)dimension_windows(two_class_problem(), empty),
               std::invalid_argument);
  DimensionOptions mismatch;
  mismatch.initial_windows = {1, 2, 3};
  EXPECT_THROW((void)dimension_windows(two_class_problem(), mismatch),
               std::invalid_argument);
}

TEST(DimensionTest, EvaluatorNames) {
  EXPECT_STREQ(to_string(Evaluator::kHeuristicMva), "heuristic-mva");
  EXPECT_STREQ(to_string(Evaluator::kExactMva), "exact-mva");
  EXPECT_STREQ(to_string(Evaluator::kConvolution), "convolution");
  EXPECT_STREQ(to_string(Evaluator::kLinearizer), "linearizer");
}

TEST(DimensionTest, LinearizerEvaluatorAgreesWithExact) {
  const WindowProblem p = two_class_problem();
  const Evaluation lin = p.evaluate({3, 3}, Evaluator::kLinearizer);
  const Evaluation exact = p.evaluate({3, 3}, Evaluator::kExactMva);
  EXPECT_NEAR(lin.power, exact.power, 0.01 * exact.power);
}

TEST(DimensionTest, GeneralizedPowerShiftsTheOptimum) {
  // alpha > 1 weights throughput more, so the optimal windows cannot
  // shrink; alpha < 1 weights delay more, so they cannot grow.
  const WindowProblem p = two_class_problem(20.0, 20.0);
  DimensionOptions plain;
  DimensionOptions throughput_heavy;
  throughput_heavy.objective = DimensionObjective::kGeneralizedPower;
  throughput_heavy.power_exponent = 3.0;
  DimensionOptions delay_heavy;
  delay_heavy.objective = DimensionObjective::kGeneralizedPower;
  delay_heavy.power_exponent = 0.4;

  const DimensionResult base = dimension_windows(p, plain);
  const DimensionResult big = dimension_windows(p, throughput_heavy);
  const DimensionResult small = dimension_windows(p, delay_heavy);
  for (int r = 0; r < 2; ++r) {
    EXPECT_GE(big.optimal_windows[static_cast<std::size_t>(r)],
              base.optimal_windows[static_cast<std::size_t>(r)]);
    EXPECT_LE(small.optimal_windows[static_cast<std::size_t>(r)],
              base.optimal_windows[static_cast<std::size_t>(r)]);
  }
  // alpha = 1 reduces exactly to the plain power objective.
  DimensionOptions alpha_one;
  alpha_one.objective = DimensionObjective::kGeneralizedPower;
  alpha_one.power_exponent = 1.0;
  const DimensionResult same = dimension_windows(p, alpha_one);
  EXPECT_EQ(same.optimal_windows, base.optimal_windows);
}

TEST(DimensionTest, DelayCapMaximizesThroughputWithinCap) {
  const WindowProblem p = two_class_problem(25.0, 25.0);
  DimensionOptions capped;
  capped.objective = DimensionObjective::kThroughputUnderDelayCap;
  capped.max_delay = 0.150;  // seconds
  const DimensionResult r = dimension_windows(p, capped);
  EXPECT_LE(r.evaluation.mean_delay, 0.150 + 1e-9);
  // Any larger symmetric window must violate the cap or lose throughput.
  const std::vector<int> bigger{r.optimal_windows[0] + 1,
                                r.optimal_windows[1] + 1};
  const Evaluation at_bigger = p.evaluate(bigger);
  EXPECT_TRUE(at_bigger.mean_delay > 0.150 ||
              at_bigger.throughput <= r.evaluation.throughput + 1e-9);
  // A looser cap can only increase the achievable throughput.
  DimensionOptions loose = capped;
  loose.max_delay = 0.5;
  const DimensionResult r2 = dimension_windows(p, loose);
  EXPECT_GE(r2.evaluation.throughput, r.evaluation.throughput - 1e-9);
}

TEST(DimensionTest, ImpossibleDelayCapReportsInfeasible) {
  const WindowProblem p = two_class_problem(25.0, 25.0);
  DimensionOptions impossible;
  impossible.objective = DimensionObjective::kThroughputUnderDelayCap;
  impossible.max_delay = 0.001;  // far below any achievable delay
  const DimensionResult r = dimension_windows(p, impossible);
  EXPECT_FALSE(r.feasible);
  DimensionOptions possible = impossible;
  possible.max_delay = 0.3;
  EXPECT_TRUE(dimension_windows(p, possible).feasible);
}

TEST(DimensionTest, ObjectiveOptionValidation) {
  const WindowProblem p = two_class_problem();
  DimensionOptions bad_alpha;
  bad_alpha.objective = DimensionObjective::kGeneralizedPower;
  bad_alpha.power_exponent = 0.0;
  EXPECT_THROW((void)dimension_windows(p, bad_alpha), std::invalid_argument);
  DimensionOptions bad_cap;
  bad_cap.objective = DimensionObjective::kThroughputUnderDelayCap;
  bad_cap.max_delay = 0.0;
  EXPECT_THROW((void)dimension_windows(p, bad_cap), std::invalid_argument);
}

}  // namespace
}  // namespace windim::core
