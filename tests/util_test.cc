#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <stdexcept>

#include "util/checked_math.h"
#include "util/math.h"
#include "util/mixed_radix.h"
#include "util/rng.h"
#include "util/table.h"

namespace windim::util {
namespace {

// ---------------------------------------------------------------- checked math

TEST(CheckedMath, MulDetectsOverflowAtTheBoundary) {
  std::size_t out = 0;
  EXPECT_FALSE(mul_overflows(0, SIZE_MAX, out));
  EXPECT_EQ(out, 0u);
  EXPECT_FALSE(mul_overflows(1, SIZE_MAX, out));
  EXPECT_EQ(out, SIZE_MAX);
  EXPECT_FALSE(mul_overflows(SIZE_MAX / 2, 2, out));
  EXPECT_EQ(out, SIZE_MAX - 1);
  EXPECT_TRUE(mul_overflows(SIZE_MAX / 2 + 1, 2, out));
  EXPECT_TRUE(mul_overflows(SIZE_MAX, 2, out));
  EXPECT_TRUE(mul_overflows(std::size_t{1} << 32, std::size_t{1} << 32, out));
}

TEST(CheckedMath, AddDetectsOverflowAtTheBoundary) {
  std::size_t out = 0;
  EXPECT_FALSE(add_overflows(SIZE_MAX - 1, 1, out));
  EXPECT_EQ(out, SIZE_MAX);
  EXPECT_TRUE(add_overflows(SIZE_MAX, 1, out));
  EXPECT_TRUE(add_overflows(SIZE_MAX / 2 + 1, SIZE_MAX / 2 + 1, out));
}

// ---------------------------------------------------------------- mixed radix

TEST(MixedRadix, SizeIsProductOfExtents) {
  EXPECT_EQ(MixedRadixIndexer({2, 3}).size(), 3u * 4u);
  EXPECT_EQ(MixedRadixIndexer({0}).size(), 1u);
  EXPECT_EQ(MixedRadixIndexer({5}).size(), 6u);
  EXPECT_EQ(MixedRadixIndexer({1, 1, 1}).size(), 8u);
}

TEST(MixedRadix, DefaultConstructedIsSinglePoint) {
  const MixedRadixIndexer indexer;
  EXPECT_EQ(indexer.size(), 1u);
  EXPECT_EQ(indexer.dimensions(), 0u);
}

TEST(MixedRadix, RejectsNegativeLimits) {
  EXPECT_THROW((void)MixedRadixIndexer({2, -1}), std::invalid_argument);
}

TEST(MixedRadix, OffsetAndVectorAtAreInverse) {
  const MixedRadixIndexer indexer({3, 2, 4});
  for (std::size_t off = 0; off < indexer.size(); ++off) {
    const PopVector v = indexer.vector_at(off);
    EXPECT_EQ(indexer.offset(v), off);
  }
}

TEST(MixedRadix, NextEnumeratesAllPointsInOffsetOrder) {
  const MixedRadixIndexer indexer({2, 1, 3});
  PopVector v(3, 0);
  std::size_t expected = 0;
  do {
    EXPECT_EQ(indexer.offset(v), expected);
    ++expected;
  } while (indexer.next(v));
  EXPECT_EQ(expected, indexer.size());
  // After exhaustion the vector wraps to all-zero.
  EXPECT_EQ(v, PopVector(3, 0));
}

TEST(MixedRadix, OffsetMinusOneMatchesExplicitDecrement) {
  const MixedRadixIndexer indexer({3, 4, 2});
  PopVector v{2, 1, 2};
  for (std::size_t r = 0; r < 3; ++r) {
    PopVector dec = v;
    --dec[r];
    EXPECT_EQ(indexer.offset_minus_one(v, r), indexer.offset(dec));
  }
}

TEST(MixedRadix, OffsetMinusOneRejectsZeroCoordinate) {
  const MixedRadixIndexer indexer({3, 4});
  const PopVector v{0, 2};
  EXPECT_THROW((void)indexer.offset_minus_one(v, 0), std::out_of_range);
}

TEST(MixedRadix, OffsetRejectsOutOfRange) {
  const MixedRadixIndexer indexer({2, 2});
  EXPECT_THROW((void)indexer.offset({3, 0}), std::out_of_range);
  EXPECT_THROW((void)indexer.offset({0, -1}), std::out_of_range);
  EXPECT_THROW((void)indexer.offset({1}), std::out_of_range);
}

TEST(MixedRadix, SmallerVectorsHaveSmallerOffsets) {
  // The lattice recursions rely on offset(v - e_r) < offset(v).
  const MixedRadixIndexer indexer({3, 3, 3});
  PopVector v(3, 0);
  do {
    for (std::size_t r = 0; r < 3; ++r) {
      if (v[r] == 0) continue;
      EXPECT_LT(indexer.offset_minus_one(v, r), indexer.offset(v));
    }
  } while (indexer.next(v));
}

TEST(MixedRadix, ComponentLe) {
  EXPECT_TRUE(component_le({1, 2}, {1, 2}));
  EXPECT_TRUE(component_le({0, 2}, {1, 2}));
  EXPECT_FALSE(component_le({2, 2}, {1, 3}));
  EXPECT_THROW((void)component_le({1}, {1, 2}), std::invalid_argument);
}

TEST(MixedRadix, TotalPopulation) {
  EXPECT_EQ(total_population({1, 2, 3}), 6);
  EXPECT_EQ(total_population({}), 0);
}

// ----------------------------------------------------------------------- math

TEST(MathTest, LogAddMatchesDirectComputation) {
  EXPECT_NEAR(log_add(std::log(3.0), std::log(4.0)), std::log(7.0), 1e-12);
  EXPECT_NEAR(log_add(0.0, 0.0), std::log(2.0), 1e-12);
}

TEST(MathTest, LogAddHandlesNegativeInfinity) {
  const double ninf = -std::numeric_limits<double>::infinity();
  EXPECT_DOUBLE_EQ(log_add(ninf, 1.5), 1.5);
  EXPECT_DOUBLE_EQ(log_add(2.5, ninf), 2.5);
  EXPECT_TRUE(std::isinf(log_add(ninf, ninf)));
}

TEST(MathTest, LogAddAvoidsOverflow) {
  // exp(800) overflows a double, but the log-sum must not.
  const double result = log_add(800.0, 800.0);
  EXPECT_NEAR(result, 800.0 + std::log(2.0), 1e-9);
}

TEST(MathTest, FactorialExactSmallValues) {
  EXPECT_DOUBLE_EQ(factorial(0), 1.0);
  EXPECT_DOUBLE_EQ(factorial(1), 1.0);
  EXPECT_DOUBLE_EQ(factorial(5), 120.0);
  EXPECT_DOUBLE_EQ(factorial(10), 3628800.0);
  EXPECT_THROW((void)factorial(-1), std::domain_error);
  EXPECT_THROW((void)factorial(200), std::overflow_error);
}

TEST(MathTest, LogFactorialMatchesFactorial) {
  for (int n = 0; n <= 20; ++n) {
    EXPECT_NEAR(std::exp(log_factorial(n)), factorial(n),
                1e-9 * factorial(n));
  }
}

TEST(MathTest, Binomial) {
  EXPECT_DOUBLE_EQ(binomial(5, 2), 10.0);
  EXPECT_DOUBLE_EQ(binomial(10, 0), 1.0);
  EXPECT_DOUBLE_EQ(binomial(10, 10), 1.0);
  EXPECT_DOUBLE_EQ(binomial(3, 5), 0.0);
  EXPECT_DOUBLE_EQ(binomial(52, 5), 2598960.0);
}

TEST(MathTest, ApproxEqual) {
  EXPECT_TRUE(approx_equal(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(approx_equal(1.0, 1.001));
  EXPECT_TRUE(approx_equal(0.0, 0.0));
}

TEST(MathTest, RelativeError) {
  EXPECT_NEAR(relative_error(1.1, 1.0), 0.1, 1e-12);
  EXPECT_NEAR(relative_error(0.0, 0.0), 0.0, 1e-12);
}

TEST(MathTest, MaxAbsDiff) {
  EXPECT_DOUBLE_EQ(max_abs_diff({1.0, 2.0}, {1.5, 1.0}), 1.0);
  EXPECT_THROW((void)max_abs_diff({1.0}, {1.0, 2.0}), std::invalid_argument);
}

// ------------------------------------------------------------------------ rng

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform01(), b.uniform01());
  }
}

TEST(RngTest, ExponentialMeanIsApproximatelyCorrect) {
  Rng rng(7);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.5);
  EXPECT_NEAR(sum / n, 2.5, 0.05);
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(3);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(1, 4));
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_EQ(*seen.begin(), 1);
  EXPECT_EQ(*seen.rbegin(), 4);
}

// ---------------------------------------------------------------------- table

TEST(TableTest, RendersAlignedColumns) {
  TextTable t({"a", "long-header"});
  t.begin_row().add("x").add(1);
  t.begin_row().add("longer-cell").add(2.5, 1);
  const std::string out = t.render();
  EXPECT_NE(out.find("| a           | long-header |"), std::string::npos);
  EXPECT_NE(out.find("| longer-cell | 2.5         |"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TableTest, CsvQuotesCommaCells) {
  TextTable t({"e", "p"});
  t.begin_row().add_window({1, 2}).add(3);
  const std::string csv = t.render_csv();
  EXPECT_NE(csv.find("\"(1, 2)\",3"), std::string::npos);
}

TEST(TableTest, FormatWindow) {
  EXPECT_EQ(format_window({4, 4, 3, 1}), "(4, 4, 3, 1)");
  EXPECT_EQ(format_window({}), "()");
}

TEST(TableTest, RejectsEmptyHeader) {
  EXPECT_THROW((void)TextTable({}), std::invalid_argument);
}

}  // namespace
}  // namespace windim::util
