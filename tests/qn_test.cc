#include <gtest/gtest.h>

#include "qn/cyclic.h"
#include "qn/network.h"
#include "qn/traffic.h"

namespace windim::qn {
namespace {

Station fcfs(const std::string& name) {
  Station s;
  s.name = name;
  s.discipline = Discipline::kFcfs;
  return s;
}

// ------------------------------------------------------------------- stations

TEST(StationTest, FixedRateMultiplierIsOne) {
  const Station s = fcfs("q");
  EXPECT_DOUBLE_EQ(s.rate_multiplier(1), 1.0);
  EXPECT_DOUBLE_EQ(s.rate_multiplier(5), 1.0);
  EXPECT_DOUBLE_EQ(s.rate_multiplier(0), 0.0);
  EXPECT_TRUE(s.is_fixed_rate());
  EXPECT_FALSE(s.is_delay());
}

TEST(StationTest, InfiniteServerMultiplierGrowsLinearly) {
  Station s;
  s.discipline = Discipline::kInfiniteServer;
  EXPECT_DOUBLE_EQ(s.rate_multiplier(3), 3.0);
  EXPECT_TRUE(s.is_delay());
  EXPECT_FALSE(s.is_fixed_rate());
}

TEST(StationTest, QueueDependentMultiplierSaturates) {
  Station s;
  s.rate_multipliers = {1.0, 2.0, 3.0};  // e.g. M/M/3
  EXPECT_DOUBLE_EQ(s.rate_multiplier(1), 1.0);
  EXPECT_DOUBLE_EQ(s.rate_multiplier(2), 2.0);
  EXPECT_DOUBLE_EQ(s.rate_multiplier(3), 3.0);
  EXPECT_DOUBLE_EQ(s.rate_multiplier(7), 3.0);  // saturated
  EXPECT_FALSE(s.is_fixed_rate());
}

// ---------------------------------------------------------------------- model

NetworkModel two_station_closed(int population) {
  NetworkModel m;
  const int a = m.add_station(fcfs("a"));
  const int b = m.add_station(fcfs("b"));
  Chain c;
  c.name = "chain";
  c.type = ChainType::kClosed;
  c.population = population;
  c.visits = {{a, 1.0, 0.1}, {b, 1.0, 0.2}};
  m.add_chain(std::move(c));
  return m;
}

TEST(NetworkModelTest, DemandIsVisitRatioTimesServiceTime) {
  NetworkModel m = two_station_closed(3);
  EXPECT_DOUBLE_EQ(m.demand(0, 0), 0.1);
  EXPECT_DOUBLE_EQ(m.demand(0, 1), 0.2);
  EXPECT_DOUBLE_EQ(m.service_time(0, 1), 0.2);
  EXPECT_DOUBLE_EQ(m.visit_ratio(0, 0), 1.0);
}

TEST(NetworkModelTest, VisitsAndStationSets) {
  NetworkModel m = two_station_closed(3);
  const int c = m.add_station(fcfs("unvisited"));
  EXPECT_TRUE(m.visits(0, 0));
  EXPECT_FALSE(m.visits(0, c));
  EXPECT_EQ(m.stations_of(0), (std::vector<int>{0, 1}));
  EXPECT_EQ(m.chains_visiting(0), (std::vector<int>{0}));
  EXPECT_TRUE(m.chains_visiting(c).empty());
}

TEST(NetworkModelTest, ValidatesCleanModel) {
  EXPECT_NO_THROW(two_station_closed(3).validate());
}

TEST(NetworkModelTest, RejectsChainWithUnknownStation) {
  NetworkModel m;
  m.add_station(fcfs("a"));
  Chain c;
  c.visits = {{5, 1.0, 0.1}};
  EXPECT_THROW(m.add_chain(std::move(c)), ModelError);
}

TEST(NetworkModelTest, RejectsNegativePopulation) {
  NetworkModel m = two_station_closed(-1);
  EXPECT_THROW(m.validate(), ModelError);
}

TEST(NetworkModelTest, RejectsDuplicateVisitEntries) {
  NetworkModel m;
  const int a = m.add_station(fcfs("a"));
  Chain c;
  c.population = 1;
  c.visits = {{a, 1.0, 0.1}, {a, 1.0, 0.1}};
  m.add_chain(std::move(c));
  EXPECT_THROW(m.validate(), ModelError);
}

TEST(NetworkModelTest, RejectsNonPositiveServiceTime) {
  NetworkModel m;
  const int a = m.add_station(fcfs("a"));
  Chain c;
  c.population = 1;
  c.visits = {{a, 1.0, 0.0}};
  m.add_chain(std::move(c));
  EXPECT_THROW(m.validate(), ModelError);
}

TEST(NetworkModelTest, RejectsClassDependentFcfsServiceTimes) {
  // BCMP: FCFS stations need equal means across chains (thesis 3.2.4).
  NetworkModel m;
  const int a = m.add_station(fcfs("shared"));
  Chain c1;
  c1.name = "c1";
  c1.population = 1;
  c1.visits = {{a, 1.0, 0.1}};
  m.add_chain(std::move(c1));
  Chain c2;
  c2.name = "c2";
  c2.population = 1;
  c2.visits = {{a, 1.0, 0.3}};
  m.add_chain(std::move(c2));
  EXPECT_THROW(m.validate(), ModelError);
}

TEST(NetworkModelTest, AllowsClassDependentPsServiceTimes) {
  NetworkModel m;
  Station ps;
  ps.name = "shared";
  ps.discipline = Discipline::kProcessorSharing;
  const int a = m.add_station(std::move(ps));
  Chain c1;
  c1.population = 1;
  c1.visits = {{a, 1.0, 0.1}};
  m.add_chain(std::move(c1));
  Chain c2;
  c2.population = 1;
  c2.visits = {{a, 1.0, 0.3}};
  m.add_chain(std::move(c2));
  EXPECT_NO_THROW(m.validate());
}

TEST(NetworkModelTest, RejectsIsStationWithRateMultipliers) {
  NetworkModel m;
  Station s;
  s.name = "is";
  s.discipline = Discipline::kInfiniteServer;
  s.rate_multipliers = {1.0, 2.0};
  const int a = m.add_station(std::move(s));
  Chain c;
  c.population = 1;
  c.visits = {{a, 1.0, 0.1}};
  m.add_chain(std::move(c));
  EXPECT_THROW(m.validate(), ModelError);
}

TEST(NetworkModelTest, ClosedPopulationsSkipsOpenChains) {
  NetworkModel m = two_station_closed(3);
  Chain open;
  open.name = "open";
  open.type = ChainType::kOpen;
  open.arrival_rate = 2.0;
  open.visits = {{0, 1.0, 0.1}};
  m.add_chain(std::move(open));
  EXPECT_EQ(m.closed_populations(), (std::vector<int>{3}));
  EXPECT_FALSE(m.all_closed());
}

TEST(NetworkModelTest, DisciplineNames) {
  EXPECT_STREQ(to_string(Discipline::kFcfs), "FCFS");
  EXPECT_STREQ(to_string(Discipline::kProcessorSharing), "PS");
  EXPECT_STREQ(to_string(Discipline::kLcfsPreemptiveResume), "LCFS-PR");
  EXPECT_STREQ(to_string(Discipline::kInfiniteServer), "IS");
}

// --------------------------------------------------------------------- cyclic

TEST(CyclicNetworkTest, ToModelPreservesStructure) {
  CyclicNetwork net;
  net.stations = {fcfs("q0"), fcfs("q1"), fcfs("src")};
  net.chains = {{"c", {0, 1, 2}, {0.02, 0.04, 0.05}, 4}};
  const NetworkModel m = net.to_model();
  EXPECT_EQ(m.num_stations(), 3);
  EXPECT_EQ(m.num_chains(), 1);
  EXPECT_EQ(m.chain(0).population, 4);
  EXPECT_DOUBLE_EQ(m.demand(0, 1), 0.04);
  EXPECT_NO_THROW(m.validate());
}

TEST(CyclicNetworkTest, RejectsRouteServiceSizeMismatch) {
  CyclicNetwork net;
  net.stations = {fcfs("q0")};
  net.chains = {{"c", {0}, {0.1, 0.2}, 1}};
  EXPECT_THROW(net.validate(), ModelError);
}

TEST(CyclicNetworkTest, RejectsRepeatedStationInRoute) {
  CyclicNetwork net;
  net.stations = {fcfs("q0"), fcfs("q1")};
  net.chains = {{"c", {0, 1, 0}, {0.1, 0.1, 0.1}, 1}};
  EXPECT_THROW(net.validate(), ModelError);
}

TEST(CyclicNetworkTest, RejectsUnknownStationInRoute) {
  CyclicNetwork net;
  net.stations = {fcfs("q0")};
  net.chains = {{"c", {3}, {0.1}, 1}};
  EXPECT_THROW(net.validate(), ModelError);
}

// -------------------------------------------------------------------- traffic

TEST(TrafficTest, SolveLinearSystemSimple) {
  // 2x + y = 5, x - y = 1  =>  x = 2, y = 1.
  const std::vector<double> x =
      solve_linear_system({2.0, 1.0, 1.0, -1.0}, {5.0, 1.0});
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_NEAR(x[1], 1.0, 1e-12);
}

TEST(TrafficTest, SolveLinearSystemRejectsSingular) {
  EXPECT_THROW(solve_linear_system({1.0, 1.0, 2.0, 2.0}, {1.0, 2.0}),
               std::runtime_error);
}

TEST(TrafficTest, OpenTandemTraffic) {
  // gamma -> station0 -> station1 -> out.
  RoutingMatrix p = RoutingMatrix::zero(2);
  p.at(0, 1) = 1.0;
  const std::vector<double> lambda = solve_open_traffic(p, {3.0, 0.0});
  EXPECT_NEAR(lambda[0], 3.0, 1e-12);
  EXPECT_NEAR(lambda[1], 3.0, 1e-12);
}

TEST(TrafficTest, OpenFeedbackAmplifiesFlow) {
  // Station 0 feeds back to itself with probability 1/2: lambda = 2 gamma.
  RoutingMatrix p = RoutingMatrix::zero(1);
  p.at(0, 0) = 0.5;
  const std::vector<double> lambda = solve_open_traffic(p, {1.0});
  EXPECT_NEAR(lambda[0], 2.0, 1e-12);
}

TEST(TrafficTest, ClosedCycleVisitRatiosAreUniform) {
  RoutingMatrix p = RoutingMatrix::zero(3);
  p.at(0, 1) = 1.0;
  p.at(1, 2) = 1.0;
  p.at(2, 0) = 1.0;
  const std::vector<double> e = solve_closed_visit_ratios(p, 0);
  EXPECT_NEAR(e[0], 1.0, 1e-12);
  EXPECT_NEAR(e[1], 1.0, 1e-12);
  EXPECT_NEAR(e[2], 1.0, 1e-12);
}

TEST(TrafficTest, ClosedChainFromRoutingBuildsCentralServer) {
  // Central server: CPU (0) -> disk1 (1) w.p. 0.6, disk2 (2) w.p. 0.4;
  // disks return to the CPU.
  RoutingMatrix p = RoutingMatrix::zero(3);
  p.at(0, 1) = 0.6;
  p.at(0, 2) = 0.4;
  p.at(1, 0) = 1.0;
  p.at(2, 0) = 1.0;
  const Chain chain =
      closed_chain_from_routing(p, {0.05, 0.12, 0.2}, 4, 0, "jobs");
  EXPECT_EQ(chain.type, ChainType::kClosed);
  EXPECT_EQ(chain.population, 4);
  ASSERT_EQ(chain.visits.size(), 3u);
  EXPECT_DOUBLE_EQ(chain.visits[0].visit_ratio, 1.0);
  EXPECT_NEAR(chain.visits[1].visit_ratio, 0.6, 1e-12);
  EXPECT_NEAR(chain.visits[2].visit_ratio, 0.4, 1e-12);
  // Demands = visit ratio * service time.
  EXPECT_NEAR(chain.visits[1].demand(), 0.6 * 0.12, 1e-12);
}

TEST(TrafficTest, ClosedChainFromRoutingFeedsSolvers) {
  RoutingMatrix p = RoutingMatrix::zero(2);
  p.at(0, 1) = 1.0;
  p.at(1, 0) = 1.0;
  NetworkModel m;
  m.add_station(fcfs("a"));
  m.add_station(fcfs("b"));
  m.add_chain(closed_chain_from_routing(p, {0.1, 0.2}, 3, 0));
  EXPECT_NO_THROW(m.validate());
  EXPECT_DOUBLE_EQ(m.demand(0, 1), 0.2);
}

TEST(TrafficTest, OpenChainFromRoutingAggregatesEntryPoints) {
  // Two entry points (rates 2 and 3) into a tandem 0 -> 1 -> out, with
  // entry at both stations.
  RoutingMatrix p = RoutingMatrix::zero(2);
  p.at(0, 1) = 1.0;
  const Chain chain = open_chain_from_routing(p, {2.0, 3.0}, {0.1, 0.1});
  EXPECT_EQ(chain.type, ChainType::kOpen);
  EXPECT_DOUBLE_EQ(chain.arrival_rate, 5.0);
  ASSERT_EQ(chain.visits.size(), 2u);
  // Station 0 carries only its own entries (2/5); station 1 carries
  // everything (5/5).
  EXPECT_NEAR(chain.visits[0].visit_ratio, 0.4, 1e-12);
  EXPECT_NEAR(chain.visits[1].visit_ratio, 1.0, 1e-12);
}

TEST(TrafficTest, OpenChainFromRoutingWithFeedbackAmplifies) {
  RoutingMatrix p = RoutingMatrix::zero(1);
  p.at(0, 0) = 0.5;
  const Chain chain = open_chain_from_routing(p, {4.0}, {0.05});
  EXPECT_DOUBLE_EQ(chain.arrival_rate, 4.0);
  // lambda = 8, visit ratio = 2.
  EXPECT_NEAR(chain.visits[0].visit_ratio, 2.0, 1e-12);
}

TEST(TrafficTest, ChainFromRoutingRejectsBadInput) {
  RoutingMatrix p = RoutingMatrix::zero(2);
  p.at(0, 1) = 1.0;
  p.at(1, 0) = 1.0;
  EXPECT_THROW((void)closed_chain_from_routing(p, {0.1}, 1, 0),
               std::invalid_argument);
  EXPECT_THROW((void)open_chain_from_routing(p, {0.0, 0.0}, {0.1, 0.1}),
               std::invalid_argument);
  EXPECT_THROW((void)open_chain_from_routing(p, {-1.0, 2.0}, {0.1, 0.1}),
               std::invalid_argument);
}

TEST(TrafficTest, ClosedBranchingVisitRatios) {
  // Central server: station 0 -> {1 w.p. 0.75, 2 w.p. 0.25}; both return.
  RoutingMatrix p = RoutingMatrix::zero(3);
  p.at(0, 1) = 0.75;
  p.at(0, 2) = 0.25;
  p.at(1, 0) = 1.0;
  p.at(2, 0) = 1.0;
  const std::vector<double> e = solve_closed_visit_ratios(p, 0);
  EXPECT_NEAR(e[0], 1.0, 1e-12);
  EXPECT_NEAR(e[1], 0.75, 1e-12);
  EXPECT_NEAR(e[2], 0.25, 1e-12);
}

}  // namespace
}  // namespace windim::qn
