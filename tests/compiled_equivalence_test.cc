// Equivalence suite for the compile-once/solve-many port: every
// registry solver must reproduce its legacy entry point to 1e-12 —
// throughputs, queue lengths and (where exposed) utilizations — on
//   - every committed fuzz-corpus instance (tests/corpus), and
//   - a broad sweep of verify::gen instances across all families.
// Instances a legacy solver rejects must be rejected by the ported
// solver too (consistent applicability), so trait-driven callers see
// the same domain through either path.
//
// The heuristic-MVA check is the load-bearing one: the native arena
// kernel (solver/heuristic_mva.cc) re-implements the fixed point
// rather than wrapping it, and this suite pins it to the legacy
// arithmetic.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "exact/buzen.h"
#include "exact/convolution.h"
#include "exact/product_form.h"
#include "exact/recal.h"
#include "exact/semiclosed.h"
#include "exact/tree_convolution.h"
#include "mva/approx.h"
#include "mva/bounds.h"
#include "mva/exact_multichain.h"
#include "mva/linearizer.h"
#include "qn/compiled_model.h"
#include "solver/registry.h"
#include "solver/workspace.h"
#include "util/thread_pool.h"
#include "verify/corpus.h"
#include "verify/gen.h"

namespace windim {
namespace {

constexpr double kTol = 1e-12;

void expect_span_near(std::span<const double> got,
                      const std::vector<double>& want, const char* solver,
                      const char* what, const std::string& instance) {
  ASSERT_EQ(got.size(), want.size())
      << solver << " " << what << " size mismatch on " << instance;
  for (std::size_t i = 0; i < want.size(); ++i) {
    const double scale = std::max(1.0, std::fabs(want[i]));
    EXPECT_NEAR(got[i], want[i], kTol * scale)
        << solver << " " << what << "[" << i << "] on " << instance;
  }
}

/// Runs the legacy entry point and the registry solver on the same
/// instance.  If the legacy solver rejects it, the ported solver must
/// reject it too; otherwise `check(solution, legacy_result)` compares.
template <typename LegacyFn, typename CheckFn>
void compare(const char* name, const qn::CompiledModel& compiled,
             const std::vector<int>& population, solver::Workspace& ws,
             const std::string& instance, LegacyFn legacy, CheckFn check) {
  const solver::Solver& s = solver::SolverRegistry::instance().require(name);
  std::optional<decltype(legacy())> ref;
  try {
    ref.emplace(legacy());
  } catch (const std::exception&) {
    EXPECT_THROW((void)s.solve(compiled, population, ws), std::exception)
        << name << " accepted an instance the legacy solver rejects: "
        << instance;
    return;
  }
  solver::Solution sol;
  try {
    sol = s.solve(compiled, population, ws);
  } catch (const std::exception& e) {
    ADD_FAILURE() << name
                  << " rejected an instance the legacy solver accepts: "
                  << instance << " (" << e.what() << ")";
    return;
  }
  check(sol, *ref);
}

void check_instance(const verify::Instance& inst, solver::Workspace& ws) {
  const std::string id = inst.name.empty() ? "<unnamed>" : inst.name;
  const qn::NetworkModel& m = inst.model;

  qn::CompileOptions copt;
  for (const exact::SemiclosedChainSpec& spec : inst.semiclosed) {
    copt.semiclosed_arrival_rate.push_back(spec.arrival_rate);
    copt.semiclosed_min_population.push_back(spec.min_population);
  }
  const qn::CompiledModel compiled = qn::CompiledModel::compile(m, copt);
  const std::vector<int> population(compiled.base_populations().begin(),
                                    compiled.base_populations().end());

  compare(
      "convolution", compiled, population, ws, id,
      [&] { return exact::solve_convolution(m); },
      [&](const solver::Solution& s, const exact::ConvolutionResult& r) {
        expect_span_near(s.chain_throughput, r.chain_throughput,
                         "convolution", "throughput", id);
        expect_span_near(s.mean_queue, r.mean_queue, "convolution", "queue",
                         id);
        expect_span_near(s.mean_time, r.mean_time, "convolution", "time", id);
        expect_span_near(s.station_utilization, r.station_utilization,
                         "convolution", "utilization", id);
      });

  compare(
      "exact-mva", compiled, population, ws, id,
      [&] { return mva::solve_exact_multichain(m); },
      [&](const solver::Solution& s, const mva::MvaSolution& r) {
        expect_span_near(s.chain_throughput, r.chain_throughput, "exact-mva",
                         "throughput", id);
        expect_span_near(s.mean_queue, r.mean_queue, "exact-mva", "queue", id);
      });

  compare(
      "recal", compiled, population, ws, id,
      [&] { return exact::solve_recal(m); },
      [&](const solver::Solution& s, const exact::RecalResult& r) {
        expect_span_near(s.chain_throughput, r.chain_throughput, "recal",
                         "throughput", id);
        expect_span_near(s.mean_queue, r.mean_queue, "recal", "queue", id);
      });

  compare(
      "tree-convolution", compiled, population, ws, id,
      [&] { return exact::solve_tree_convolution(m); },
      [&](const solver::Solution& s, const exact::TreeConvolutionResult& r) {
        expect_span_near(s.chain_throughput, r.chain_throughput,
                         "tree-convolution", "throughput", id);
      });

  compare(
      "product-form", compiled, population, ws, id,
      [&] { return exact::solve_product_form(m); },
      [&](const solver::Solution& s, const exact::ProductFormResult& r) {
        expect_span_near(s.chain_throughput, r.chain_throughput,
                         "product-form", "throughput", id);
        expect_span_near(s.mean_queue, r.mean_queue, "product-form", "queue",
                         id);
      });

  for (const char* name : {"buzen", "buzen-log"}) {
    const bool log_domain = std::string(name) == "buzen-log";
    compare(
        name, compiled, population, ws, id,
        [&] {
          return log_domain ? exact::solve_buzen_log(m)
                            : exact::solve_buzen(m);
        },
        [&](const solver::Solution& s, const exact::BuzenResult& r) {
          ASSERT_EQ(s.chain_throughput.size(), 1u) << name << " on " << id;
          EXPECT_NEAR(s.chain_throughput[0], r.throughput,
                      kTol * std::max(1.0, std::fabs(r.throughput)))
              << name << " throughput on " << id;
          expect_span_near(s.mean_queue, r.mean_number, name, "queue", id);
          expect_span_near(s.station_utilization, r.utilization, name,
                           "utilization", id);
        });
  }

  for (const mva::SigmaPolicy policy :
       {mva::SigmaPolicy::kChanSingleChain, mva::SigmaPolicy::kSchweitzerBard}) {
    const char* name = policy == mva::SigmaPolicy::kChanSingleChain
                           ? "heuristic-mva"
                           : "schweitzer-mva";
    compare(
        name, compiled, population, ws, id,
        [&] {
          mva::ApproxMvaOptions options;
          options.sigma = policy;
          return mva::solve_approx_mva(m, options);
        },
        [&](const solver::Solution& s, const mva::MvaSolution& r) {
          expect_span_near(s.chain_throughput, r.chain_throughput, name,
                           "throughput", id);
          expect_span_near(s.mean_queue, r.mean_queue, name, "queue", id);
          expect_span_near(s.sigma, r.sigma, name, "sigma", id);
          EXPECT_EQ(s.iterations, r.iterations) << name << " on " << id;
          EXPECT_EQ(s.converged, r.converged) << name << " on " << id;
        });
  }

  compare(
      "linearizer", compiled, population, ws, id,
      [&] { return mva::solve_linearizer(m); },
      [&](const solver::Solution& s, const mva::MvaSolution& r) {
        expect_span_near(s.chain_throughput, r.chain_throughput, "linearizer",
                         "throughput", id);
        expect_span_near(s.mean_queue, r.mean_queue, "linearizer", "queue",
                         id);
      });

  compare(
      "bounds", compiled, population, ws, id,
      [&] { return mva::balanced_job_bounds(m); },
      [&](const solver::Solution& s, const mva::ChainBounds& b) {
        ASSERT_EQ(s.chain_throughput.size(), 1u) << "bounds on " << id;
        EXPECT_NEAR(s.chain_throughput[0], b.throughput_upper,
                    kTol * std::max(1.0, std::fabs(b.throughput_upper)))
            << "bounds throughput_upper on " << id;
      });

  if (!inst.semiclosed.empty()) {
    // The registry solver reads arrival rates / lower bounds from the
    // compiled metadata and the population vector as the upper bounds.
    std::vector<int> upper;
    for (const exact::SemiclosedChainSpec& spec : inst.semiclosed) {
      upper.push_back(spec.max_population);
    }
    compare(
        "semiclosed", compiled, upper, ws, id,
        [&] { return exact::solve_semiclosed(m, inst.semiclosed); },
        [&](const solver::Solution& s, const exact::SemiclosedResult& r) {
          expect_span_near(s.chain_throughput, r.carried_throughput,
                           "semiclosed", "carried throughput", id);
          expect_span_near(s.mean_queue, r.mean_queue, "semiclosed", "queue",
                           id);
        });
  }
}

TEST(CompiledEquivalence, CommittedCorpusInstancesMatchLegacySolvers) {
  const std::vector<std::string> files =
      verify::list_corpus_files(WINDIM_TEST_CORPUS_DIR);
  ASSERT_FALSE(files.empty()) << "no corpus at " WINDIM_TEST_CORPUS_DIR;
  solver::Workspace ws;
  for (const std::string& path : files) {
    const verify::CorpusEntry entry = verify::load_corpus_file(path);
    check_instance(entry.instance, ws);
  }
}

/// Continental-scale fixtures: only the MVA sweep solvers run (the
/// exact lattice solvers are hopeless at 1k+ chains), compared
/// bit-for-bit against the legacy scalar sweep — the guarantee that the
/// SoA/hoisted kernel restructuring changed the memory layout and the
/// asymptotics, not one bit of the arithmetic.
void check_large_cyclic(int chains, std::uint64_t seed) {
  verify::GenOptions opt;
  opt.large_chains = chains;
  const verify::Instance inst =
      verify::generate(verify::Family::kLargeCyclic, seed, opt);
  const std::string id = inst.name + "-" + std::to_string(chains);
  const qn::NetworkModel& m = inst.model;
  const qn::CompiledModel compiled = qn::CompiledModel::compile(m);
  ASSERT_EQ(compiled.num_chains(), chains);
  const std::vector<int> population(compiled.base_populations().begin(),
                                    compiled.base_populations().end());
  solver::Workspace ws;
  for (const mva::SigmaPolicy policy :
       {mva::SigmaPolicy::kChanSingleChain,
        mva::SigmaPolicy::kSchweitzerBard}) {
    const char* name = policy == mva::SigmaPolicy::kChanSingleChain
                           ? "heuristic-mva"
                           : "schweitzer-mva";
    compare(
        name, compiled, population, ws, id,
        [&] {
          mva::ApproxMvaOptions options;
          options.sigma = policy;
          return mva::solve_approx_mva(m, options);
        },
        [&](const solver::Solution& s, const mva::MvaSolution& r) {
          EXPECT_TRUE(s.converged) << name << " on " << id;
          EXPECT_EQ(s.iterations, r.iterations) << name << " on " << id;
          EXPECT_EQ(s.converged, r.converged) << name << " on " << id;
          // Bit-for-bit, not near: operation order is part of the
          // kernel's contract with the legacy sweep.
          ASSERT_EQ(s.chain_throughput.size(), r.chain_throughput.size());
          for (std::size_t i = 0; i < r.chain_throughput.size(); ++i) {
            ASSERT_EQ(s.chain_throughput[i], r.chain_throughput[i])
                << name << " throughput[" << i << "] on " << id;
          }
          ASSERT_EQ(s.mean_queue.size(), r.mean_queue.size());
          for (std::size_t i = 0; i < r.mean_queue.size(); ++i) {
            ASSERT_EQ(s.mean_queue[i], r.mean_queue[i])
                << name << " queue[" << i << "] on " << id;
          }
        });
  }
}

TEST(CompiledEquivalence, LargeCyclic1kMatchesLegacySweepBitForBit) {
  check_large_cyclic(1000, 1);
}

TEST(CompiledEquivalence, LargeCyclic10kMatchesLegacySweepBitForBit) {
  check_large_cyclic(10000, 1);
}

TEST(CompiledEquivalence, ChainBlockPoolSweepIsBitIdenticalToSerial) {
  // Serial-replay determinism of the parallel STEP 2 dispatch: any pool
  // size must give EXACTLY the serial results (same blocks, same
  // per-chain arithmetic, disjoint writes).
  verify::GenOptions opt;
  opt.large_chains = 1000;
  const verify::Instance inst =
      verify::generate(verify::Family::kLargeCyclic, 7, opt);
  const qn::CompiledModel compiled = qn::CompiledModel::compile(inst.model);
  const std::vector<int> population(compiled.base_populations().begin(),
                                    compiled.base_populations().end());
  const solver::Solver& s =
      solver::SolverRegistry::instance().require("heuristic-mva");

  solver::Workspace serial_ws;
  const solver::Solution serial = s.solve(compiled, population, serial_ws);

  for (const std::size_t threads : {2u, 5u}) {
    util::ThreadPool pool(threads);
    solver::Workspace pool_ws;
    pool_ws.hints.pool = &pool;
    const solver::Solution parallel = s.solve(compiled, population, pool_ws);
    EXPECT_EQ(parallel.iterations, serial.iterations) << threads;
    EXPECT_EQ(parallel.converged, serial.converged) << threads;
    ASSERT_EQ(parallel.chain_throughput.size(),
              serial.chain_throughput.size());
    for (std::size_t i = 0; i < serial.chain_throughput.size(); ++i) {
      ASSERT_EQ(parallel.chain_throughput[i], serial.chain_throughput[i])
          << "throughput[" << i << "] with " << threads << " threads";
    }
    ASSERT_EQ(parallel.mean_queue.size(), serial.mean_queue.size());
    for (std::size_t i = 0; i < serial.mean_queue.size(); ++i) {
      ASSERT_EQ(parallel.mean_queue[i], serial.mean_queue[i])
          << "queue[" << i << "] with " << threads << " threads";
    }
    ASSERT_EQ(parallel.sigma.size(), serial.sigma.size());
    for (std::size_t i = 0; i < serial.sigma.size(); ++i) {
      ASSERT_EQ(parallel.sigma[i], serial.sigma[i])
          << "sigma[" << i << "] with " << threads << " threads";
    }
  }
}

TEST(CompiledEquivalence, GeneratedInstancesMatchLegacySolvers) {
  // ~30 seeds per family x 7 families: > 200 generated instances, the
  // same generator the fuzz harness uses.  One shared workspace across
  // all of them also exercises the scratch-model cache invalidation
  // (every instance compiles to a fresh CompiledModel::id()).
  solver::Workspace ws;
  int checked = 0;
  for (const verify::Family family : verify::all_families()) {
    for (std::uint64_t seed = 1; seed <= 30; ++seed) {
      const verify::Instance inst = verify::generate(family, seed);
      check_instance(inst, ws);
      ++checked;
    }
  }
  EXPECT_GE(checked, 200);
}

}  // namespace
}  // namespace windim
