// The scenario-matrix determinism pin: the policies x scenarios
// scorecard must be byte-identical whatever the worker count, and
// exactly reproducible from the recorded seed.  This is what makes the
// matrix usable as a regression fixture — a cell that moves is a real
// behavioural change, never scheduling noise.
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "control/matrix.h"
#include "control/registry.h"
#include "control/scenario.h"
#include "net/examples.h"

namespace windim::control {
namespace {

MatrixOptions short_run(int jobs) {
  MatrixOptions options;
  options.sim_time = 40.0;
  options.warmup = 4.0;
  options.seed = 11;
  options.jobs = jobs;
  return options;
}

TEST(ScenarioMatrixTest, ScorecardIsByteIdenticalAcrossJobCounts) {
  const net::Topology topo = net::canada_topology();
  const auto classes = net::two_class_traffic(25.0, 25.0);
  const MatrixResult serial = run_matrix(topo, classes, short_run(1));
  const MatrixResult parallel = run_matrix(topo, classes, short_run(8));
  EXPECT_EQ(render_scorecard(serial), render_scorecard(parallel));
}

TEST(ScenarioMatrixTest, FourClassScorecardIsByteIdenticalAcrossJobCounts) {
  const net::Topology topo = net::canada_topology();
  const auto classes = net::four_class_traffic(6.0, 6.0, 6.0, 12.0);
  MatrixOptions options = short_run(1);
  options.policies = {"static", "aimd", "delay-triggered"};
  options.scenarios = {"stationary", "flash-crowd", "link-failure"};
  const MatrixResult serial = run_matrix(topo, classes, options);
  options.jobs = 8;
  const MatrixResult parallel = run_matrix(topo, classes, options);
  EXPECT_EQ(render_scorecard(serial), render_scorecard(parallel));
}

TEST(ScenarioMatrixTest, ScorecardIsReproducibleFromTheSeed) {
  const net::Topology topo = net::canada_topology();
  const auto classes = net::two_class_traffic(25.0, 25.0);
  const std::string a = render_scorecard(run_matrix(topo, classes,
                                                    short_run(4)));
  const std::string b = render_scorecard(run_matrix(topo, classes,
                                                    short_run(4)));
  EXPECT_EQ(a, b);
  // A different base seed must actually change the cells.
  MatrixOptions reseeded = short_run(4);
  reseeded.seed = 12;
  EXPECT_NE(a, render_scorecard(run_matrix(topo, classes, reseeded)));
}

TEST(ScenarioMatrixTest, DefaultGridCoversEveryPolicyAndScenario) {
  const net::Topology topo = net::canada_topology();
  const auto classes = net::two_class_traffic(25.0, 25.0);
  MatrixOptions options = short_run(0);  // 0 = hardware concurrency
  options.sim_time = 20.0;
  options.warmup = 2.0;
  const MatrixResult r = run_matrix(topo, classes, options);
  EXPECT_EQ(r.policies, policy_names());
  EXPECT_EQ(r.scenarios, scenario_names());
  ASSERT_EQ(r.cells.size(), r.policies.size() * r.scenarios.size());
  // Scenario-major layout, every cell scored and seeded.
  for (std::size_t s = 0; s < r.scenarios.size(); ++s) {
    for (std::size_t p = 0; p < r.policies.size(); ++p) {
      const MatrixCell& cell = r.cells[s * r.policies.size() + p];
      EXPECT_EQ(cell.scenario, r.scenarios[s]);
      EXPECT_EQ(cell.policy, r.policies[p]);
      EXPECT_EQ(cell.seed, cell_seed(options.seed, s, p));
      EXPECT_GT(cell.delivered_rate, 0.0)
          << cell.scenario << "/" << cell.policy;
      EXPECT_GE(cell.fairness, 0.0);
      EXPECT_LE(cell.fairness, 1.0 + 1e-12);
    }
  }
  // The static baseline is the WINDIM optimum of the nominal traffic.
  EXPECT_FALSE(r.static_windows.empty());
  EXPECT_GT(r.static_power, 0.0);
  EXPECT_GT(r.static_delay, 0.0);
}

TEST(ScenarioMatrixTest, CellSeedsAreDistinctAndStable) {
  std::set<std::uint64_t> seen;
  for (std::size_t s = 0; s < 8; ++s) {
    for (std::size_t p = 0; p < 8; ++p) {
      const std::uint64_t seed = cell_seed(1, s, p);
      EXPECT_NE(seed, 0u);
      EXPECT_TRUE(seen.insert(seed).second) << "collision at " << s << ","
                                            << p;
      EXPECT_EQ(seed, cell_seed(1, s, p));
    }
  }
}

TEST(ScenarioMatrixTest, RejectsBadOptionsUpFront) {
  const net::Topology topo = net::canada_topology();
  const auto classes = net::two_class_traffic(25.0, 25.0);
  MatrixOptions bad_time = short_run(1);
  bad_time.sim_time = 0.0;
  EXPECT_THROW((void)run_matrix(topo, classes, bad_time),
               std::invalid_argument);
  MatrixOptions bad_warmup = short_run(1);
  bad_warmup.warmup = bad_warmup.sim_time;
  EXPECT_THROW((void)run_matrix(topo, classes, bad_warmup),
               std::invalid_argument);
  MatrixOptions bad_policy = short_run(1);
  bad_policy.policies = {"bogus"};
  EXPECT_THROW((void)run_matrix(topo, classes, bad_policy),
               std::invalid_argument);
  MatrixOptions bad_scenario = short_run(1);
  bad_scenario.scenarios = {"meteor"};
  EXPECT_THROW((void)run_matrix(topo, classes, bad_scenario),
               std::invalid_argument);
}

TEST(ScenarioMatrixTest, StationaryStaticCellSitsNearTheAnalyticOptimum) {
  // The stationary/static cell is a plain fixed-window simulation of the
  // nominal traffic, so its power must land in the neighbourhood of the
  // analytic optimum the matrix prints as the baseline (the tight
  // envelope lives in sim_vs_exact_test.cc; this is the wiring check
  // that the scenario harness did not perturb the stationary path).
  const net::Topology topo = net::canada_topology();
  const auto classes = net::two_class_traffic(25.0, 25.0);
  MatrixOptions options;
  options.policies = {"static"};
  options.scenarios = {"stationary"};
  options.sim_time = 400.0;
  options.warmup = 40.0;
  options.seed = 3;
  const MatrixResult r = run_matrix(topo, classes, options);
  ASSERT_EQ(r.cells.size(), 1u);
  EXPECT_NEAR(r.cells[0].power, r.static_power, 0.25 * r.static_power);
  EXPECT_NEAR(r.cells[0].mean_delay, r.static_delay, 0.5 * r.static_delay);
}

}  // namespace
}  // namespace windim::control
