// OpenMetrics text exposition (obs/expo.h): name sanitization, label
// escaping, counter/gauge/histogram family layout, cumulative bucket
// monotonicity, the # EOF terminator, byte-determinism of equal
// snapshots — and the MetricsRegistry shard-recycling contract under
// thread churn (spawn/join loops): no count lost and a stable
// exposition across shard reuse.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/expo.h"
#include "obs/metrics.h"

namespace windim {
namespace {

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t nl = text.find('\n', start);
    if (nl == std::string::npos) {
      out.push_back(text.substr(start));
      break;
    }
    out.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return out;
}

TEST(ExpoTest, SanitizeMapsOutsideCharsetToUnderscore) {
  EXPECT_EQ(obs::sanitize_metric_name("windim.serve.requests"),
            "windim_serve_requests");
  EXPECT_EQ(obs::sanitize_metric_name("a-b c"), "a_b_c");
  EXPECT_EQ(obs::sanitize_metric_name("9lives"), "_9lives");
  EXPECT_EQ(obs::sanitize_metric_name("ok_name:ns"), "ok_name:ns");
}

TEST(ExpoTest, EscapeLabelValueHandlesQuotesBackslashesNewlines) {
  EXPECT_EQ(obs::escape_label_value("plain"), "plain");
  EXPECT_EQ(obs::escape_label_value("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::escape_label_value("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::escape_label_value("a\nb"), "a\\nb");
}

TEST(ExpoTest, RendersCountersGaugesHistogramsWithEof) {
  obs::MetricsRegistry reg;
  reg.set_enabled(true);
  reg.counter("windim.jobs").add(42);
  reg.gauge("windim.hwm").record_max(7.5);
  const obs::Histogram h = reg.histogram("windim.lat_us", {10.0, 100.0});
  h.observe(5.0);
  h.observe(50.0);
  h.observe(5000.0);  // overflow

  const std::string text = obs::render_openmetrics(reg.snapshot());
  const std::vector<std::string> lines = lines_of(text);
  ASSERT_FALSE(lines.empty());
  EXPECT_EQ(lines.back(), "# EOF");

  // Counter family: TYPE header + _total sample.
  EXPECT_NE(text.find("# TYPE windim_jobs counter\n"), std::string::npos);
  EXPECT_NE(text.find("windim_jobs_total 42\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE windim_hwm gauge\n"), std::string::npos);
  EXPECT_NE(text.find("windim_hwm 7.5\n"), std::string::npos);

  // Histogram family: every explicit bound as a cumulative le bucket,
  // then +Inf = count, _sum, _count.
  EXPECT_NE(text.find("# TYPE windim_lat_us histogram\n"), std::string::npos);
  EXPECT_NE(text.find("windim_lat_us_bucket{le=\"10\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("windim_lat_us_bucket{le=\"100\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("windim_lat_us_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("windim_lat_us_sum 5055\n"), std::string::npos);
  EXPECT_NE(text.find("windim_lat_us_count 3\n"), std::string::npos);
}

TEST(ExpoTest, BucketCountsAreCumulativeAndMonotone) {
  obs::MetricsRegistry reg;
  reg.set_enabled(true);
  const obs::Histogram h =
      reg.histogram("m", {1.0, 2.0, 4.0, 8.0});
  for (int i = 0; i < 20; ++i) h.observe(static_cast<double>(i % 10));

  const std::string text = obs::render_openmetrics(reg.snapshot());
  std::uint64_t previous = 0;
  int buckets = 0;
  for (const std::string& line : lines_of(text)) {
    if (line.rfind("m_bucket{", 0) != 0) continue;
    const std::uint64_t value =
        std::stoull(line.substr(line.rfind(' ') + 1));
    EXPECT_GE(value, previous) << line;
    previous = value;
    ++buckets;
  }
  EXPECT_EQ(buckets, 5);  // 4 bounds + le="+Inf"
}

TEST(ExpoTest, ExtraGaugesRenderWithLabelsAndSharedTypeHeader) {
  obs::MetricsRegistry reg;
  reg.set_enabled(true);
  const std::vector<obs::ExpoGauge> extra = {
      {"windim.serve.window.rate_10s", {{"op", "evaluate"}}, 2.5},
      {"windim.serve.window.rate_10s", {{"op", "all"}}, 4.0},
      {"windim.serve.window.p99_us_60s", {{"op", "all"}}, 120.0},
  };
  const std::string text = obs::render_openmetrics(reg.snapshot(), extra);
  // One TYPE header for the two consecutive rate_10s rows.
  std::size_t headers = 0;
  for (const std::string& line : lines_of(text)) {
    if (line == "# TYPE windim_serve_window_rate_10s gauge") ++headers;
  }
  EXPECT_EQ(headers, 1u);
  EXPECT_NE(
      text.find("windim_serve_window_rate_10s{op=\"evaluate\"} 2.5\n"),
      std::string::npos);
  EXPECT_NE(text.find("windim_serve_window_rate_10s{op=\"all\"} 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("windim_serve_window_p99_us_60s{op=\"all\"} 120\n"),
            std::string::npos);
}

TEST(ExpoTest, EqualSnapshotsRenderByteIdentical) {
  obs::MetricsRegistry reg;
  reg.set_enabled(true);
  reg.counter("c").add(3);
  reg.histogram("h", {1.0, 2.0}).observe(1.5);
  const std::string a = obs::render_openmetrics(reg.snapshot());
  const std::string b = obs::render_openmetrics(reg.snapshot());
  EXPECT_EQ(a, b);
}

// ------------------------------------------------ shard churn (PR 10)

// Threads that exit release their registry shard to the free list; a
// later thread reuses it.  Across repeated spawn/join rounds no count
// may be lost and the exposition must stay stable (same families, same
// totals) — the daemon's connection threads churn exactly like this.
TEST(ExpoTest, ShardRecyclingUnderThreadChurnLosesNothing) {
  obs::MetricsRegistry reg;
  reg.set_enabled(true);
  const obs::Counter churn = reg.counter("churn.requests");
  const obs::Histogram lat = reg.histogram("churn.lat_us", {10.0, 100.0});

  constexpr int kRounds = 16;
  constexpr int kThreadsPerRound = 8;
  constexpr int kAddsPerThread = 250;
  for (int round = 0; round < kRounds; ++round) {
    std::vector<std::thread> threads;
    threads.reserve(kThreadsPerRound);
    for (int t = 0; t < kThreadsPerRound; ++t) {
      threads.emplace_back([&] {
        for (int i = 0; i < kAddsPerThread; ++i) {
          churn.add();
          lat.observe(50.0);
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }

  constexpr std::uint64_t kExpected =
      static_cast<std::uint64_t>(kRounds) * kThreadsPerRound *
      kAddsPerThread;
  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter_or("churn.requests"), kExpected);
  const obs::HistogramSnapshot* h = snap.histogram("churn.lat_us");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, kExpected);

  // Renderer stability across shard reuse: the exposition of two
  // back-to-back snapshots (no traffic in between) is byte-identical,
  // and the recycled shards did not spawn duplicate families.
  const std::string a = obs::render_openmetrics(snap);
  const std::string b = obs::render_openmetrics(reg.snapshot());
  EXPECT_EQ(a, b);
  std::size_t family_headers = 0;
  for (const std::string& line : lines_of(a)) {
    if (line.rfind("# TYPE churn_requests ", 0) == 0) ++family_headers;
  }
  EXPECT_EQ(family_headers, 1u);
  EXPECT_NE(a.find("churn_requests_total " + std::to_string(kExpected)),
            std::string::npos);
}

}  // namespace
}  // namespace windim
