#include <gtest/gtest.h>

#include <cmath>

#include "net/examples.h"
#include "windim/capacity.h"
#include "windim/windim.h"

namespace windim::core {
namespace {

TEST(CapacityTest, BudgetIsFullyAllocated) {
  const net::Topology topo = net::canada_topology();
  const auto classes = net::two_class_traffic(20.0, 20.0);
  const CapacityAssignment a = assign_capacities_sqrt(topo, classes, 300.0);
  double total = 0.0;
  for (double c : a.capacity_kbps) total += c;
  EXPECT_NEAR(total, 300.0, 1e-9);
  // Every capacity covers its load.
  for (std::size_t c = 0; c < a.capacity_kbps.size(); ++c) {
    EXPECT_GE(a.capacity_kbps[c], a.load_kbps[c] - 1e-12);
  }
}

TEST(CapacityTest, LoadsMatchRoutes) {
  const net::Topology topo = net::canada_topology();
  const auto classes = net::two_class_traffic(20.0, 10.0);
  const CapacityAssignment a = assign_capacities_sqrt(topo, classes, 300.0);
  // Shared channels (ch2, ch3, ch4 = indices 1..3) carry both classes:
  // (20 + 10) msgs/s * 1 kbit = 30 kbit/s.
  for (int c : {1, 2, 3}) {
    EXPECT_NEAR(a.load_kbps[static_cast<std::size_t>(c)], 30.0, 1e-12);
  }
  // ch5 (index 4) only class 1; ch1 (index 0) only class 2.
  EXPECT_NEAR(a.load_kbps[4], 20.0, 1e-12);
  EXPECT_NEAR(a.load_kbps[0], 10.0, 1e-12);
  // Unused shortcuts get zero load.
  EXPECT_DOUBLE_EQ(a.load_kbps[5], 0.0);
  EXPECT_DOUBLE_EQ(a.load_kbps[6], 0.0);
}

TEST(CapacityTest, SqrtBeatsProportionalOnDelay) {
  // Kleinrock's optimality: the square-root rule minimizes the mean
  // delay; the equal-utilization rule cannot beat it.
  const net::Topology topo = net::canada_topology();
  const auto classes = net::two_class_traffic(25.0, 10.0);
  const CapacityAssignment sqrt_assign =
      assign_capacities_sqrt(topo, classes, 250.0);
  const CapacityAssignment prop_assign =
      assign_capacities_proportional(topo, classes, 250.0);
  EXPECT_LE(sqrt_assign.mean_delay, prop_assign.mean_delay + 1e-12);
  EXPECT_GT(prop_assign.mean_delay, 0.0);
}

TEST(CapacityTest, EqualLoadsMakeBothRulesAgree) {
  // With identical loads on all used channels the sqrt and proportional
  // splits coincide.
  net::Topology topo;
  topo.add_node("a");
  topo.add_node("b");
  topo.add_node("c");
  topo.add_channel("a", "b", 1.0);
  topo.add_channel("b", "c", 1.0);
  net::TrafficClass tc;
  tc.name = "f";
  tc.path = {"a", "b", "c"};
  tc.arrival_rate = 10.0;
  const CapacityAssignment s =
      assign_capacities_sqrt(topo, {tc}, 100.0);
  const CapacityAssignment p =
      assign_capacities_proportional(topo, {tc}, 100.0);
  for (std::size_t c = 0; c < s.capacity_kbps.size(); ++c) {
    EXPECT_NEAR(s.capacity_kbps[c], p.capacity_kbps[c], 1e-9);
  }
  EXPECT_NEAR(s.mean_delay, p.mean_delay, 1e-12);
}

TEST(CapacityTest, WithCapacitiesRebuildTopology) {
  const net::Topology topo = net::canada_topology();
  const auto classes = net::two_class_traffic(20.0, 20.0);
  const CapacityAssignment a = assign_capacities_sqrt(topo, classes, 400.0);
  const net::Topology upgraded = with_capacities(topo, a.capacity_kbps);
  // Unused channels (zero capacity) are dropped; 5 remain.
  EXPECT_EQ(upgraded.num_nodes(), 6);
  EXPECT_EQ(upgraded.num_channels(), 5);
  // The upgraded network still routes both classes and can be
  // dimensioned.
  const WindowProblem problem(upgraded, classes);
  const DimensionResult r = dimension_windows(problem);
  EXPECT_GT(r.evaluation.power, 0.0);
}

TEST(CapacityTest, MoreBudgetMoreWindimPower) {
  const net::Topology topo = net::canada_topology();
  const auto classes = net::two_class_traffic(25.0, 25.0);
  double previous_power = 0.0;
  for (double budget : {250.0, 350.0, 500.0}) {
    const CapacityAssignment a =
        assign_capacities_sqrt(topo, classes, budget);
    const WindowProblem problem(with_capacities(topo, a.capacity_kbps),
                                classes);
    const DimensionResult r = dimension_windows(problem);
    EXPECT_GT(r.evaluation.power, previous_power);
    previous_power = r.evaluation.power;
  }
}

TEST(CapacityTest, RejectsInsufficientBudget) {
  const net::Topology topo = net::canada_topology();
  const auto classes = net::two_class_traffic(20.0, 20.0);
  // Carried load = 2 * 4 hops * 20 kbit/s = 160 kbit/s.
  EXPECT_THROW((void)assign_capacities_sqrt(topo, classes, 100.0),
               std::invalid_argument);
  EXPECT_THROW((void)assign_capacities_proportional(topo, classes, 160.0),
               std::invalid_argument);
}

TEST(CapacityTest, RejectsEmptyClasses) {
  const net::Topology topo = net::canada_topology();
  EXPECT_THROW((void)assign_capacities_sqrt(topo, {}, 100.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace windim::core
