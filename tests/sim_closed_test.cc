#include <gtest/gtest.h>

#include "exact/convolution.h"
#include "mva/single_chain.h"
#include "sim/closed_sim.h"

namespace windim::sim {
namespace {

qn::Station fcfs(const std::string& name) {
  qn::Station s;
  s.name = name;
  s.discipline = qn::Discipline::kFcfs;
  return s;
}

TEST(ClosedSimTest, SingleChainMatchesExactMva) {
  qn::CyclicNetwork net;
  net.stations = {fcfs("a"), fcfs("b"), fcfs("c")};
  net.chains = {{"chain", {0, 1, 2}, {0.05, 0.12, 0.08}, 5}};
  ClosedSimOptions options;
  options.sim_time = 4000.0;
  options.warmup = 400.0;
  const ClosedSimResult sim = simulate_closed(net, options);

  const mva::SingleChainResult exact =
      mva::solve_single_chain(net.to_model());
  EXPECT_NEAR(sim.chain_throughput[0], exact.throughput[5],
              0.03 * exact.throughput[5]);
  for (int n = 0; n < 3; ++n) {
    EXPECT_NEAR(sim.queue_length(n, 0),
                exact.mean_number[5][static_cast<std::size_t>(n)], 0.15)
        << "station " << n;
  }
}

TEST(ClosedSimTest, TwoChainsMatchConvolution) {
  qn::CyclicNetwork net;
  net.stations = {fcfs("a"), fcfs("shared"), fcfs("b")};
  net.chains = {{"c1", {0, 1}, {0.08, 0.05}, 3},
                {"c2", {1, 2}, {0.05, 0.11}, 4}};
  ClosedSimOptions options;
  options.sim_time = 4000.0;
  options.warmup = 400.0;
  options.seed = 7;
  const ClosedSimResult sim = simulate_closed(net, options);
  const exact::ConvolutionResult conv =
      exact::solve_convolution(net.to_model());
  for (int r = 0; r < 2; ++r) {
    EXPECT_NEAR(sim.chain_throughput[static_cast<std::size_t>(r)],
                conv.chain_throughput[static_cast<std::size_t>(r)],
                0.03 * conv.chain_throughput[static_cast<std::size_t>(r)]);
  }
  for (int n = 0; n < 3; ++n) {
    for (int r = 0; r < 2; ++r) {
      EXPECT_NEAR(sim.queue_length(n, r), conv.queue_length(n, r), 0.15);
    }
  }
}

TEST(ClosedSimTest, QueueLengthsSumToPopulation) {
  qn::CyclicNetwork net;
  net.stations = {fcfs("a"), fcfs("b")};
  net.chains = {{"c", {0, 1}, {0.1, 0.2}, 6}};
  const ClosedSimResult sim = simulate_closed(net);
  EXPECT_NEAR(sim.queue_length(0, 0) + sim.queue_length(1, 0), 6.0, 1e-6);
}

TEST(ClosedSimTest, LittleLawHoldsOnMeasuredQuantities) {
  qn::CyclicNetwork net;
  net.stations = {fcfs("a"), fcfs("b")};
  net.chains = {{"c", {0, 1}, {0.07, 0.15}, 4}};
  ClosedSimOptions options;
  options.sim_time = 3000.0;
  const ClosedSimResult sim = simulate_closed(net, options);
  // lambda * cycle_time == population (Little for the whole cycle).
  EXPECT_NEAR(sim.chain_throughput[0] * sim.mean_cycle_time[0], 4.0, 0.1);
}

TEST(ClosedSimTest, IsStationSupported) {
  qn::CyclicNetwork net;
  net.stations = {fcfs("a"), fcfs("think")};
  net.stations[1].discipline = qn::Discipline::kInfiniteServer;
  net.chains = {{"c", {0, 1}, {0.05, 1.0}, 8}};
  ClosedSimOptions options;
  options.sim_time = 3000.0;
  const ClosedSimResult sim = simulate_closed(net, options);
  const exact::ConvolutionResult conv =
      exact::solve_convolution(net.to_model());
  EXPECT_NEAR(sim.chain_throughput[0], conv.chain_throughput[0],
              0.03 * conv.chain_throughput[0]);
}

TEST(ClosedSimTest, DeterministicGivenSeed) {
  qn::CyclicNetwork net;
  net.stations = {fcfs("a"), fcfs("b")};
  net.chains = {{"c", {0, 1}, {0.1, 0.2}, 3}};
  ClosedSimOptions options;
  options.sim_time = 100.0;
  options.seed = 99;
  const ClosedSimResult a = simulate_closed(net, options);
  const ClosedSimResult b = simulate_closed(net, options);
  EXPECT_DOUBLE_EQ(a.chain_throughput[0], b.chain_throughput[0]);
  EXPECT_DOUBLE_EQ(a.queue_length(0, 0), b.queue_length(0, 0));
}

TEST(ClosedSimTest, RejectsQueueDependentStations) {
  qn::CyclicNetwork net;
  net.stations = {fcfs("a")};
  net.stations[0].rate_multipliers = {1.0, 2.0};
  net.chains = {{"c", {0}, {0.1}, 1}};
  EXPECT_THROW((void)simulate_closed(net), qn::ModelError);
}

}  // namespace
}  // namespace windim::sim
