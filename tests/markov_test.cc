#include <gtest/gtest.h>

#include <cmath>

#include "markov/closed_ctmc.h"
#include "markov/ctmc.h"

namespace windim::markov {
namespace {

// ----------------------------------------------------------------- raw CTMC

TEST(CtmcTest, TwoStateChainClosedForm) {
  // 0 -> 1 at rate a, 1 -> 0 at rate b: pi = (b, a) / (a + b).
  Ctmc c(2);
  c.add_rate(0, 1, 3.0);
  c.add_rate(1, 0, 1.0);
  const CtmcSolution sol = c.stationary();
  ASSERT_TRUE(sol.converged);
  EXPECT_NEAR(sol.pi[0], 0.25, 1e-9);
  EXPECT_NEAR(sol.pi[1], 0.75, 1e-9);
}

TEST(CtmcTest, MM1KBirthDeathMatchesClosedForm) {
  // M/M/1/K with lambda = 2, mu = 3, K = 5: pi_k ~ rho^k.
  const double lambda = 2.0, mu = 3.0;
  const int k_max = 5;
  Ctmc c(static_cast<std::size_t>(k_max) + 1);
  for (int k = 0; k < k_max; ++k) {
    c.add_rate(static_cast<std::size_t>(k), static_cast<std::size_t>(k) + 1,
               lambda);
    c.add_rate(static_cast<std::size_t>(k) + 1, static_cast<std::size_t>(k),
               mu);
  }
  const CtmcSolution sol = c.stationary();
  ASSERT_TRUE(sol.converged);
  const double rho = lambda / mu;
  double norm = 0.0;
  for (int k = 0; k <= k_max; ++k) norm += std::pow(rho, k);
  for (int k = 0; k <= k_max; ++k) {
    EXPECT_NEAR(sol.pi[static_cast<std::size_t>(k)],
                std::pow(rho, k) / norm, 1e-9)
        << "state " << k;
  }
}

TEST(CtmcTest, ParallelRatesAccumulate) {
  Ctmc c(2);
  c.add_rate(0, 1, 1.0);
  c.add_rate(0, 1, 2.0);  // total 3.0
  c.add_rate(1, 0, 1.0);
  const CtmcSolution sol = c.stationary();
  EXPECT_NEAR(sol.pi[0], 0.25, 1e-9);
}

TEST(CtmcTest, RejectsBadRates) {
  Ctmc c(2);
  EXPECT_THROW(c.add_rate(0, 0, 1.0), std::invalid_argument);
  EXPECT_THROW(c.add_rate(0, 1, 0.0), std::invalid_argument);
  EXPECT_THROW(c.add_rate(0, 5, 1.0), std::invalid_argument);
}

TEST(CtmcTest, AbsorbingStateIsAnError) {
  Ctmc c(2);
  c.add_rate(0, 1, 1.0);
  EXPECT_THROW((void)c.stationary(), std::runtime_error);
}

// --------------------------------------------------------- closed-network CTMC

qn::Station fcfs(const std::string& name) {
  qn::Station s;
  s.name = name;
  s.discipline = qn::Discipline::kFcfs;
  return s;
}

TEST(ClosedCtmcTest, TwoStationCycleMatchesGordonNewell) {
  // Single chain, 2 stations, demands x0, x1, population K: the
  // stationary count at station 1 is p(k) ~ (x1/x0)^k, and the
  // throughput is G(K-1)/G(K).
  const double x0 = 0.1, x1 = 0.25;
  const int population = 4;
  qn::CyclicNetwork net;
  net.stations = {fcfs("a"), fcfs("b")};
  net.chains = {{"c", {0, 1}, {x0, x1}, population}};
  const ClosedCtmcResult result = solve_closed_ctmc(net);
  ASSERT_TRUE(result.converged);
  EXPECT_EQ(result.num_states, 5u);

  // Closed-form Gordon-Newell normalization constants.
  auto g = [&](int k) {
    double sum = 0.0;
    for (int j = 0; j <= k; ++j) {
      sum += std::pow(x0, j) * std::pow(x1, k - j);
    }
    return sum;
  };
  EXPECT_NEAR(result.throughput[0], g(population - 1) / g(population), 1e-8);

  double expected_n1 = 0.0;
  for (int j = 0; j <= population; ++j) {
    expected_n1 += j * std::pow(x1, j) *
                   std::pow(x0, population - j) / g(population);
  }
  EXPECT_NEAR(result.queue_length(1, 0), expected_n1, 1e-8);
}

TEST(ClosedCtmcTest, QueueLengthsSumToPopulation) {
  qn::CyclicNetwork net;
  net.stations = {fcfs("a"), fcfs("b"), fcfs("c")};
  net.chains = {{"c1", {0, 1}, {0.1, 0.3}, 3},
                {"c2", {1, 2}, {0.3, 0.2}, 2}};
  const ClosedCtmcResult result = solve_closed_ctmc(net);
  ASSERT_TRUE(result.converged);
  for (int r = 0; r < 2; ++r) {
    double total = 0.0;
    for (int n = 0; n < 3; ++n) total += result.queue_length(n, r);
    EXPECT_NEAR(total, net.chains[static_cast<std::size_t>(r)].population,
                1e-8);
  }
}

TEST(ClosedCtmcTest, LittleHoldsPerChain) {
  qn::CyclicNetwork net;
  net.stations = {fcfs("a"), fcfs("b")};
  net.chains = {{"c1", {0, 1}, {0.2, 0.1}, 3}};
  const ClosedCtmcResult r = solve_closed_ctmc(net);
  // N = lambda * cycle_time and N sums to the population, so
  // lambda * sum_t == population; verify via queue lengths.
  double total = r.queue_length(0, 0) + r.queue_length(1, 0);
  EXPECT_NEAR(total, 3.0, 1e-8);
  EXPECT_GT(r.throughput[0], 0.0);
}

TEST(ClosedCtmcTest, IsStationReducesQueueing) {
  // Same demands; replacing the second station by a delay server must
  // strictly increase throughput (no queueing there).
  qn::CyclicNetwork fcfs_net;
  fcfs_net.stations = {fcfs("a"), fcfs("b")};
  fcfs_net.chains = {{"c", {0, 1}, {0.1, 0.1}, 4}};
  qn::CyclicNetwork is_net = fcfs_net;
  is_net.stations[1].discipline = qn::Discipline::kInfiniteServer;
  const double thr_fcfs = solve_closed_ctmc(fcfs_net).throughput[0];
  const double thr_is = solve_closed_ctmc(is_net).throughput[0];
  EXPECT_GT(thr_is, thr_fcfs);
}

TEST(ClosedCtmcTest, StateSpaceLimitEnforced) {
  qn::CyclicNetwork net;
  net.stations = {fcfs("a"), fcfs("b")};
  net.chains = {{"c", {0, 1}, {0.1, 0.1}, 50}};
  EXPECT_THROW(solve_closed_ctmc(net, /*max_states=*/10),
               std::runtime_error);
}

TEST(ClosedCtmcTest, ZeroPopulationChainIsInert) {
  qn::CyclicNetwork net;
  net.stations = {fcfs("a"), fcfs("b")};
  net.chains = {{"busy", {0, 1}, {0.1, 0.2}, 2},
                {"idle", {0, 1}, {0.1, 0.2}, 0}};
  const ClosedCtmcResult r = solve_closed_ctmc(net);
  EXPECT_NEAR(r.throughput[1], 0.0, 1e-12);
  EXPECT_NEAR(r.queue_length(0, 1) + r.queue_length(1, 1), 0.0, 1e-12);
  EXPECT_GT(r.throughput[0], 0.0);
}

}  // namespace
}  // namespace windim::markov
