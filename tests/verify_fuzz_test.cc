// Tests for the fuzz campaign driver: determinism across --jobs,
// corpus persistence, and replay xfail semantics.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "verify/corpus.h"
#include "verify/fuzz.h"

namespace windim::verify {
namespace {

FuzzOptions small_campaign() {
  FuzzOptions options;
  options.seeds = 4;
  options.base_seed = 100;
  // The CTMC and shrinking are exercised elsewhere; keep this quick.
  options.oracle.with_ctmc = false;
  options.shrink_failures = false;
  return options;
}

TEST(VerifyFuzz, ReportIsIdenticalForSerialAndParallelRuns) {
  FuzzOptions serial = small_campaign();
  serial.jobs = 1;
  FuzzOptions parallel = small_campaign();
  parallel.jobs = 4;
  const FuzzReport a = run_fuzz(serial);
  const FuzzReport b = run_fuzz(parallel);
  EXPECT_EQ(a.instances_run, b.instances_run);
  // Byte-identical modulo wall-clock timing.
  EXPECT_EQ(to_json(a, /*include_timing=*/false),
            to_json(b, /*include_timing=*/false));
}

TEST(VerifyFuzz, CountsEveryRequestedInstance) {
  FuzzOptions options = small_campaign();
  options.families = {Family::kFcfsClosed, Family::kDisciplines};
  const FuzzReport report = run_fuzz(options);
  EXPECT_EQ(report.instances_run, 8);  // 2 families x 4 seeds
  EXPECT_EQ(report.instances_skipped, 0);
  EXPECT_FALSE(report.time_budget_exhausted);
  EXPECT_GT(report.heuristic.samples, 0);
}

TEST(VerifyFuzz, ForcedFailureIsShrunkAndPersistedToCorpus) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "fuzz_corpus").string();
  std::filesystem::remove_all(dir);
  FuzzOptions options = small_campaign();
  options.families = {Family::kFcfsClosed};
  options.seeds = 1;
  options.base_seed = 11;
  options.shrink_failures = true;
  options.corpus_dir = dir;
  options.oracle.heuristic_envelope = -1.0;  // force a failure
  const FuzzReport report = run_fuzz(options);
  ASSERT_FALSE(report.ok());
  ASSERT_EQ(report.failures.size(), 1u);
  const FuzzFailure& f = report.failures.front();
  EXPECT_EQ(f.oracle, "heuristic-envelope");
  ASSERT_FALSE(f.corpus_file.empty());
  // The persisted entry replays: same instance, xfail annotation set.
  const CorpusEntry entry = load_corpus_file(f.corpus_file);
  EXPECT_EQ(entry.expect, "heuristic-envelope");
  EXPECT_EQ(entry.instance.family, Family::kFcfsClosed);
  std::filesystem::remove_all(dir);
}

TEST(VerifyFuzz, ReplayHonorsXfailAnnotations) {
  CorpusEntry entry;
  entry.instance = generate(Family::kFcfsClosed, 11);
  entry.expect = "heuristic-envelope";
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "replay_corpus")
          .string();
  std::filesystem::create_directories(dir);
  const std::string path =
      (std::filesystem::path(dir) / "entry.corpus").string();
  save_corpus_file(path, entry);

  // With the envelope forced impossible the xfail fires as annotated:
  // the replay is clean and records one expected failure.
  FuzzOptions expecting = small_campaign();
  expecting.oracle.heuristic_envelope = -1.0;
  const FuzzReport xfail = replay_corpus({path}, expecting);
  EXPECT_TRUE(xfail.ok());
  EXPECT_EQ(xfail.expected_failures, 1);
  EXPECT_EQ(xfail.unexpected_passes, 0);

  // Under the normal envelope the annotated oracle passes: the entry
  // is stale and the replay flags it (without failing).
  const FuzzReport stale = replay_corpus({path}, small_campaign());
  EXPECT_TRUE(stale.ok());
  EXPECT_EQ(stale.expected_failures, 0);
  EXPECT_EQ(stale.unexpected_passes, 1);

  // With no annotation the same forced failure is a real failure.
  entry.expect.clear();
  save_corpus_file(path, entry);
  const FuzzReport plain = replay_corpus({path}, expecting);
  EXPECT_FALSE(plain.ok());
  std::filesystem::remove_all(dir);
}

TEST(VerifyFuzz, ReplayIsDeterministicAcrossJobs) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "replay_jobs").string();
  std::filesystem::create_directories(dir);
  std::vector<std::string> files;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    CorpusEntry entry;
    entry.instance = generate(Family::kDisciplines, seed);
    const std::string path =
        (std::filesystem::path(dir) /
         ("d" + std::to_string(seed) + ".corpus"))
            .string();
    save_corpus_file(path, entry);
    files.push_back(path);
  }
  FuzzOptions serial = small_campaign();
  serial.jobs = 1;
  FuzzOptions parallel = small_campaign();
  parallel.jobs = 4;
  EXPECT_EQ(to_json(replay_corpus(files, serial), false),
            to_json(replay_corpus(files, parallel), false));
  std::filesystem::remove_all(dir);
}

TEST(VerifyFuzz, TimeBudgetSkipsInsteadOfFailing) {
  FuzzOptions options = small_campaign();
  options.seeds = 50;
  options.time_budget_seconds = 1e-9;  // expires immediately
  const FuzzReport report = run_fuzz(options);
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.time_budget_exhausted);
  EXPECT_GT(report.instances_skipped, 0);
}

}  // namespace
}  // namespace windim::verify
