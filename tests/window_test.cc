// Sliding-window metrics (obs/window.h): rotation and decay of the
// per-tick counter ring, windowed histogram merges under a manual
// clock, and the documented bucket-interpolation error bound of
// histogram_quantile — including its behavior at the 60 s saturation
// bound of the PR 6 default latency grid.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <functional>
#include <vector>

#include "obs/metrics.h"
#include "obs/window.h"
#include "util/thread_pool.h"

namespace windim {
namespace {

// ------------------------------------------------------------- counter

TEST(WindowCounterTest, RatesDecayAsTheClockAdvances) {
  obs::ManualWindowClock clock;
  obs::WindowCounter counter(&clock);

  for (int i = 0; i < 50; ++i) counter.add();
  // Same tick: all 50 events are inside every window.
  EXPECT_EQ(counter.sum_window(10), 50u);
  EXPECT_EQ(counter.sum_window(60), 50u);
  EXPECT_DOUBLE_EQ(counter.rate_per_sec(10), 5.0);

  clock.advance_seconds(5);
  counter.add(10);
  EXPECT_EQ(counter.sum_window(10), 60u);
  // A 5-tick window no longer covers the first burst.
  EXPECT_EQ(counter.sum_window(5), 10u);

  // 20 s later the first burst fell out of the 10 s window but is still
  // inside the 60 s one.
  clock.advance_seconds(20);
  EXPECT_EQ(counter.sum_window(10), 0u);
  EXPECT_EQ(counter.sum_window(60), 60u);
  EXPECT_DOUBLE_EQ(counter.rate_per_sec(60), 1.0);

  // Past the ring horizon everything decays to zero; the cumulative
  // total never does.
  clock.advance_seconds(120);
  EXPECT_EQ(counter.sum_window(60), 0u);
  EXPECT_EQ(counter.total(), 60u);
}

TEST(WindowCounterTest, SurvivesClockJumpsFarBeyondTheHorizon) {
  obs::ManualWindowClock clock;
  obs::WindowCounter counter(&clock, 1'000'000, 8);
  counter.add(3);
  // A jump of ~31 years of ticks must not iterate per stale tick.
  clock.set_us(1'000'000'000ull * 1'000'000ull);
  counter.add(4);
  EXPECT_EQ(counter.sum_window(8), 4u);
  EXPECT_EQ(counter.total(), 7u);
}

TEST(WindowCounterTest, ConcurrentAddsAreLossFree) {
  obs::ManualWindowClock clock;
  obs::WindowCounter counter(&clock);
  util::ThreadPool pool(4);
  std::vector<std::function<void()>> jobs;
  for (int i = 0; i < 64; ++i) {
    jobs.push_back([&] {
      for (int k = 0; k < 100; ++k) counter.add();
    });
  }
  pool.run_batch(std::move(jobs));
  EXPECT_EQ(counter.total(), 6400u);
  EXPECT_EQ(counter.sum_window(60), 6400u);
}

// ----------------------------------------------------------- histogram

TEST(WindowHistogramTest, MergesOnlyLiveSlicesInTheWindow) {
  obs::ManualWindowClock clock;
  obs::WindowHistogram hist(&clock, {10.0, 100.0, 1000.0});

  hist.observe(5.0);
  hist.observe(50.0);
  clock.advance_seconds(30);
  hist.observe(500.0);

  obs::HistogramSnapshot h60 = hist.merged(60);
  EXPECT_EQ(h60.count, 3u);
  EXPECT_DOUBLE_EQ(h60.sum, 555.0);
  EXPECT_DOUBLE_EQ(h60.max_observed, 500.0);

  // The 10 s window only sees the last observation.
  obs::HistogramSnapshot h10 = hist.merged(10);
  EXPECT_EQ(h10.count, 1u);
  ASSERT_EQ(h10.counts.size(), 4u);
  EXPECT_EQ(h10.counts[2], 1u);

  // Decay: once the window slides past every observation the merge is
  // empty and the quantile is 0 by contract.
  clock.advance_seconds(120);
  EXPECT_EQ(hist.merged(60).count, 0u);
  EXPECT_DOUBLE_EQ(hist.quantile(0.99, 60), 0.0);
  EXPECT_EQ(hist.total(), 3u);
}

TEST(WindowHistogramTest, DefaultBoundsAreTheSharedLatencyGrid) {
  obs::ManualWindowClock clock;
  obs::WindowHistogram hist(&clock);
  EXPECT_EQ(hist.bounds(), obs::MetricsRegistry::default_latency_bounds_us());
}

TEST(WindowHistogramTest, SliceReuseAfterHorizonDoesNotResurrectCounts) {
  obs::ManualWindowClock clock;
  obs::WindowHistogram hist(&clock, {10.0, 100.0}, 1'000'000, 4);
  hist.observe(5.0);
  // Land exactly on the same ring slot one full revolution later: the
  // stale slice must be zeroed, not merged.
  clock.advance_seconds(4);
  hist.observe(50.0);
  obs::HistogramSnapshot h = hist.merged(4);
  EXPECT_EQ(h.count, 1u);
  EXPECT_DOUBLE_EQ(h.sum, 50.0);
}

// ------------------------------------------------- quantile error bound

TEST(HistogramQuantileTest, InterpolatesInsideTheRankBucket) {
  obs::HistogramSnapshot h;
  h.bounds = {10.0, 20.0, 40.0};
  h.counts = {10, 10, 10, 0};  // + overflow
  h.count = 30;
  // p50 -> rank 15, second bucket (10, 20], 5 of its 10 needed.
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(h, 0.5), 15.0);
  // p0 clamps to rank 1 -> first bucket, lower edge 0.
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(h, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(h, 1.0), 40.0);
}

// The documented bound: the estimate lies in the same bucket (lo, hi]
// as the true quantile, so |estimate - true| < hi - lo and
// estimate / true <= hi / lo.  Verified empirically over adversarial
// in-bucket placements on the default grid.
TEST(HistogramQuantileTest, ErrorBoundedByBucketWidthOnTheDefaultGrid) {
  const std::vector<double> bounds =
      obs::MetricsRegistry::default_latency_bounds_us();
  obs::ManualWindowClock clock;
  obs::WindowHistogram hist(&clock, bounds);

  // Adversarial placement: every observation hugs the TOP of its
  // bucket, maximizing the gap to the interpolated estimate.
  std::vector<double> values;
  for (const double b : bounds) values.push_back(b);
  for (const double v : values) hist.observe(v);

  for (const double q : {0.5, 0.9, 0.99}) {
    const double est = hist.quantile(q, 60);
    // True quantile with the same rank convention, from the sorted
    // sample.
    std::uint64_t rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(values.size())));
    if (rank == 0) rank = 1;
    const double truth = values[rank - 1];
    // Same-bucket guarantee: estimate in (lo, hi] where truth == hi.
    std::size_t b = 0;
    while (bounds[b] < truth) ++b;
    const double lo = b == 0 ? 0.0 : bounds[b - 1];
    EXPECT_GT(est, lo) << "q=" << q;
    EXPECT_LE(est, bounds[b]) << "q=" << q;
    EXPECT_LT(std::abs(est - truth), bounds[b] - lo) << "q=" << q;
  }
}

// At the 60 s saturation bound (the (2e7, 6e7] us bucket PR 6 added):
// worst-case absolute error < 40 s, worst-case ratio < 3x, and beyond
// saturation the estimate clamps to the 6e7 top bound.
TEST(HistogramQuantileTest, SaturationBucketBoundAndOverflowClamp) {
  const std::vector<double> bounds =
      obs::MetricsRegistry::default_latency_bounds_us();
  ASSERT_DOUBLE_EQ(bounds.back(), 6e7);
  ASSERT_DOUBLE_EQ(bounds[bounds.size() - 2], 2e7);

  obs::HistogramSnapshot h;
  h.bounds = bounds;
  h.counts.assign(bounds.size() + 1, 0);
  // All mass at the top of the saturation bucket (true p99 = 6e7).
  h.counts[bounds.size() - 1] = 100;
  h.count = 100;
  const double est = obs::histogram_quantile(h, 0.99);
  EXPECT_GT(est, 2e7);
  EXPECT_LE(est, 6e7);
  EXPECT_LT(6e7 - est, 4e7);      // absolute error < 40 s
  EXPECT_LT(6e7 / est, 3.0);      // ratio bound: hi / lo = 3
  // Relative error of the estimate: < 2x (|est - true| / true).
  EXPECT_LT((6e7 - est) / 6e7, 2.0 / 3.0);

  // Rank in the overflow bucket: clamp to the top bound, flagged by a
  // nonzero overflow count.
  obs::HistogramSnapshot over;
  over.bounds = bounds;
  over.counts.assign(bounds.size() + 1, 0);
  over.counts[bounds.size()] = 10;  // every observation beyond 60 s
  over.count = 10;
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(over, 0.99), 6e7);
  EXPECT_EQ(over.overflow(), 10u);
}

TEST(HistogramQuantileTest, EmptySnapshotIsZero) {
  obs::HistogramSnapshot h;
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(h, 0.99), 0.0);
}

// ------------------------------------------------------ stepping clock

TEST(SteppingWindowClockTest, AdvancesOneStepPerRead) {
  obs::SteppingWindowClock clock(250);
  EXPECT_EQ(clock.now_us(), 250u);
  EXPECT_EQ(clock.now_us(), 500u);
  EXPECT_EQ(clock.now_us(), 750u);
}

}  // namespace
}  // namespace windim
