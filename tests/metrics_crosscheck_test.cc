// Accounting crosschecks: run dimension_windows with the global metrics
// registry enabled and assert the engine's bookkeeping is internally
// consistent — evaluations == cache misses, hits + misses == probes
// (modulo budget-exhausted probes, reported separately), budget
// consumed == misses — on two fixtures.  These invariants only hold
// because EvalCache classifies probes atomically with the shard insert;
// the old split lookup()/reserve() API double-counted under races.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/examples.h"
#include "obs/metrics.h"
#include "windim/dimension.h"
#include "windim/problem.h"

namespace windim {
namespace {

class MetricsCrosscheckTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::MetricsRegistry::global().reset();
    obs::MetricsRegistry::global().set_enabled(true);
  }
  void TearDown() override {
    obs::MetricsRegistry::global().set_enabled(false);
    obs::MetricsRegistry::global().reset();
  }
};

void expect_consistent_accounting(const core::DimensionResult& result,
                                  const obs::MetricsSnapshot& snap) {
  const std::uint64_t probes = snap.counter_or("search.probes");
  const std::uint64_t hits = snap.counter_or("search.cache_hits");
  const std::uint64_t misses = snap.counter_or("search.cache_misses");
  const std::uint64_t evaluations = snap.counter_or("search.evaluations");
  const std::uint64_t budget = snap.counter_or("search.budget_consumed");
  const std::uint64_t exhausted =
      snap.counter_or("search.budget_exhausted_probes");

  // The tentpole invariants.
  EXPECT_EQ(evaluations, misses);
  EXPECT_EQ(hits + misses + exhausted, probes);
  EXPECT_EQ(budget, misses);

  // Engine-level counters agree with the registry's view.
  EXPECT_EQ(result.objective_evaluations, misses);
  EXPECT_EQ(result.cache_hits, hits);
  EXPECT_EQ(snap.counter_or("search.base_points"),
            result.base_points.size());
  EXPECT_EQ(snap.counter_or("search.runs"), 1u);
  EXPECT_GT(probes, 0u);

  // The per-solver profiling hook saw every fresh evaluation (each one
  // is exactly one registry solve; revisits are served from the memo).
  EXPECT_EQ(snap.counter_or("solver.heuristic-mva.solves"), misses);
  const obs::HistogramSnapshot* latency =
      snap.histogram("solver.heuristic-mva.solve_us");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->count, misses);
  EXPECT_GT(snap.gauge_or("solver.heuristic-mva.arena_hwm_bytes"), 0.0);

  // Derived gauges reflect the reported optimum.
  EXPECT_DOUBLE_EQ(snap.gauge_or("windim.power"), result.evaluation.power);
  EXPECT_DOUBLE_EQ(snap.gauge_or("windim.fairness"),
                   result.evaluation.fairness);
}

TEST_F(MetricsCrosscheckTest, TwoClassFixture) {
  const core::WindowProblem problem(net::canada_topology(),
                                    net::two_class_traffic(20.0, 20.0));
  const core::DimensionResult result = dimension_windows(problem);
  expect_consistent_accounting(result,
                               obs::MetricsRegistry::global().snapshot());
  EXPECT_EQ(obs::MetricsRegistry::global().snapshot().counter_or(
                "search.budget_exhausted_probes"),
            0u);
}

TEST_F(MetricsCrosscheckTest, FourClassFixture) {
  const core::WindowProblem problem(
      net::canada_topology(), net::four_class_traffic(6.0, 6.0, 6.0, 12.0));
  const core::DimensionResult result = dimension_windows(problem);
  expect_consistent_accounting(result,
                               obs::MetricsRegistry::global().snapshot());
}

TEST_F(MetricsCrosscheckTest, InvariantsHoldUnderBudgetExhaustion) {
  const core::WindowProblem problem(net::canada_topology(),
                                    net::two_class_traffic(20.0, 20.0));
  core::DimensionOptions options;
  options.max_evaluations = 4;
  const core::DimensionResult result = dimension_windows(problem, options);
  ASSERT_TRUE(result.budget_exhausted);
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::global().snapshot();
  EXPECT_EQ(snap.counter_or("search.evaluations"), 4u);
  EXPECT_EQ(snap.counter_or("search.budget_consumed"), 4u);
  EXPECT_GT(snap.counter_or("search.budget_exhausted_probes"), 0u);
  EXPECT_EQ(snap.counter_or("search.cache_hits") +
                snap.counter_or("search.cache_misses") +
                snap.counter_or("search.budget_exhausted_probes"),
            snap.counter_or("search.probes"));
}

TEST_F(MetricsCrosscheckTest, InvariantsHoldWithSpeculativeThreads) {
  const core::WindowProblem problem(
      net::canada_topology(), net::four_class_traffic(6.0, 6.0, 6.0, 12.0));
  core::DimensionOptions options;
  options.threads = 4;
  const core::DimensionResult result = dimension_windows(problem, options);
  // Speculation may change how many probes run, never the accounting
  // identities.
  expect_consistent_accounting(result,
                               obs::MetricsRegistry::global().snapshot());
}

TEST_F(MetricsCrosscheckTest, DisabledRegistryStaysEmpty) {
  obs::MetricsRegistry::global().set_enabled(false);
  const core::WindowProblem problem(net::canada_topology(),
                                    net::two_class_traffic(20.0, 20.0));
  (void)dimension_windows(problem);
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::global().snapshot();
  EXPECT_EQ(snap.counter_or("search.runs"), 0u);
  EXPECT_EQ(snap.counter_or("search.probes"), 0u);
  EXPECT_EQ(snap.counter_or("solver.heuristic-mva.solves"), 0u);
}

}  // namespace
}  // namespace windim
