#include <gtest/gtest.h>

#include <cmath>

#include "mva/approx.h"
#include "mva/exact_multichain.h"
#include "mva/single_chain.h"

namespace windim::mva {
namespace {

qn::Station fcfs(const std::string& name) {
  qn::Station s;
  s.name = name;
  s.discipline = qn::Discipline::kFcfs;
  return s;
}

qn::NetworkModel shared_middle(int pop1, int pop2) {
  qn::NetworkModel m;
  const int a = m.add_station(fcfs("a"));
  const int shared = m.add_station(fcfs("shared"));
  const int b = m.add_station(fcfs("b"));
  qn::Chain c1;
  c1.type = qn::ChainType::kClosed;
  c1.population = pop1;
  c1.visits = {{a, 1.0, 0.08}, {shared, 1.0, 0.05}};
  m.add_chain(std::move(c1));
  qn::Chain c2;
  c2.type = qn::ChainType::kClosed;
  c2.population = pop2;
  c2.visits = {{shared, 1.0, 0.05}, {b, 1.0, 0.11}};
  m.add_chain(std::move(c2));
  return m;
}

TEST(ApproxMvaTest, ConvergesOnTwoChainNetwork) {
  const MvaSolution sol = solve_approx_mva(shared_middle(4, 4));
  EXPECT_TRUE(sol.converged);
  EXPECT_GT(sol.iterations, 1);
  EXPECT_GT(sol.chain_throughput[0], 0.0);
  EXPECT_GT(sol.chain_throughput[1], 0.0);
}

TEST(ApproxMvaTest, SingleChainIsNearExact) {
  // With one chain the sigma heuristic sees no "other" classes; the
  // inflation is identity and the fixed point should sit very close to
  // the exact single-chain MVA.
  qn::NetworkModel m;
  qn::Chain c;
  c.type = qn::ChainType::kClosed;
  c.population = 5;
  for (double d : {0.1, 0.25, 0.18}) {
    const int idx = m.add_station(fcfs("q"));
    c.visits.push_back({idx, 1.0, d});
  }
  m.add_chain(std::move(c));
  const MvaSolution approx = solve_approx_mva(m);
  const SingleChainResult exact = solve_single_chain(m);
  EXPECT_NEAR(approx.chain_throughput[0], exact.throughput[5],
              0.02 * exact.throughput[5]);
}

TEST(ApproxMvaTest, CloseToExactOnModeratePopulations) {
  // Thesis claim: the heuristic error is acceptable and shrinks as
  // populations grow.  Verify < 5% throughput error on a 2-chain case.
  const qn::NetworkModel m = shared_middle(5, 5);
  const MvaSolution approx = solve_approx_mva(m);
  const MvaSolution exact = solve_exact_multichain(m);
  for (int r = 0; r < 2; ++r) {
    const double err =
        std::abs(approx.chain_throughput[static_cast<std::size_t>(r)] -
                 exact.chain_throughput[static_cast<std::size_t>(r)]) /
        exact.chain_throughput[static_cast<std::size_t>(r)];
    EXPECT_LT(err, 0.05) << "chain " << r;
  }
}

TEST(ApproxMvaTest, ErrorShrinksWithPopulation) {
  // Asymptotic validity (thesis 4.2, citing [26]).
  auto throughput_error = [&](int pop) {
    const qn::NetworkModel m = shared_middle(pop, pop);
    const MvaSolution approx = solve_approx_mva(m);
    const MvaSolution exact = solve_exact_multichain(m);
    return std::abs(approx.chain_throughput[0] - exact.chain_throughput[0]) /
           exact.chain_throughput[0];
  };
  const double small = throughput_error(2);
  const double large = throughput_error(12);
  EXPECT_LT(large, small + 1e-9);
  EXPECT_LT(large, 0.02);
}

TEST(ApproxMvaTest, PopulationConservation) {
  const MvaSolution sol = solve_approx_mva(shared_middle(6, 3));
  double total0 = 0.0, total1 = 0.0;
  for (int n = 0; n < 3; ++n) {
    total0 += sol.queue_length(n, 0);
    total1 += sol.queue_length(n, 1);
  }
  EXPECT_NEAR(total0, 6.0, 1e-6);
  EXPECT_NEAR(total1, 3.0, 1e-6);
}

TEST(ApproxMvaTest, LittleLawAtFixedPoint) {
  const MvaSolution sol = solve_approx_mva(shared_middle(4, 4));
  for (int n = 0; n < 3; ++n) {
    for (int r = 0; r < 2; ++r) {
      EXPECT_NEAR(sol.queue_length(n, r),
                  sol.chain_throughput[static_cast<std::size_t>(r)] *
                      sol.time(n, r),
                  1e-6);
    }
  }
}

TEST(ApproxMvaTest, SymmetricChainsGetSymmetricThroughputs) {
  qn::NetworkModel m;
  const int a = m.add_station(fcfs("a"));
  const int shared = m.add_station(fcfs("shared"));
  const int b = m.add_station(fcfs("b"));
  for (int r = 0; r < 2; ++r) {
    qn::Chain c;
    c.type = qn::ChainType::kClosed;
    c.population = 4;
    c.visits = {{r == 0 ? a : b, 1.0, 0.07}, {shared, 1.0, 0.04}};
    m.add_chain(std::move(c));
  }
  const MvaSolution sol = solve_approx_mva(m);
  EXPECT_NEAR(sol.chain_throughput[0], sol.chain_throughput[1], 1e-8);
}

TEST(ApproxMvaTest, SchweitzerBardAlsoConvergesAndIsClose) {
  ApproxMvaOptions options;
  options.sigma = SigmaPolicy::kSchweitzerBard;
  const qn::NetworkModel m = shared_middle(5, 5);
  const MvaSolution sb = solve_approx_mva(m, options);
  const MvaSolution exact = solve_exact_multichain(m);
  EXPECT_TRUE(sb.converged);
  for (int r = 0; r < 2; ++r) {
    const double err =
        std::abs(sb.chain_throughput[static_cast<std::size_t>(r)] -
                 exact.chain_throughput[static_cast<std::size_t>(r)]) /
        exact.chain_throughput[static_cast<std::size_t>(r)];
    EXPECT_LT(err, 0.08);
  }
}

TEST(ApproxMvaTest, BothInitPoliciesReachTheSameFixedPoint) {
  const qn::NetworkModel m = shared_middle(4, 6);
  ApproxMvaOptions balanced;
  balanced.init = InitPolicy::kBalanced;
  ApproxMvaOptions bottleneck;
  bottleneck.init = InitPolicy::kBottleneck;
  const MvaSolution a = solve_approx_mva(m, balanced);
  const MvaSolution b = solve_approx_mva(m, bottleneck);
  EXPECT_NEAR(a.chain_throughput[0], b.chain_throughput[0], 1e-6);
  EXPECT_NEAR(a.chain_throughput[1], b.chain_throughput[1], 1e-6);
}

TEST(ApproxMvaTest, DampingReachesSameFixedPoint) {
  const qn::NetworkModel m = shared_middle(4, 4);
  ApproxMvaOptions damped;
  damped.damping = 0.5;
  const MvaSolution plain = solve_approx_mva(m);
  const MvaSolution slow = solve_approx_mva(m, damped);
  EXPECT_TRUE(slow.converged);
  EXPECT_NEAR(plain.chain_throughput[0], slow.chain_throughput[0], 1e-6);
}

TEST(ApproxMvaTest, ZeroPopulationChainHasZeroThroughput) {
  const MvaSolution sol = solve_approx_mva(shared_middle(4, 0));
  EXPECT_DOUBLE_EQ(sol.chain_throughput[1], 0.0);
  EXPECT_GT(sol.chain_throughput[0], 0.0);
}

TEST(ApproxMvaTest, IsStationsHandled) {
  qn::NetworkModel m;
  const int a = m.add_station(fcfs("a"));
  qn::Station is;
  is.name = "think";
  is.discipline = qn::Discipline::kInfiniteServer;
  const int z = m.add_station(std::move(is));
  for (int r = 0; r < 2; ++r) {
    qn::Chain c;
    c.type = qn::ChainType::kClosed;
    c.population = 5;
    c.visits = {{a, 1.0, 0.05}, {z, 1.0, 0.8}};
    m.add_chain(std::move(c));
  }
  const MvaSolution approx = solve_approx_mva(m);
  const MvaSolution exact = solve_exact_multichain(m);
  EXPECT_TRUE(approx.converged);
  for (int r = 0; r < 2; ++r) {
    const double err =
        std::abs(approx.chain_throughput[static_cast<std::size_t>(r)] -
                 exact.chain_throughput[static_cast<std::size_t>(r)]) /
        exact.chain_throughput[static_cast<std::size_t>(r)];
    EXPECT_LT(err, 0.05);
  }
}

TEST(ApproxMvaTest, HeavyCompetitionStillConverges) {
  // Ten chains through one shared bottleneck.
  qn::NetworkModel m;
  const int hub = m.add_station(fcfs("hub"));
  for (int r = 0; r < 10; ++r) {
    const int leg = m.add_station(fcfs("leg" + std::to_string(r)));
    qn::Chain c;
    c.type = qn::ChainType::kClosed;
    c.population = 3;
    c.visits = {{hub, 1.0, 0.02}, {leg, 1.0, 0.05}};
    m.add_chain(std::move(c));
  }
  const MvaSolution sol = solve_approx_mva(m);
  EXPECT_TRUE(sol.converged);
  double total_util = 0.0;
  for (int r = 0; r < 10; ++r) {
    total_util += 0.02 * sol.chain_throughput[static_cast<std::size_t>(r)];
  }
  EXPECT_LE(total_util, 1.0 + 1e-6);  // hub cannot exceed capacity
}

TEST(ApproxMvaTest, RejectsInvalidOptionsAndModels) {
  const qn::NetworkModel m = shared_middle(2, 2);
  ApproxMvaOptions bad;
  bad.damping = 0.0;
  EXPECT_THROW((void)solve_approx_mva(m, bad), std::invalid_argument);

  qn::NetworkModel open = shared_middle(2, 2);
  qn::Chain oc;
  oc.type = qn::ChainType::kOpen;
  oc.arrival_rate = 1.0;
  oc.visits = {{0, 1.0, 0.01}};
  open.add_chain(std::move(oc));
  EXPECT_THROW((void)solve_approx_mva(open), qn::ModelError);
}

}  // namespace
}  // namespace windim::mva
