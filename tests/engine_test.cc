// Tests for the parallel, warm-started window evaluation engine: the
// thread pool, the shared evaluation cache, warm-started heuristic MVA,
// and the dimensioning determinism / budget-exhaustion guarantees.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "mva/approx.h"
#include "net/examples.h"
#include "qn/cyclic.h"
#include "search/eval_cache.h"
#include "util/thread_pool.h"
#include "windim/dimension.h"
#include "windim/problem.h"

namespace windim {
namespace {

// ---------------------------------------------------------------- thread pool

TEST(ThreadPoolTest, RunsSubmittedJobs) {
  util::ThreadPool pool(2);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(pool.submit([&] { ++count; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), 16);
}

TEST(ThreadPoolTest, ZeroWorkersRunsInline) {
  util::ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 0u);
  bool ran = false;
  pool.submit([&] { ran = true; }).get();
  EXPECT_TRUE(ran);
}

TEST(ThreadPoolTest, RunBatchWaitsForAllJobs) {
  util::ThreadPool pool(3);
  std::atomic<int> count{0};
  std::vector<std::function<void()>> jobs;
  for (int i = 0; i < 20; ++i) jobs.push_back([&] { ++count; });
  pool.run_batch(std::move(jobs));
  EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPoolTest, RunBatchPropagatesJobException) {
  util::ThreadPool pool(2);
  std::atomic<int> completed{0};
  std::vector<std::function<void()>> jobs;
  jobs.push_back([] { throw std::runtime_error("boom"); });
  for (int i = 0; i < 8; ++i) jobs.push_back([&] { ++completed; });
  EXPECT_THROW(pool.run_batch(std::move(jobs)), std::runtime_error);
  // Every non-throwing job still ran to completion before the rethrow.
  EXPECT_EQ(completed.load(), 8);
}

TEST(ThreadPoolTest, ResolveThreadCountCapsAtHardware) {
  const std::size_t hw =
      std::max(1u, std::thread::hardware_concurrency());
  EXPECT_EQ(util::resolve_thread_count(0), hw);
  EXPECT_EQ(util::resolve_thread_count(-3), hw);
  EXPECT_EQ(util::resolve_thread_count(1), 1u);
  EXPECT_LE(util::resolve_thread_count(1024), hw);
}

// ----------------------------------------------------------------- eval cache

TEST(EvalCacheTest, LookupOrReserveClassifiesAndCountsExactly) {
  search::EvalCache cache;
  const auto miss = cache.lookup_or_reserve({1, 2});
  EXPECT_EQ(miss.outcome, search::EvalCache::Outcome::kReserved);
  cache.insert({1, 2}, 3.5);
  const auto hit = cache.lookup_or_reserve({1, 2});
  ASSERT_EQ(hit.outcome, search::EvalCache::Outcome::kHit);
  EXPECT_DOUBLE_EQ(hit.value.scalar_value(), 3.5);
  EXPECT_EQ(cache.evaluations(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.probes(), 2u);
}

TEST(EvalCacheTest, BudgetReservationIsPermanent) {
  search::EvalCache cache(2);
  EXPECT_EQ(cache.lookup_or_reserve({1}).outcome,
            search::EvalCache::Outcome::kReserved);
  EXPECT_EQ(cache.lookup_or_reserve({2}).outcome,
            search::EvalCache::Outcome::kReserved);
  EXPECT_EQ(cache.lookup_or_reserve({3}).outcome,
            search::EvalCache::Outcome::kExhausted);
  EXPECT_EQ(cache.lookup_or_reserve({4}).outcome,
            search::EvalCache::Outcome::kExhausted);
  // Abandoning a reservation releases the point but not the budget slot.
  cache.abandon({1});
  EXPECT_EQ(cache.lookup_or_reserve({1}).outcome,
            search::EvalCache::Outcome::kExhausted);
  EXPECT_EQ(cache.evaluations(), 2u);
  EXPECT_EQ(cache.exhausted_probes(), 3u);
}

TEST(EvalCacheTest, ConcurrentReservationsNeverExceedBudget) {
  search::EvalCache cache(100);
  util::ThreadPool pool(4);
  std::atomic<std::size_t> granted{0};
  std::vector<std::function<void()>> jobs;
  for (int i = 0; i < 300; ++i) {
    jobs.push_back([&, i] {
      const auto r = cache.lookup_or_reserve({i});  // 300 distinct points
      if (r.outcome == search::EvalCache::Outcome::kReserved) {
        ++granted;
        cache.insert({i}, 0.0);
      }
    });
  }
  pool.run_batch(std::move(jobs));
  EXPECT_EQ(granted.load(), 100u);
  EXPECT_EQ(cache.evaluations(), 100u);
  EXPECT_EQ(cache.exhausted_probes(), 200u);
}

// Satellite regression (PR 4): the old split lookup()/try_reserve() API
// let two threads both miss the same point — stats double-counted and
// the point was evaluated twice.  lookup_or_reserve() classifies
// atomically with the shard insert: hammering 100 distinct points with
// 3 probes each from 4 threads must yield EXACTLY 100 misses and 200
// hits, under every interleaving (late probers block until the value
// lands, then count as hits).
TEST(EvalCacheTest, ExactStatsUnderConcurrentHammer) {
  search::EvalCache cache;
  util::ThreadPool pool(4);
  std::atomic<std::size_t> evaluations_run{0};
  std::vector<std::function<void()>> jobs;
  for (int probe = 0; probe < 3; ++probe) {
    for (int i = 0; i < 100; ++i) {
      jobs.push_back([&, i] {
        const search::Point p = {i, i + 1};
        const auto r = cache.lookup_or_reserve(p);
        if (r.outcome == search::EvalCache::Outcome::kReserved) {
          ++evaluations_run;
          cache.insert(p, static_cast<double>(i));
        } else {
          ASSERT_EQ(r.outcome, search::EvalCache::Outcome::kHit);
          EXPECT_DOUBLE_EQ(r.value.scalar_value(), static_cast<double>(i));
        }
      });
    }
  }
  pool.run_batch(std::move(jobs));
  EXPECT_EQ(evaluations_run.load(), 100u);
  EXPECT_EQ(cache.misses(), 100u);
  EXPECT_EQ(cache.hits(), 200u);
  EXPECT_EQ(cache.probes(), 300u);
  EXPECT_EQ(cache.exhausted_probes(), 0u);
}

TEST(EvalCacheTest, AbandonWakesWaitersAndAllowsReReservation) {
  search::EvalCache cache;
  util::ThreadPool pool(2);
  const search::Point p = {7};
  ASSERT_EQ(cache.lookup_or_reserve(p).outcome,
            search::EvalCache::Outcome::kReserved);
  std::atomic<bool> reserved_again{false};
  std::vector<std::function<void()>> jobs;
  jobs.push_back([&] {
    // Blocks until the abandon below, then re-classifies as a miss.
    const auto r = cache.lookup_or_reserve(p);
    if (r.outcome == search::EvalCache::Outcome::kReserved) {
      reserved_again = true;
      cache.insert(p, 1.0);
    }
  });
  jobs.push_back([&] { cache.abandon(p); });
  pool.run_batch(std::move(jobs));
  EXPECT_TRUE(reserved_again.load());
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.lookup_or_reserve(p).outcome,
            search::EvalCache::Outcome::kHit);
}

// ------------------------------------------------------------ warm-start MVA

qn::NetworkModel four_class_model(const std::vector<int>& windows) {
  const core::WindowProblem problem(
      net::canada_topology(), net::four_class_traffic(6.0, 6.0, 6.0, 12.0));
  return problem.network(windows).to_model();
}

TEST(WarmStartMvaTest, WarmSolutionMatchesColdWithinTolerance) {
  mva::ApproxMvaOptions options;
  const qn::NetworkModel base = four_class_model({4, 4, 3, 1});
  const mva::MvaSolution cold_base = mva::solve_approx_mva(base, options);
  ASSERT_TRUE(cold_base.converged);

  mva::MvaWarmStart seed;
  seed.lambda = cold_base.chain_throughput;
  seed.number = cold_base.mean_queue;
  seed.sigma = cold_base.sigma;

  // Neighboring window settings, as generated by the pattern search.
  const std::vector<std::vector<int>> neighbors = {
      {5, 4, 3, 1}, {3, 4, 3, 1}, {4, 5, 3, 1}, {4, 4, 2, 1}, {4, 4, 3, 2}};
  for (const std::vector<int>& w : neighbors) {
    const qn::NetworkModel model = four_class_model(w);
    const mva::MvaSolution cold = mva::solve_approx_mva(model, options);
    const mva::MvaSolution warm = mva::solve_approx_mva(model, options, &seed);
    ASSERT_TRUE(cold.converged);
    ASSERT_TRUE(warm.converged);
    for (std::size_t r = 0; r < cold.chain_throughput.size(); ++r) {
      EXPECT_NEAR(warm.chain_throughput[r], cold.chain_throughput[r],
                  50.0 * options.tolerance *
                      std::max(1.0, cold.chain_throughput[r]))
          << "chain " << r << " windows " << ::testing::PrintToString(w);
    }
    // The lazy sigma refresh is what makes warm starts cheap: most warm
    // sweeps must reuse the seeded sigma.
    EXPECT_EQ(cold.sigma_refreshes, cold.iterations);
    EXPECT_LT(warm.sigma_refreshes, warm.iterations);
  }
}

TEST(WarmStartMvaTest, MismatchedWarmStateThrows) {
  const qn::NetworkModel model = four_class_model({4, 4, 3, 1});
  mva::MvaWarmStart bad;
  bad.lambda = {1.0};  // wrong chain count
  bad.number.assign(4, 0.0);
  EXPECT_THROW((void)mva::solve_approx_mva(model, {}, &bad),
               std::invalid_argument);
}

TEST(WarmStartMvaTest, ZeroCycleTimeChainIsRejected) {
  // A populated chain whose demands are all zero has no finite fixed
  // point: lambda would seed at +inf.  Must throw, not diverge.
  qn::CyclicNetwork net;
  qn::Station s;
  s.name = "ch";
  s.discipline = qn::Discipline::kFcfs;
  net.stations.push_back(s);
  qn::CyclicChain chain;
  chain.name = "degenerate";
  chain.population = 3;
  chain.route = {0};
  chain.service_times = {0.0};
  net.chains.push_back(chain);
  EXPECT_THROW((void)mva::solve_approx_mva(net.to_model(), {}),
               qn::ModelError);
}

// ------------------------------------------------------- dimensioning engine

core::WindowProblem two_class_problem() {
  return core::WindowProblem(net::canada_topology(),
                             net::two_class_traffic(20.0, 20.0));
}

core::WindowProblem four_class_problem() {
  return core::WindowProblem(net::canada_topology(),
                             net::four_class_traffic(6.0, 6.0, 6.0, 12.0));
}

void expect_same_result(const core::DimensionResult& a,
                        const core::DimensionResult& b) {
  EXPECT_EQ(a.optimal_windows, b.optimal_windows);
  EXPECT_EQ(a.base_points, b.base_points);
  EXPECT_NEAR(a.evaluation.power, b.evaluation.power,
              1e-9 * std::max(1.0, std::abs(a.evaluation.power)));
}

TEST(DimensionEngineTest, ThreadedRunMatchesSerialTwoClass) {
  const core::WindowProblem problem = two_class_problem();
  core::DimensionOptions serial;
  core::DimensionOptions threaded;
  threaded.threads = 4;
  expect_same_result(dimension_windows(problem, serial),
                     dimension_windows(problem, threaded));
}

TEST(DimensionEngineTest, ThreadedRunMatchesSerialFourClass) {
  const core::WindowProblem problem = four_class_problem();
  core::DimensionOptions serial;
  core::DimensionOptions threaded;
  threaded.threads = 4;
  expect_same_result(dimension_windows(problem, serial),
                     dimension_windows(problem, threaded));
}

TEST(DimensionEngineTest, WarmStartMatchesColdStart) {
  const core::WindowProblem problem = four_class_problem();
  core::DimensionOptions cold;
  cold.warm_start = false;
  core::DimensionOptions warm;
  warm.warm_start = true;
  const core::DimensionResult cold_result = dimension_windows(problem, cold);
  const core::DimensionResult warm_result = dimension_windows(problem, warm);
  EXPECT_EQ(cold_result.optimal_windows, warm_result.optimal_windows);
  EXPECT_NEAR(cold_result.evaluation.power, warm_result.evaluation.power,
              1e-4 * std::max(1.0, cold_result.evaluation.power));
  // The warm run must actually skip sigma work at the optimum's
  // neighborhood (it re-reports the cached best-point evaluation).
  EXPECT_LE(warm_result.evaluation.sigma_refreshes,
            warm_result.evaluation.iterations);
}

TEST(DimensionEngineTest, BudgetExhaustionReturnsBestSoFar) {
  const core::WindowProblem problem = two_class_problem();
  core::DimensionOptions unlimited;
  const core::DimensionResult full = dimension_windows(problem, unlimited);
  ASSERT_FALSE(full.budget_exhausted);

  core::DimensionOptions capped;
  capped.max_evaluations = 4;
  const core::DimensionResult partial = dimension_windows(problem, capped);
  EXPECT_TRUE(partial.budget_exhausted);
  EXPECT_LE(partial.objective_evaluations, 4u);
  EXPECT_TRUE(partial.feasible);
  // The partial result carries a real evaluation of its best point.
  EXPECT_EQ(partial.evaluation.windows, partial.optimal_windows);
  EXPECT_GT(partial.evaluation.power, 0.0);
}

TEST(DimensionEngineTest, BestPointEvaluationIsReusedNotRecomputed) {
  const core::WindowProblem problem = two_class_problem();
  const core::DimensionResult result = dimension_windows(problem);
  // The reported evaluation comes from the run's store: it is the full
  // metrics of the optimum, not a placeholder.
  EXPECT_EQ(result.evaluation.windows, result.optimal_windows);
  EXPECT_GT(result.evaluation.throughput, 0.0);
  EXPECT_GT(result.evaluation.iterations, 0);
  const core::Evaluation direct =
      problem.evaluate(result.optimal_windows);
  EXPECT_NEAR(result.evaluation.power, direct.power,
              1e-4 * std::max(1.0, direct.power));
}

}  // namespace
}  // namespace windim
