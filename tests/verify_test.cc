// Unit tests for the differential-oracle harness core: the generator
// families (determinism, validity), the corpus round-trip, the oracle
// registry's pass/fail propagation, and the shrinker's ability to
// reduce an injected synthetic failure to a minimal repro.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "verify/corpus.h"
#include "verify/gen.h"
#include "verify/oracle.h"
#include "verify/shrink.h"

namespace windim::verify {
namespace {

TEST(VerifyGen, EveryFamilyGeneratesValidDeterministicInstances) {
  for (Family family : all_families()) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      const Instance a = generate(family, seed);
      const Instance b = generate(family, seed);
      EXPECT_GT(a.model.num_stations(), 0) << a.name;
      EXPECT_GT(a.model.num_chains(), 0) << a.name;
      // Same (family, seed) => bit-identical instance.
      EXPECT_EQ(serialize({a, "", ""}), serialize({b, "", ""})) << a.name;
    }
    // Different seeds decorrelate.
    EXPECT_NE(serialize({generate(family, 1), "", ""}),
              serialize({generate(family, 2), "", ""}))
        << to_string(family);
  }
}

TEST(VerifyGen, FamilyNamesRoundTrip) {
  for (Family family : all_families()) {
    const auto parsed = family_from_string(to_string(family));
    ASSERT_TRUE(parsed.has_value()) << to_string(family);
    EXPECT_EQ(*parsed, family);
  }
  EXPECT_FALSE(family_from_string("no-such-family").has_value());
}

TEST(VerifyGen, SemiclosedFamilyCarriesOneSpecPerChain) {
  const Instance inst = generate(Family::kSemiclosed, 3);
  ASSERT_EQ(inst.semiclosed.size(),
            static_cast<std::size_t>(inst.model.num_chains()));
  for (const auto& spec : inst.semiclosed) {
    EXPECT_GT(spec.arrival_rate, 0.0);
    EXPECT_LE(spec.min_population, spec.max_population);
  }
}

TEST(VerifyGen, CyclicFamiliesKeepModelAndRoutesConsistent) {
  for (Family family : {Family::kCyclic, Family::kWindim}) {
    const Instance inst = generate(family, 4);
    ASSERT_TRUE(inst.cyclic.has_value()) << inst.name;
    const qn::NetworkModel rebuilt = inst.cyclic->to_model();
    EXPECT_EQ(rebuilt.num_stations(), inst.model.num_stations());
    EXPECT_EQ(rebuilt.num_chains(), inst.model.num_chains());
  }
}

TEST(VerifyCorpus, SerializationRoundTripsEveryFamily) {
  for (Family family : all_families()) {
    CorpusEntry entry;
    entry.instance = generate(family, 7);
    entry.expect = "convolution-vs-exact-mva";
    entry.note = "synthetic round-trip check";
    const std::string text = serialize(entry);
    const CorpusEntry parsed = parse_corpus_entry(text);
    EXPECT_EQ(parsed.expect, entry.expect);
    EXPECT_EQ(parsed.note, entry.note);
    EXPECT_EQ(parsed.instance.family, family);
    EXPECT_EQ(parsed.instance.seed, entry.instance.seed);
    EXPECT_EQ(parsed.instance.model.num_stations(),
              entry.instance.model.num_stations());
    EXPECT_EQ(parsed.instance.model.num_chains(),
              entry.instance.model.num_chains());
    EXPECT_EQ(parsed.instance.cyclic.has_value(),
              entry.instance.cyclic.has_value());
    // Stable under re-serialization (committed entries diff cleanly).
    EXPECT_EQ(serialize(parsed), text) << to_string(family);
  }
}

TEST(VerifyCorpus, RejectsMalformedEntries) {
  EXPECT_THROW((void)parse_corpus_entry("family bogus\nend\n"),
               std::runtime_error);
  EXPECT_THROW((void)parse_corpus_entry(""), std::runtime_error);
  // A chain referencing a station that does not exist.
  EXPECT_THROW(
      (void)parse_corpus_entry("family fcfs-closed\nseed 1\nname x\n"
                               "station s0 fcfs\nchain c0 closed 1\n"
                               "visit 5 1 0.1\nend\n"),
      std::runtime_error);
}

TEST(VerifyOracle, CleanInstancePassesAndRecordsWhatRan) {
  const Instance inst = generate(Family::kFcfsClosed, 11);
  const OracleReport report = run_oracles(inst);
  EXPECT_TRUE(report.ok())
      << (report.failures.empty() ? "" : report.failures.front().detail);
  EXPECT_FALSE(report.ran.empty());
  // The product-form cross-checks must have actually executed.
  bool saw_product_form = false;
  for (const std::string& name : report.ran) {
    if (name == "convolution-vs-product-form") saw_product_form = true;
  }
  EXPECT_TRUE(saw_product_form);
  EXPECT_GE(report.heuristic_error, 0.0);
}

TEST(VerifyOracle, ImpossibleEnvelopeIsReportedAsFailure) {
  // Drive the tolerance model into an impossible regime: a negative
  // envelope fails any observed error, exercising the failure path
  // without needing a genuinely broken solver.
  const Instance inst = generate(Family::kFcfsClosed, 11);
  OracleOptions options;
  options.heuristic_envelope = -1.0;
  const OracleReport report = run_oracles(inst, options);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.failed("heuristic-envelope"));
  EXPECT_FALSE(report.failed("convolution-vs-product-form"));
}

TEST(VerifyShrink, ThrowsWhenInputDoesNotFail) {
  const Instance inst = generate(Family::kFcfsClosed, 2);
  EXPECT_THROW(
      (void)shrink(inst, [](const Instance&) { return false; }),
      std::invalid_argument);
}

TEST(VerifyShrink, ReducesSyntheticFailureToMinimalRepro) {
  // The injected "failure" holds for any non-empty model, so the
  // shrinker should be able to strip the instance down to (at most)
  // two stations and two chains — the acceptance bar for the harness.
  const FailurePredicate synthetic = [](const Instance& inst) {
    return inst.model.num_stations() >= 1 && inst.model.num_chains() >= 1;
  };
  for (Family family :
       {Family::kDisciplines, Family::kCyclic, Family::kSemiclosed}) {
    // Pick a seed whose instance starts out bigger than the target.
    Instance big;
    std::uint64_t seed = 1;
    for (; seed < 50; ++seed) {
      big = generate(family, seed);
      if (big.model.num_stations() > 2 && big.model.num_chains() >= 2) break;
    }
    ASSERT_GT(big.model.num_stations(), 2) << to_string(family);
    const ShrinkResult result = shrink(big, synthetic);
    EXPECT_LE(result.instance.model.num_stations(), 2)
        << to_string(family) << " seed " << seed;
    EXPECT_LE(result.instance.model.num_chains(), 2)
        << to_string(family) << " seed " << seed;
    EXPECT_GT(result.accepted, 0);
    // The repro still trips the predicate and still validates.
    EXPECT_TRUE(synthetic(result.instance));
    EXPECT_NO_THROW(result.instance.model.validate());
  }
}

TEST(VerifyShrink, PreservesTheSpecificOracleFailure) {
  // Minimizing under "heuristic-envelope fails" (forced by the negative
  // envelope) must yield an instance that still fails that oracle.
  const Instance inst = generate(Family::kFcfsClosed, 11);
  OracleOptions options;
  options.heuristic_envelope = -1.0;
  const FailurePredicate predicate =
      fails_oracle("heuristic-envelope", options);
  ASSERT_TRUE(predicate(inst));
  const ShrinkResult result = shrink(inst, predicate);
  EXPECT_TRUE(predicate(result.instance));
  EXPECT_LE(result.instance.model.num_chains(), inst.model.num_chains());
}

}  // namespace
}  // namespace windim::verify
