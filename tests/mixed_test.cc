#include <gtest/gtest.h>

#include "exact/convolution.h"
#include "exact/mixed.h"
#include "exact/mm_queues.h"

namespace windim::exact {
namespace {

qn::Station fcfs(const std::string& name) {
  qn::Station s;
  s.name = name;
  s.discipline = qn::Discipline::kFcfs;
  return s;
}

TEST(MixedTest, NoOpenLoadReducesToConvolution) {
  qn::NetworkModel m;
  const int a = m.add_station(fcfs("a"));
  const int b = m.add_station(fcfs("b"));
  qn::Chain closed;
  closed.type = qn::ChainType::kClosed;
  closed.population = 4;
  closed.visits = {{a, 1.0, 0.1}, {b, 1.0, 0.2}};
  m.add_chain(std::move(closed));
  qn::Chain open;
  open.type = qn::ChainType::kOpen;
  open.arrival_rate = 0.0;  // open chain with zero traffic
  open.visits = {{a, 1.0, 0.1}};
  m.add_chain(std::move(open));

  const MixedSolution mixed = solve_mixed(m);

  qn::NetworkModel pure;
  const int a2 = pure.add_station(fcfs("a"));
  const int b2 = pure.add_station(fcfs("b"));
  qn::Chain c;
  c.type = qn::ChainType::kClosed;
  c.population = 4;
  c.visits = {{a2, 1.0, 0.1}, {b2, 1.0, 0.2}};
  pure.add_chain(std::move(c));
  const ConvolutionResult conv = solve_convolution(pure);

  EXPECT_NEAR(mixed.closed.chain_throughput[0], conv.chain_throughput[0],
              1e-10);
  EXPECT_NEAR(mixed.open_mean_number[0], 0.0, 1e-12);
}

TEST(MixedTest, OpenLoadSlowsClosedChain) {
  auto build = [&](double open_rate) {
    qn::NetworkModel m;
    const int a = m.add_station(fcfs("a"));
    const int b = m.add_station(fcfs("b"));
    qn::Chain closed;
    closed.type = qn::ChainType::kClosed;
    closed.population = 3;
    closed.visits = {{a, 1.0, 0.1}, {b, 1.0, 0.1}};
    m.add_chain(std::move(closed));
    qn::Chain open;
    open.type = qn::ChainType::kOpen;
    open.arrival_rate = open_rate;
    open.visits = {{a, 1.0, 0.1}};
    m.add_chain(std::move(open));
    return m;
  };
  const double idle = solve_mixed(build(0.0)).closed.chain_throughput[0];
  const double busy = solve_mixed(build(5.0)).closed.chain_throughput[0];
  EXPECT_LT(busy, idle);
}

TEST(MixedTest, OpenQueueLengthFormulaAtIsolatedStation) {
  // Open chain at a station the closed chain never visits: N0 must be
  // the plain M/M/1 queue length.
  qn::NetworkModel m;
  const int a = m.add_station(fcfs("a"));
  const int b = m.add_station(fcfs("b"));
  qn::Chain closed;
  closed.type = qn::ChainType::kClosed;
  closed.population = 2;
  closed.visits = {{a, 1.0, 0.1}};
  m.add_chain(std::move(closed));
  qn::Chain open;
  open.type = qn::ChainType::kOpen;
  open.arrival_rate = 4.0;
  open.visits = {{b, 1.0, 0.1}};
  m.add_chain(std::move(open));
  const MixedSolution mixed = solve_mixed(m);
  const MM1 reference(4.0, 10.0);
  EXPECT_NEAR(mixed.open_mean_number[static_cast<std::size_t>(b)],
              reference.mean_number(), 1e-10);
  EXPECT_NEAR(mixed.open_chain_delay[1], reference.mean_time(), 1e-10);
}

TEST(MixedTest, SaturatedOpenLoadThrows) {
  qn::NetworkModel m;
  const int a = m.add_station(fcfs("a"));
  qn::Chain closed;
  closed.type = qn::ChainType::kClosed;
  closed.population = 1;
  closed.visits = {{a, 1.0, 0.1}};
  m.add_chain(std::move(closed));
  qn::Chain open;
  open.type = qn::ChainType::kOpen;
  open.arrival_rate = 20.0;  // rho0 = 2
  open.visits = {{a, 1.0, 0.1}};
  m.add_chain(std::move(open));
  EXPECT_THROW((void)solve_mixed(m), std::domain_error);
}

TEST(MixedTest, AllOpenIsRejected) {
  qn::NetworkModel m;
  const int a = m.add_station(fcfs("a"));
  qn::Chain open;
  open.type = qn::ChainType::kOpen;
  open.arrival_rate = 1.0;
  open.visits = {{a, 1.0, 0.1}};
  m.add_chain(std::move(open));
  EXPECT_THROW((void)solve_mixed(m), qn::ModelError);
}

TEST(MixedTest, QueueDependentStationRejected) {
  qn::NetworkModel m;
  qn::Station s = fcfs("mm2");
  s.rate_multipliers = {1.0, 2.0};
  const int a = m.add_station(std::move(s));
  qn::Chain closed;
  closed.type = qn::ChainType::kClosed;
  closed.population = 1;
  closed.visits = {{a, 1.0, 0.1}};
  m.add_chain(std::move(closed));
  EXPECT_THROW((void)solve_mixed(m), qn::ModelError);
}

}  // namespace
}  // namespace windim::exact
