// Reproduction regression suite: pins the qualitative claims of every
// thesis table/figure (the statements EXPERIMENTS.md makes).  These are
// the tests that fail if a solver change silently breaks the paper
// reproduction, even when all unit-level invariants still hold.
#include <gtest/gtest.h>

#include <cmath>

#include "windim/windim.h"

namespace windim {
namespace {

core::WindowProblem two_class(double s1, double s2) {
  return core::WindowProblem(net::canada_topology(),
                             net::two_class_traffic(s1, s2));
}

// ------------------------------------------------------------- Table 4.7

TEST(ReproductionTest, Table47_WindowsShrinkAndPowerGrowsWithLoad) {
  std::vector<int> previous_windows{99, 99};
  double previous_power = 0.0;
  for (double s : {12.5, 20.0, 37.5, 75.0}) {
    const core::DimensionResult r = core::dimension_windows(two_class(s, s));
    EXPECT_LE(r.optimal_windows[0], previous_windows[0]) << "S=" << s;
    EXPECT_LE(r.optimal_windows[1], previous_windows[1]) << "S=" << s;
    EXPECT_GT(r.evaluation.power, previous_power) << "S=" << s;
    previous_windows = r.optimal_windows;
    previous_power = r.evaluation.power;
  }
}

TEST(ReproductionTest, Table47_SymmetricLoadsSymmetricOptima) {
  for (double s : {15.5, 25.0, 50.0}) {
    const core::DimensionResult r = core::dimension_windows(two_class(s, s));
    // Mirror ties allowed: the mirrored setting must achieve the same
    // power.
    const core::WindowProblem p = two_class(s, s);
    const std::vector<int> mirrored{r.optimal_windows[1],
                                    r.optimal_windows[0]};
    EXPECT_NEAR(p.evaluate(mirrored).power, r.evaluation.power,
                1e-6 * r.evaluation.power)
        << "S=" << s;
  }
}

TEST(ReproductionTest, Table47_PowerBand) {
  // Loose numeric pins (heuristic evaluator): the reproduction lands in
  // these bands today; a solver regression that moves power by >10%
  // trips them.
  EXPECT_NEAR(core::dimension_windows(two_class(12.0, 13.0)).evaluation.power,
              177.5, 10.0);
  EXPECT_NEAR(core::dimension_windows(two_class(75.0, 75.0)).evaluation.power,
              222.3, 11.0);
}

// ------------------------------------------------------------- Table 4.8

TEST(ReproductionTest, Table48_ImbalanceDegradesPowerButNotWindows) {
  const core::DimensionResult balanced =
      core::dimension_windows(two_class(12.0, 13.0));
  const core::DimensionResult skewed =
      core::dimension_windows(two_class(5.0, 20.0));
  EXPECT_LT(skewed.evaluation.power, balanced.evaluation.power);
  // Optimal windows move at most one unit per class.
  for (int r = 0; r < 2; ++r) {
    EXPECT_LE(std::abs(skewed.optimal_windows[static_cast<std::size_t>(r)] -
                       balanced.optimal_windows[static_cast<std::size_t>(r)]),
              1);
  }
}

// --------------------------------------------------------------- Fig 4.9

TEST(ReproductionTest, Fig49_LargeWindowsPeakEarlyThenAreDominated) {
  // At S >= 25 the small windows dominate the large ones ...
  for (double s : {25.0, 50.0, 100.0}) {
    const core::WindowProblem p = two_class(s, s);
    const double small = p.evaluate({2, 2}).power;
    const double large = p.evaluate({7, 7}).power;
    EXPECT_GT(small, large) << "S=" << s;
  }
  // ... while at light load the large window is harmless (plateau).
  const core::WindowProblem light = two_class(5.0, 5.0);
  EXPECT_NEAR(light.evaluate({7, 7}).power, light.evaluate({4, 4}).power,
              0.02 * light.evaluate({4, 4}).power);
}

TEST(ReproductionTest, Fig49_SmallWindowCurveMonotone) {
  // E = (1,1): power rises monotonically to its plateau.
  double previous = 0.0;
  for (double s : {2.5, 10.0, 25.0, 50.0, 100.0}) {
    const double power = two_class(s, s).evaluate({1, 1}).power;
    EXPECT_GT(power, previous);
    previous = power;
  }
}

// ------------------------------------------------------------- Table 4.12

TEST(ReproductionTest, Table412_HopCountRuleClearlySuboptimal) {
  const struct {
    double s[4];
    double min_ratio;  // P_op / P_4431 lower pin
  } rows[] = {
      {{6.0, 6.0, 6.0, 12.0}, 1.10},
      {{12.5, 12.5, 12.5, 25.0}, 1.40},
      {{20.0, 20.0, 20.0, 40.0}, 1.75},
  };
  for (const auto& row : rows) {
    const core::WindowProblem p(
        net::canada_topology(),
        net::four_class_traffic(row.s[0], row.s[1], row.s[2], row.s[3]));
    const core::DimensionResult dim = core::dimension_windows(p);
    const core::Evaluation hop = p.evaluate({4, 4, 3, 1});
    EXPECT_GT(dim.evaluation.power / hop.power, row.min_ratio)
        << "row S4=" << row.s[3];
  }
}

TEST(ReproductionTest, Table412_BalancedRatesMaximizePower) {
  // At total 62.5: the thesis's capacity-proportional row beats the
  // skewed rows.
  auto optimal_power = [](double s1, double s2, double s3, double s4) {
    const core::WindowProblem p(net::canada_topology(),
                                net::four_class_traffic(s1, s2, s3, s4));
    return core::dimension_windows(p).evaluation.power;
  };
  const double balanced = optimal_power(12.5, 12.5, 12.5, 25.0);
  const double mixed = optimal_power(21.24, 9.86, 18.85, 12.55);
  const double skewed = optimal_power(33.59, 1.70, 24.15, 3.06);
  EXPECT_GT(balanced, mixed);
  EXPECT_GT(mixed, skewed);
}

// ------------------------------------------------------ Kleinrock (4.6)

TEST(ReproductionTest, KleinrockIsolatedChainOptimumNearHopCount) {
  for (int hops : {3, 5, 7}) {
    net::Topology topo;
    std::vector<std::string> path;
    for (int n = 0; n <= hops; ++n) {
      topo.add_node("n" + std::to_string(n));
      path.push_back("n" + std::to_string(n));
      if (n > 0) {
        topo.add_channel("n" + std::to_string(n - 1),
                         "n" + std::to_string(n), 50.0);
      }
    }
    net::TrafficClass tc;
    tc.name = "chain";
    tc.path = path;
    tc.arrival_rate = 30.0;
    const core::WindowProblem p(topo, {tc});
    int best = 1;
    double best_power = -1.0;
    for (int e = 1; e <= 2 * hops + 2; ++e) {
      const double power =
          p.evaluate({e}, core::Evaluator::kConvolution).power;
      if (power > best_power) {
        best_power = power;
        best = e;
      }
    }
    EXPECT_LE(std::abs(best - hops), 1) << "hops=" << hops;
  }
}

// ------------------------------------------------- heuristic quality (A1)

TEST(ReproductionTest, HeuristicPowerWithinThreePercentOnGrid) {
  const core::WindowProblem p = two_class(20.0, 20.0);
  for (int e1 = 1; e1 <= 5; ++e1) {
    for (int e2 = 1; e2 <= 5; ++e2) {
      const double h = p.evaluate({e1, e2}).power;
      const double x =
          p.evaluate({e1, e2}, core::Evaluator::kConvolution).power;
      EXPECT_LT(std::abs(h - x) / x, 0.03) << "(" << e1 << "," << e2 << ")";
    }
  }
}

}  // namespace
}  // namespace windim
