// Concurrency suite for `windim serve`: N client threads hammer one
// Server and every reply must be BYTE-IDENTICAL to the answer a fresh
// single-threaded server gives for the same request line — the
// determinism contract (replies carry no wall-clock values, the engine
// is serial-replay deterministic) made observable.  Also pins the cache
// accounting identity hits + misses == compile lookups and the
// per-connection reply ordering of the pipelined stream loop.
//
// Runs under TSan in CI (the tsan job executes the full ctest suite).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "serve/server.h"

namespace windim {
namespace {

std::string spec_text(int channels, double rate) {
  std::string spec;
  for (int i = 0; i <= channels; ++i) {
    spec += "node N" + std::to_string(i) + "\n";
  }
  for (int i = 0; i < channels; ++i) {
    spec += "channel N" + std::to_string(i) + " N" + std::to_string(i + 1) +
            " 50\n";
  }
  std::string path;
  for (int i = 0; i <= channels; ++i) path += " N" + std::to_string(i);
  spec += "class fwd rate " + std::to_string(rate) + " path" + path + "\n";
  std::string reverse;
  for (int i = channels; i >= 0; --i) reverse += " N" + std::to_string(i);
  spec += "class back rate " + std::to_string(rate / 2.0) + " path" +
          reverse + "\n";
  return spec;
}

std::string json_escape(const std::string& s) {
  std::string out;
  obs::JsonWriter::append_escaped(out, s);
  return out;
}

/// The mixed request stream: evaluates and dimensions over four
/// distinct topologies, ids 0..n-1.
std::vector<std::string> request_lines(int n) {
  const std::string specs[] = {
      json_escape(spec_text(2, 20.0)), json_escape(spec_text(3, 15.0)),
      json_escape(spec_text(4, 10.0)), json_escape(spec_text(2, 25.0))};
  std::vector<std::string> lines;
  lines.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const std::string& spec = specs[i % 4];
    if (i % 3 == 0) {
      lines.push_back("{\"op\":\"dimension\",\"spec\":\"" + spec +
                      "\",\"max_window\":6,\"id\":" + std::to_string(i) + "}");
    } else {
      lines.push_back("{\"op\":\"evaluate\",\"spec\":\"" + spec +
                      "\",\"windows\":[" + std::to_string(1 + i % 4) + "," +
                      std::to_string(1 + i % 2) +
                      "],\"id\":" + std::to_string(i) + "}");
    }
  }
  return lines;
}

serve::ServeOptions options_with(int threads) {
  serve::ServeOptions options;
  options.threads = threads;
  options.enable_metrics = false;
  return options;
}

TEST(ServeConcurrency, RepliesAreByteIdenticalToSingleShotAnswers) {
  const std::vector<std::string> lines = request_lines(24);

  // Reference answers: a fresh serial server per line, so no cache or
  // workspace state can leak between requests.
  std::vector<std::string> expected;
  for (const std::string& line : lines) {
    serve::Server one_shot(options_with(1));
    expected.push_back(one_shot.handle_line(line).json);
  }

  // One shared server, four worker threads, six client threads issuing
  // interleaved overlapping subsets.
  serve::Server server(options_with(4));
  constexpr int kClients = 6;
  std::vector<std::vector<std::string>> got(kClients);
  {
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([c, &lines, &got, &server]() {
        for (std::size_t i = static_cast<std::size_t>(c) % 3;
             i < lines.size(); i += 2) {
          got[static_cast<std::size_t>(c)].push_back(
              server.handle_line(lines[i]).json);
        }
      });
    }
    for (std::thread& t : clients) t.join();
  }
  for (int c = 0; c < kClients; ++c) {
    std::size_t k = 0;
    for (std::size_t i = static_cast<std::size_t>(c) % 3; i < lines.size();
         i += 2, ++k) {
      EXPECT_EQ(got[static_cast<std::size_t>(c)][k], expected[i])
          << "client " << c << " line " << i;
    }
  }

  // Cache accounting: every evaluate/dimension did exactly one lookup.
  const serve::CacheStats cs = server.cache_stats();
  std::uint64_t lookups = 0;
  for (int c = 0; c < kClients; ++c) {
    lookups += got[static_cast<std::size_t>(c)].size();
  }
  EXPECT_EQ(cs.hits + cs.misses, lookups);
  // Four distinct topologies; racy duplicate compiles are counted as
  // hits by the cache, so misses is exactly the entry count.
  EXPECT_EQ(cs.entries, 4u);
  EXPECT_EQ(cs.misses, 4u);
}

TEST(ServeConcurrency, PipelinedStreamPreservesRequestOrder) {
  const std::vector<std::string> lines = request_lines(30);
  std::string input;
  for (const std::string& line : lines) input += line + "\n";

  serve::Server server(options_with(4));
  std::istringstream in(input);
  std::ostringstream out;
  EXPECT_EQ(server.serve_stream(in, out), 0);

  std::istringstream replies(out.str());
  std::string line;
  std::size_t index = 0;
  while (std::getline(replies, line)) {
    const auto doc = obs::parse_json(line);
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->find("id")->number, static_cast<double>(index))
        << "reply out of order at position " << index;
    ++index;
  }
  EXPECT_EQ(index, lines.size());
}

TEST(ServeConcurrency, ConcurrentStreamsShareOneServer) {
  const std::vector<std::string> lines = request_lines(12);
  serve::Server server(options_with(4));

  std::vector<std::string> outputs(3);
  {
    std::vector<std::thread> conns;
    for (int c = 0; c < 3; ++c) {
      conns.emplace_back([c, &lines, &outputs, &server]() {
        std::string input;
        for (const std::string& line : lines) input += line + "\n";
        std::istringstream in(input);
        std::ostringstream out;
        server.serve_stream(in, out);
        outputs[static_cast<std::size_t>(c)] = out.str();
      });
    }
    for (std::thread& t : conns) t.join();
  }
  // Every connection got the same ordered byte stream.
  EXPECT_FALSE(outputs[0].empty());
  EXPECT_EQ(outputs[0], outputs[1]);
  EXPECT_EQ(outputs[0], outputs[2]);
}

}  // namespace
}  // namespace windim
