#include <gtest/gtest.h>

#include "exact/buzen.h"
#include "mva/single_chain.h"

namespace windim::mva {
namespace {

qn::Station fcfs(const std::string& name) {
  qn::Station s;
  s.name = name;
  s.discipline = qn::Discipline::kFcfs;
  return s;
}

std::vector<SingleChainStation> cycle(const std::vector<double>& demands) {
  std::vector<SingleChainStation> stations;
  for (std::size_t i = 0; i < demands.size(); ++i) {
    stations.push_back({fcfs("q" + std::to_string(i)), demands[i]});
  }
  return stations;
}

qn::NetworkModel cycle_model(const std::vector<double>& demands,
                             int population) {
  qn::NetworkModel m;
  qn::Chain c;
  c.type = qn::ChainType::kClosed;
  c.population = population;
  for (double d : demands) {
    const int idx = m.add_station(fcfs("q"));
    c.visits.push_back({idx, 1.0, d});
  }
  m.add_chain(std::move(c));
  return m;
}

TEST(SingleChainMvaTest, SingleCustomerHasNoQueueing) {
  const std::vector<double> demands{0.1, 0.2, 0.3};
  const SingleChainResult r = solve_single_chain(cycle(demands), 1);
  EXPECT_NEAR(r.throughput[1], 1.0 / 0.6, 1e-12);
  for (std::size_t n = 0; n < demands.size(); ++n) {
    EXPECT_NEAR(r.mean_time[1][n], demands[n], 1e-12);
  }
}

TEST(SingleChainMvaTest, MatchesBuzenAtEveryPopulation) {
  const std::vector<double> demands{0.12, 0.3, 0.07, 0.2};
  const SingleChainResult mva = solve_single_chain(cycle(demands), 8);
  for (int k = 1; k <= 8; ++k) {
    const exact::BuzenResult buzen =
        exact::solve_buzen(cycle_model(demands, k));
    EXPECT_NEAR(mva.throughput[static_cast<std::size_t>(k)],
                buzen.throughput, 1e-10)
        << "population " << k;
    for (std::size_t n = 0; n < demands.size(); ++n) {
      EXPECT_NEAR(mva.mean_number[static_cast<std::size_t>(k)][n],
                  buzen.mean_number[n], 1e-9);
    }
  }
}

TEST(SingleChainMvaTest, BalancedNetworkClosedForm) {
  const int M = 5, K = 7;
  const double x = 0.04;
  const SingleChainResult r =
      solve_single_chain(cycle(std::vector<double>(M, x)), K);
  EXPECT_NEAR(r.throughput[K], K / (x * (K + M - 1)), 1e-10);
}

TEST(SingleChainMvaTest, QueueLengthsSumToPopulation) {
  const SingleChainResult r = solve_single_chain(cycle({0.1, 0.4, 0.25}), 9);
  for (int k = 0; k <= 9; ++k) {
    double total = 0.0;
    for (double n : r.mean_number[static_cast<std::size_t>(k)]) total += n;
    EXPECT_NEAR(total, k, 1e-9);
  }
}

TEST(SingleChainMvaTest, QueueGrowthPerCustomerBoundedByOne) {
  // The WINDIM sigma estimate relies on N(k) - N(k-1) in [0, 1].
  const SingleChainResult r =
      solve_single_chain(cycle({0.1, 0.5, 0.2, 0.3}), 15);
  for (int k = 1; k <= 15; ++k) {
    for (std::size_t n = 0; n < 4; ++n) {
      const double inc = r.mean_number[static_cast<std::size_t>(k)][n] -
                         r.mean_number[static_cast<std::size_t>(k) - 1][n];
      EXPECT_GE(inc, -1e-12);
      EXPECT_LE(inc, 1.0 + 1e-12);
    }
  }
}

TEST(SingleChainMvaTest, IsStationIsPureDelay) {
  std::vector<SingleChainStation> stations = cycle({0.1, 0.2});
  stations[1].station.discipline = qn::Discipline::kInfiniteServer;
  const SingleChainResult r = solve_single_chain(stations, 6);
  for (int k = 1; k <= 6; ++k) {
    EXPECT_NEAR(r.mean_time[static_cast<std::size_t>(k)][1], 0.2, 1e-12);
  }
  // Cross-check against Buzen with an IS station.
  qn::NetworkModel m;
  const int a = m.add_station(fcfs("a"));
  qn::Station is;
  is.name = "is";
  is.discipline = qn::Discipline::kInfiniteServer;
  const int b = m.add_station(std::move(is));
  qn::Chain c;
  c.type = qn::ChainType::kClosed;
  c.population = 6;
  c.visits = {{a, 1.0, 0.1}, {b, 1.0, 0.2}};
  m.add_chain(std::move(c));
  EXPECT_NEAR(r.throughput[6], exact::solve_buzen(m).throughput, 1e-10);
}

TEST(SingleChainMvaTest, QueueDependentStationMatchesBuzen) {
  std::vector<SingleChainStation> stations = cycle({0.4, 0.15});
  stations[0].station.rate_multipliers = {1.0, 2.0};  // M/M/2
  const SingleChainResult mva = solve_single_chain(stations, 7);

  qn::NetworkModel m;
  qn::Station mm2 = fcfs("mm2");
  mm2.rate_multipliers = {1.0, 2.0};
  const int a = m.add_station(std::move(mm2));
  const int b = m.add_station(fcfs("b"));
  qn::Chain c;
  c.type = qn::ChainType::kClosed;
  c.population = 7;
  c.visits = {{a, 1.0, 0.4}, {b, 1.0, 0.15}};
  m.add_chain(std::move(c));
  const exact::BuzenResult buzen = exact::solve_buzen(m);

  EXPECT_NEAR(mva.throughput[7], buzen.throughput, 1e-9);
  EXPECT_NEAR(mva.mean_number[7][0], buzen.mean_number[0], 1e-8);
  EXPECT_NEAR(mva.mean_number[7][1], buzen.mean_number[1], 1e-8);
}

TEST(SingleChainMvaTest, UnvisitedStationStaysEmpty) {
  std::vector<SingleChainStation> stations = cycle({0.1, 0.2});
  stations.push_back({fcfs("unused"), 0.0});
  const SingleChainResult r = solve_single_chain(stations, 4);
  EXPECT_DOUBLE_EQ(r.mean_number[4][2], 0.0);
  EXPECT_DOUBLE_EQ(r.mean_time[4][2], 0.0);
}

TEST(SingleChainMvaTest, ZeroPopulation) {
  const SingleChainResult r = solve_single_chain(cycle({0.1}), 0);
  EXPECT_DOUBLE_EQ(r.throughput[0], 0.0);
}

TEST(SingleChainMvaTest, RejectsBadInput) {
  EXPECT_THROW((void)solve_single_chain(cycle({0.1}), -1),
               std::invalid_argument);
  EXPECT_THROW((void)solve_single_chain(cycle({0.0, 0.0}), 2),
               std::invalid_argument);
}

TEST(SingleChainMvaTest, ModelOverloadMatchesVectorOverload) {
  const std::vector<double> demands{0.1, 0.3};
  const SingleChainResult a = solve_single_chain(cycle(demands), 5);
  const SingleChainResult b = solve_single_chain(cycle_model(demands, 5));
  EXPECT_NEAR(a.throughput[5], b.throughput[5], 1e-12);
}

}  // namespace
}  // namespace windim::mva
