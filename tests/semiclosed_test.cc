#include <gtest/gtest.h>

#include <cmath>

#include "exact/buzen.h"
#include "exact/convolution.h"
#include "exact/mm_queues.h"
#include "exact/semiclosed.h"
#include "net/examples.h"
#include "sim/msgnet_sim.h"
#include "windim/windim.h"

namespace windim::exact {
namespace {

qn::Station fcfs(const std::string& name) {
  qn::Station s;
  s.name = name;
  s.discipline = qn::Discipline::kFcfs;
  return s;
}

qn::NetworkModel single_station(double service_time) {
  qn::NetworkModel m;
  const int a = m.add_station(fcfs("q"));
  qn::Chain c;
  c.type = qn::ChainType::kClosed;
  c.population = 0;
  c.visits = {{a, 1.0, service_time}};
  m.add_chain(std::move(c));
  return m;
}

TEST(SemiclosedTest, SingleStationReducesToMM1K) {
  // One fixed-rate station, bounds [0, K], Poisson arrivals: the
  // population process is exactly M/M/1/K.
  const double lambda = 30.0, mu = 50.0;
  const int k_max = 5;
  const qn::NetworkModel m = single_station(1.0 / mu);
  const SemiclosedResult r =
      solve_semiclosed(m, {{lambda, 0, k_max}});

  const double rho = lambda / mu;
  double norm = 0.0;
  for (int k = 0; k <= k_max; ++k) norm += std::pow(rho, k);
  for (int k = 0; k <= k_max; ++k) {
    EXPECT_NEAR(r.population_marginal[0][static_cast<std::size_t>(k)],
                std::pow(rho, k) / norm, 1e-10)
        << "k=" << k;
  }
  EXPECT_NEAR(r.blocking_probability[0], std::pow(rho, k_max) / norm, 1e-10);
  EXPECT_NEAR(r.carried_throughput[0],
              lambda * (1.0 - std::pow(rho, k_max) / norm), 1e-8);
  // Mean queue = mean population for a single station.
  EXPECT_NEAR(r.queue_length(0, 0), r.mean_population[0], 1e-10);
}

TEST(SemiclosedTest, LargeBoundApproachesOpenMM1) {
  const double lambda = 20.0, mu = 50.0;
  const qn::NetworkModel m = single_station(1.0 / mu);
  const SemiclosedResult r = solve_semiclosed(m, {{lambda, 0, 60}});
  const MM1 reference(lambda, mu);
  EXPECT_NEAR(r.mean_population[0], reference.mean_number(), 1e-6);
  EXPECT_LT(r.blocking_probability[0], 1e-10);
}

TEST(SemiclosedTest, DegenerateBoundsReduceToClosedNetwork) {
  // H- = H+ = E pins the population: results must equal the closed
  // network at population E (and be independent of the arrival rate).
  qn::NetworkModel m;
  const int a = m.add_station(fcfs("a"));
  const int b = m.add_station(fcfs("b"));
  qn::Chain c;
  c.type = qn::ChainType::kClosed;
  c.population = 0;
  c.visits = {{a, 1.0, 0.1}, {b, 1.0, 0.25}};
  m.add_chain(std::move(c));

  const SemiclosedResult pinned = solve_semiclosed(m, {{7.0, 4, 4}});
  EXPECT_NEAR(pinned.mean_population[0], 4.0, 1e-10);

  qn::NetworkModel closed = m;
  // Rebuild with population 4 for the Buzen reference.
  qn::NetworkModel ref;
  const int a2 = ref.add_station(fcfs("a"));
  const int b2 = ref.add_station(fcfs("b"));
  qn::Chain rc;
  rc.type = qn::ChainType::kClosed;
  rc.population = 4;
  rc.visits = {{a2, 1.0, 0.1}, {b2, 1.0, 0.25}};
  ref.add_chain(std::move(rc));
  const BuzenResult buzen = solve_buzen(ref);
  EXPECT_NEAR(pinned.queue_length(0, 0), buzen.mean_number[0], 1e-9);
  EXPECT_NEAR(pinned.queue_length(1, 0), buzen.mean_number[1], 1e-9);

  const SemiclosedResult other_rate = solve_semiclosed(m, {{99.0, 4, 4}});
  EXPECT_NEAR(other_rate.queue_length(0, 0), pinned.queue_length(0, 0),
              1e-10);
  (void)closed;
}

TEST(SemiclosedTest, BruteForceTwoChainCrossCheck) {
  // Two chains sharing a station; enumerate the semiclosed product form
  // by hand and compare everything.
  qn::NetworkModel m;
  const int a = m.add_station(fcfs("a"));
  const int shared = m.add_station(fcfs("shared"));
  const int b = m.add_station(fcfs("b"));
  qn::Chain c1;
  c1.type = qn::ChainType::kClosed;
  c1.visits = {{a, 1.0, 0.08}, {shared, 1.0, 0.05}};
  m.add_chain(std::move(c1));
  qn::Chain c2;
  c2.type = qn::ChainType::kClosed;
  c2.visits = {{shared, 1.0, 0.05}, {b, 1.0, 0.11}};
  m.add_chain(std::move(c2));
  const std::vector<SemiclosedChainSpec> specs{{9.0, 0, 3}, {6.0, 1, 2}};
  const SemiclosedResult r = solve_semiclosed(m, specs);

  // Brute force: g(h) from convolution at each population vector.
  double z = 0.0;
  double mean0 = 0.0, block0 = 0.0;
  for (int h1 = 0; h1 <= 3; ++h1) {
    for (int h2 = 1; h2 <= 2; ++h2) {
      qn::NetworkModel fixed;
      const int a2 = fixed.add_station(fcfs("a"));
      const int s2 = fixed.add_station(fcfs("shared"));
      const int b2 = fixed.add_station(fcfs("b"));
      qn::Chain f1;
      f1.type = qn::ChainType::kClosed;
      f1.population = h1;
      f1.visits = {{a2, 1.0, 0.08}, {s2, 1.0, 0.05}};
      fixed.add_chain(std::move(f1));
      qn::Chain f2;
      f2.type = qn::ChainType::kClosed;
      f2.population = h2;
      f2.visits = {{s2, 1.0, 0.05}, {b2, 1.0, 0.11}};
      fixed.add_chain(std::move(f2));
      // Unnormalized product-form weight: brute-force g (absolute
      // demands) times the arrival factors.
      const ProductFormResult pf = solve_product_form(fixed);
      const double w =
          std::pow(9.0, h1) * std::pow(6.0, h2) * pf.g;
      z += w;
      mean0 += w * h1;
      if (h1 == 3) block0 += w;
    }
  }
  EXPECT_NEAR(r.mean_population[0], mean0 / z, 1e-8);
  EXPECT_NEAR(r.blocking_probability[0], block0 / z, 1e-8);
  // Lower bound H- = 1 respected for chain 2.
  EXPECT_NEAR(r.population_marginal[1][0], 0.0, 1e-12);
}

TEST(SemiclosedTest, PopulationProbabilitySumsToOne) {
  qn::NetworkModel m;
  const int a = m.add_station(fcfs("a"));
  const int b = m.add_station(fcfs("b"));
  qn::Chain c;
  c.type = qn::ChainType::kClosed;
  c.visits = {{a, 1.0, 0.1}, {b, 1.0, 0.05}};
  m.add_chain(std::move(c));
  const SemiclosedResult r = solve_semiclosed(m, {{12.0, 0, 6}});
  double total = 0.0;
  for (double p : r.population_probability) total += p;
  EXPECT_NEAR(total, 1.0, 1e-10);
  double marginal_total = 0.0;
  for (double p : r.population_marginal[0]) marginal_total += p;
  EXPECT_NEAR(marginal_total, 1.0, 1e-10);
}

TEST(SemiclosedTest, MeanQueueMatchesMeanPopulation) {
  // Station queue lengths summed over stations must equal the mean
  // population of each chain.
  qn::NetworkModel m;
  const int a = m.add_station(fcfs("a"));
  const int shared = m.add_station(fcfs("shared"));
  qn::Chain c1;
  c1.type = qn::ChainType::kClosed;
  c1.visits = {{a, 1.0, 0.06}, {shared, 1.0, 0.04}};
  m.add_chain(std::move(c1));
  qn::Chain c2;
  c2.type = qn::ChainType::kClosed;
  c2.visits = {{shared, 1.0, 0.04}};
  m.add_chain(std::move(c2));
  const SemiclosedResult r =
      solve_semiclosed(m, {{10.0, 0, 4}, {15.0, 0, 3}});
  for (int chain = 0; chain < 2; ++chain) {
    double total = 0.0;
    for (int n = 0; n < 2; ++n) total += r.queue_length(n, chain);
    EXPECT_NEAR(total, r.mean_population[static_cast<std::size_t>(chain)],
                1e-8)
        << "chain " << chain;
  }
}

TEST(SemiclosedTest, BlockingGrowsWithLoad) {
  const qn::NetworkModel m = single_station(0.02);
  double previous = 0.0;
  for (double lambda : {10.0, 25.0, 40.0, 60.0, 90.0}) {
    const SemiclosedResult r = solve_semiclosed(m, {{lambda, 0, 4}});
    EXPECT_GT(r.blocking_probability[0], previous);
    previous = r.blocking_probability[0];
  }
}

TEST(SemiclosedTest, ZeroArrivalRateEmptiesChain) {
  const qn::NetworkModel m = single_station(0.02);
  const SemiclosedResult r = solve_semiclosed(m, {{0.0, 0, 5}});
  EXPECT_NEAR(r.population_marginal[0][0], 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(r.carried_throughput[0], 0.0);
}

// -------------------------------------------------- global (isarithmic) bound

TEST(SemiclosedGlobalTest, LooseGlobalBoundChangesNothing) {
  qn::NetworkModel m;
  const int a = m.add_station(fcfs("a"));
  const int b = m.add_station(fcfs("b"));
  qn::Chain c;
  c.type = qn::ChainType::kClosed;
  c.visits = {{a, 1.0, 0.05}, {b, 1.0, 0.08}};
  m.add_chain(std::move(c));
  const std::vector<SemiclosedChainSpec> specs{{15.0, 0, 5}};
  const SemiclosedResult plain = solve_semiclosed(m, specs);
  const SemiclosedResult loose =
      solve_semiclosed(m, specs, {0, 99});
  EXPECT_NEAR(plain.carried_throughput[0], loose.carried_throughput[0],
              1e-12);
  EXPECT_NEAR(plain.blocking_probability[0], loose.blocking_probability[0],
              1e-12);
}

TEST(SemiclosedGlobalTest, SingleChainGlobalEqualsOwnBound) {
  // With one chain a global cap I and a per-chain bound I coincide.
  const double mu = 50.0;
  qn::NetworkModel m;
  const int a = m.add_station(fcfs("q"));
  qn::Chain c;
  c.type = qn::ChainType::kClosed;
  c.visits = {{a, 1.0, 1.0 / mu}};
  m.add_chain(std::move(c));
  const SemiclosedResult own = solve_semiclosed(m, {{30.0, 0, 3}});
  const SemiclosedResult global =
      solve_semiclosed(m, {{30.0, 0, 10}}, {0, 3});
  EXPECT_NEAR(own.carried_throughput[0], global.carried_throughput[0],
              1e-10);
  EXPECT_NEAR(own.blocking_probability[0], global.blocking_probability[0],
              1e-10);
}

TEST(SemiclosedGlobalTest, GlobalCapBlocksBothChainsTogether) {
  // Two chains, generous per-chain bounds, tight global cap: blocking
  // probabilities include the shared-permit contention and carried
  // throughput is monotone in the cap.
  qn::NetworkModel m;
  const int a = m.add_station(fcfs("a"));
  const int shared = m.add_station(fcfs("shared"));
  const int b = m.add_station(fcfs("b"));
  qn::Chain c1;
  c1.type = qn::ChainType::kClosed;
  c1.visits = {{a, 1.0, 0.06}, {shared, 1.0, 0.04}};
  m.add_chain(std::move(c1));
  qn::Chain c2;
  c2.type = qn::ChainType::kClosed;
  c2.visits = {{shared, 1.0, 0.04}, {b, 1.0, 0.07}};
  m.add_chain(std::move(c2));
  const std::vector<SemiclosedChainSpec> specs{{20.0, 0, 8}, {20.0, 0, 8}};
  double previous = 0.0;
  for (int cap : {1, 2, 4, 8, 16}) {
    const SemiclosedResult r = solve_semiclosed(m, specs, {0, cap});
    const double carried =
        r.carried_throughput[0] + r.carried_throughput[1];
    EXPECT_GT(carried, previous) << "cap " << cap;
    previous = carried;
    // Population never exceeds the cap.
    double mean_total = r.mean_population[0] + r.mean_population[1];
    EXPECT_LE(mean_total, cap + 1e-9);
  }
}

TEST(SemiclosedGlobalTest, MatchesIsarithmicDropTailSimulation) {
  // The global bound IS isarithmic flow control: permits gate admission,
  // blocked arrivals lost.  Compare against the simulator in that exact
  // configuration (big per-class windows so only permits bind).
  const net::Topology topo = net::canada_topology();
  const auto classes = net::two_class_traffic(25.0, 25.0);
  const int permits = 5;

  // Analytic: route-queues-only model with a global cap.
  const core::WindowProblem problem(topo, classes);
  const qn::CyclicNetwork net = problem.network({permits, permits});
  qn::NetworkModel route_model;
  for (const qn::Station& s : net.stations) route_model.add_station(s);
  std::vector<SemiclosedChainSpec> specs;
  for (int r = 0; r < 2; ++r) {
    qn::Chain chain;
    chain.type = qn::ChainType::kClosed;
    const auto& cyc = net.chains[static_cast<std::size_t>(r)];
    for (std::size_t k = 0; k + 1 < cyc.route.size(); ++k) {
      chain.visits.push_back(
          qn::Visit{cyc.route[k], 1.0, cyc.service_times[k]});
    }
    route_model.add_chain(std::move(chain));
    specs.push_back(SemiclosedChainSpec{25.0, 0, permits});
  }
  const SemiclosedResult analytic =
      solve_semiclosed(route_model, specs, {0, permits});
  const double analytic_carried =
      analytic.carried_throughput[0] + analytic.carried_throughput[1];

  sim::MsgNetOptions options;
  options.isarithmic_permits = permits;
  options.source_queue_limit = 0;
  options.sim_time = 2500.0;
  options.warmup = 250.0;
  const sim::MsgNetResult simulated =
      sim::simulate_msgnet(topo, classes, options);

  EXPECT_NEAR(simulated.delivered_rate, analytic_carried,
              0.05 * analytic_carried);
}

TEST(SemiclosedGlobalTest, RejectsEmptyBand) {
  qn::NetworkModel m = single_station(0.02);
  EXPECT_THROW((void)solve_semiclosed(m, {{5.0, 0, 2}}, {3, 5}),
               std::invalid_argument);
  EXPECT_THROW((void)solve_semiclosed(m, {{5.0, 2, 4}}, {0, 1}),
               std::invalid_argument);
  EXPECT_THROW((void)solve_semiclosed(m, {{5.0, 0, 2}}, {-1, 2}),
               std::invalid_argument);
}

TEST(SemiclosedTest, RejectsMalformedInput) {
  const qn::NetworkModel m = single_station(0.02);
  EXPECT_THROW((void)solve_semiclosed(m, {}), std::invalid_argument);
  EXPECT_THROW((void)solve_semiclosed(m, {{1.0, 3, 2}}),
               std::invalid_argument);
  EXPECT_THROW((void)solve_semiclosed(m, {{1.0, -1, 2}}),
               std::invalid_argument);
  EXPECT_THROW((void)solve_semiclosed(m, {{-1.0, 0, 2}}),
               std::invalid_argument);
}

// ------------------------------------------------ semiclosed window model

TEST(SemiclosedWindowTest, EvaluatorRunsOnTwoClassNetwork) {
  const core::WindowProblem problem(net::canada_topology(),
                                    net::two_class_traffic(20.0, 20.0));
  const core::Evaluation ev =
      problem.evaluate({4, 4}, core::Evaluator::kSemiclosed);
  EXPECT_GT(ev.throughput, 0.0);
  EXPECT_LE(ev.class_throughput[0], 20.0 + 1e-9);  // carried <= offered
  EXPECT_GT(ev.power, 0.0);
}

TEST(SemiclosedWindowTest, MatchesDropTailSimulator) {
  // The semiclosed model is the exact analytic counterpart of the
  // simulator with source_queue_limit = 0 (arrivals finding the window
  // closed are lost).  Throughputs should agree within noise.
  const std::vector<int> windows{3, 3};
  const core::WindowProblem problem(net::canada_topology(),
                                    net::two_class_traffic(25.0, 25.0));
  const core::Evaluation analytic =
      problem.evaluate(windows, core::Evaluator::kSemiclosed);

  sim::MsgNetOptions options;
  options.windows = windows;
  options.source_queue_limit = 0;
  options.sim_time = 2000.0;
  options.warmup = 200.0;
  const sim::MsgNetResult simulated = sim::simulate_msgnet(
      net::canada_topology(), net::two_class_traffic(25.0, 25.0), options);

  EXPECT_NEAR(simulated.delivered_rate, analytic.throughput,
              0.05 * analytic.throughput);
}

TEST(SemiclosedWindowTest, ConvergesToClosedModelOrdering) {
  // Both models must agree on the qualitative effect of the window:
  // throughput increasing in E, delay increasing in E.
  const core::WindowProblem problem(net::canada_topology(),
                                    net::two_class_traffic(30.0, 30.0));
  double prev_thr = 0.0, prev_delay = 0.0;
  for (int e = 1; e <= 6; ++e) {
    const core::Evaluation ev =
        problem.evaluate({e, e}, core::Evaluator::kSemiclosed);
    EXPECT_GT(ev.throughput, prev_thr);
    EXPECT_GT(ev.mean_delay, prev_delay);
    prev_thr = ev.throughput;
    prev_delay = ev.mean_delay;
  }
}

TEST(SemiclosedWindowTest, ZeroWindowBlocksEverything) {
  const core::WindowProblem problem(net::canada_topology(),
                                    net::two_class_traffic(20.0, 20.0));
  const core::Evaluation ev =
      problem.evaluate({0, 3}, core::Evaluator::kSemiclosed);
  EXPECT_DOUBLE_EQ(ev.class_throughput[0], 0.0);
  EXPECT_GT(ev.class_throughput[1], 0.0);
}

TEST(SemiclosedWindowTest, EvaluatorName) {
  EXPECT_STREQ(core::to_string(core::Evaluator::kSemiclosed), "semiclosed");
}

}  // namespace
}  // namespace windim::exact
