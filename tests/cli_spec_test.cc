#include <gtest/gtest.h>

#include "cli/spec.h"
#include "util/rng.h"
#include "windim/windim.h"

namespace windim::cli {
namespace {

constexpr const char* kValidSpec = R"(
# two nodes, one channel, one class
node A
node B
channel A B 50
class flow rate 20 bits 1000 path A B
)";

TEST(SpecParserTest, ParsesValidSpec) {
  const NetworkSpec spec = parse_network_spec(std::string(kValidSpec));
  EXPECT_EQ(spec.topology.num_nodes(), 2);
  EXPECT_EQ(spec.topology.num_channels(), 1);
  ASSERT_EQ(spec.classes.size(), 1u);
  EXPECT_EQ(spec.classes[0].name, "flow");
  EXPECT_DOUBLE_EQ(spec.classes[0].arrival_rate, 20.0);
  EXPECT_DOUBLE_EQ(spec.classes[0].mean_message_bits, 1000.0);
  EXPECT_EQ(spec.classes[0].path,
            (std::vector<std::string>{"A", "B"}));
}

TEST(SpecParserTest, BitsIsOptional) {
  const NetworkSpec spec = parse_network_spec(
      "node A\nnode B\nchannel A B 50\nclass f rate 5 path A B\n");
  EXPECT_DOUBLE_EQ(spec.classes[0].mean_message_bits, 1000.0);
}

TEST(SpecParserTest, CommentsAndBlankLinesIgnored) {
  const NetworkSpec spec = parse_network_spec(
      "# header\n\nnode A  # inline comment\nnode B\n"
      "channel A B 25\n\nclass f rate 1 path A B\n");
  EXPECT_EQ(spec.topology.num_nodes(), 2);
  EXPECT_DOUBLE_EQ(spec.topology.channel(0).capacity_kbps, 25.0);
}

TEST(SpecParserTest, ErrorsCarryLineNumbers) {
  try {
    (void)parse_network_spec("node A\nnode B\nchannel A B fifty\n");
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_EQ(e.line(), 3);
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(SpecParserTest, RejectsUnknownDirective) {
  EXPECT_THROW((void)parse_network_spec("link A B 50\n"), SpecError);
}

TEST(SpecParserTest, RejectsUnroutablePath) {
  EXPECT_THROW((void)parse_network_spec(
                   "node A\nnode B\nnode C\nchannel A B 50\n"
                   "class f rate 1 path A C\n"),
               SpecError);
}

TEST(SpecParserTest, RejectsClassWithoutRate) {
  EXPECT_THROW((void)parse_network_spec(
                   "node A\nnode B\nchannel A B 50\nclass f path A B\n"),
               SpecError);
}

TEST(SpecParserTest, RejectsClassWithShortPath) {
  EXPECT_THROW((void)parse_network_spec(
                   "node A\nnode B\nchannel A B 50\nclass f rate 1 path A\n"),
               SpecError);
}

TEST(SpecParserTest, RejectsEmptySpec) {
  EXPECT_THROW((void)parse_network_spec(""), SpecError);
  EXPECT_THROW((void)parse_network_spec("node A\n"), SpecError);
}

TEST(SpecParserTest, RejectsDuplicateNode) {
  try {
    (void)parse_network_spec("node A\nnode A\n");
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_EQ(e.line(), 2);
  }
}

TEST(SpecParserTest, RenderRoundTrips) {
  const NetworkSpec spec = parse_network_spec(std::string(kValidSpec));
  const std::string rendered = render_network_spec(spec);
  const NetworkSpec again = parse_network_spec(rendered);
  EXPECT_EQ(again.topology.num_nodes(), spec.topology.num_nodes());
  EXPECT_EQ(again.topology.num_channels(), spec.topology.num_channels());
  ASSERT_EQ(again.classes.size(), spec.classes.size());
  EXPECT_EQ(again.classes[0].path, spec.classes[0].path);
  EXPECT_DOUBLE_EQ(again.classes[0].arrival_rate,
                   spec.classes[0].arrival_rate);
}

TEST(SpecParserTest, RandomGarbageNeverCrashes) {
  // Robustness sweep: random token soup must always produce SpecError
  // (or parse), never crash or hang.
  util::Rng rng(99);
  const char* words[] = {"node",    "channel", "class", "rate", "path",
                         "bits",    "A",       "B",     "50",   "-3",
                         "1e999",   "#x",      "",      "zz",   "nan"};
  for (int trial = 0; trial < 200; ++trial) {
    std::string text;
    const int lines = rng.uniform_int(1, 6);
    for (int l = 0; l < lines; ++l) {
      const int tokens = rng.uniform_int(0, 6);
      for (int t = 0; t < tokens; ++t) {
        text += words[rng.uniform_int(0, 14)];
        text += ' ';
      }
      text += '\n';
    }
    try {
      (void)parse_network_spec(text);
    } catch (const SpecError&) {
      // expected for almost every trial
    }
  }
  SUCCEED();
}

TEST(SpecParserTest, ParsedSpecFeedsWindim) {
  const NetworkSpec spec = parse_network_spec(
      "node A\nnode B\nnode C\nchannel A B 50\nchannel B C 50\n"
      "class f1 rate 15 path A B C\nclass f2 rate 15 path C B A\n");
  const core::WindowProblem problem(spec.topology, spec.classes);
  const core::DimensionResult r = core::dimension_windows(problem);
  EXPECT_EQ(r.optimal_windows.size(), 2u);
  EXPECT_GT(r.evaluation.power, 0.0);
}

}  // namespace
}  // namespace windim::cli
