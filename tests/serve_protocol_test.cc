// Golden protocol conformance + fault injection for `windim serve`.
//
// Drives the daemon through its --stdio discipline (Server::handle_line
// and serve_stream): every request type produces the documented reply
// envelope, and every malformed input — broken JSON, unknown ops and
// fields, duplicate keys, bad values, oversized payloads, truncated
// input, expired deadlines — produces a TYPED error reply, with the
// server provably alive after each one.
#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "verify/corpus.h"
#include "verify/gen.h"

namespace windim {
namespace {

constexpr const char* kSpec =
    "node A\nnode B\nnode C\n"
    "channel A B 50\nchannel B C 50\n"
    "class east rate 20 path A B C\n"
    "class west rate 10 path C B\n";

std::string json_escape(const std::string& s) {
  std::string out;
  obs::JsonWriter::append_escaped(out, s);
  return out;
}

std::string evaluate_line(int id) {
  return "{\"op\":\"evaluate\",\"spec\":\"" + json_escape(kSpec) +
         "\",\"windows\":[2,1],\"id\":" + std::to_string(id) + "}";
}

/// Parses a reply line; fails the test on invalid JSON.
obs::JsonValue parse_reply(const std::string& line) {
  const std::optional<obs::JsonValue> doc = obs::parse_json(line);
  EXPECT_TRUE(doc.has_value()) << "reply is not valid JSON: " << line;
  return doc.value_or(obs::JsonValue{});
}

std::string error_code(const obs::JsonValue& reply) {
  const obs::JsonValue* err = reply.find("error");
  if (err == nullptr) return "";
  return std::string(err->string_or("code", ""));
}

/// The liveness probe the fault-injection cases run after every error:
/// a well-formed request must still succeed.
void expect_alive(serve::Server& server) {
  const auto reply =
      parse_reply(server.handle_line(evaluate_line(999)).json);
  EXPECT_EQ(reply.find("ok")->boolean, true)
      << "server no longer answers well-formed requests";
}

serve::ServeOptions serial_options() {
  serve::ServeOptions options;
  options.threads = 1;
  options.enable_metrics = false;
  return options;
}

TEST(ServeProtocol, EvaluateReplyCarriesEnvelopeAndResult) {
  serve::Server server(serial_options());
  const auto r = server.handle_line(evaluate_line(7));
  EXPECT_FALSE(r.shutdown);
  const obs::JsonValue reply = parse_reply(r.json);
  EXPECT_EQ(reply.find("id")->number, 7.0);
  EXPECT_EQ(reply.string_or("op", ""), "evaluate");
  EXPECT_TRUE(reply.find("ok")->boolean);
  const obs::JsonValue* result = reply.find("result");
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(result->string_or("solver", ""), "heuristic-mva");
  EXPECT_GT(result->number_or("throughput", 0.0), 0.0);
  EXPECT_GT(result->number_or("power", 0.0), 0.0);
  ASSERT_NE(result->find("class_delay"), nullptr);
  EXPECT_EQ(result->find("class_delay")->array.size(), 2u);
}

TEST(ServeProtocol, RequestIdEchoesNumberStringAndNull) {
  serve::Server server(serial_options());
  const auto num = parse_reply(server.handle_line(evaluate_line(42)).json);
  EXPECT_EQ(num.find("id")->number, 42.0);

  const std::string with_string_id =
      "{\"op\":\"stats\",\"id\":\"job-9\"}";
  const auto str = parse_reply(server.handle_line(with_string_id).json);
  EXPECT_EQ(std::string(str.find("id")->string), "job-9");

  const auto none = parse_reply(server.handle_line("{\"op\":\"stats\"}").json);
  EXPECT_EQ(none.find("id")->kind, obs::JsonValue::Kind::kNull);
}

TEST(ServeProtocol, DimensionAndStatsAndShutdownSucceed) {
  serve::Server server(serial_options());
  const std::string dim = "{\"op\":\"dimension\",\"spec\":\"" +
                          json_escape(kSpec) +
                          "\",\"max_window\":8,\"id\":1}";
  const auto dim_reply = parse_reply(server.handle_line(dim).json);
  EXPECT_TRUE(dim_reply.find("ok")->boolean);
  const obs::JsonValue* result = dim_reply.find("result");
  ASSERT_NE(result, nullptr);
  EXPECT_TRUE(result->find("feasible")->boolean);
  EXPECT_EQ(result->find("optimal_windows")->array.size(), 2u);

  const auto stats = parse_reply(server.handle_line("{\"op\":\"stats\"}").json);
  EXPECT_TRUE(stats.find("ok")->boolean);
  const obs::JsonValue* serve_section = stats.find("result")->find("serve");
  ASSERT_NE(serve_section, nullptr);
  EXPECT_GE(serve_section->number_or("requests", 0.0), 2.0);

  const auto down = server.handle_line("{\"op\":\"shutdown\",\"id\":2}");
  EXPECT_TRUE(down.shutdown);
  EXPECT_TRUE(parse_reply(down.json).find("ok")->boolean);
  EXPECT_TRUE(server.shutting_down());
}

TEST(ServeProtocol, FuzzReplayRunsOraclesOnSerializedEntry) {
  serve::Server server(serial_options());
  verify::CorpusEntry entry;
  entry.instance = verify::generate(verify::Family::kFcfsClosed, 3);
  const std::string line = "{\"op\":\"fuzz-replay\",\"entry\":\"" +
                           json_escape(verify::serialize(entry)) +
                           "\",\"no_ctmc\":true,\"id\":1}";
  const auto reply = parse_reply(server.handle_line(line).json);
  ASSERT_TRUE(reply.find("ok")->boolean) << reply.string_or("op", "");
  const obs::JsonValue* result = reply.find("result");
  EXPECT_TRUE(result->find("ok")->boolean);
  EXPECT_TRUE(result->find("matches_expectation")->boolean);
  EXPECT_FALSE(result->find("ran")->array.empty());
  EXPECT_TRUE(result->find("failures")->array.empty());
}

// --- fault injection ----------------------------------------------------

TEST(ServeProtocol, MalformedJsonYieldsParseErrorAndServerStaysAlive) {
  serve::Server server(serial_options());
  for (const char* bad :
       {"not json at all", "{\"op\":\"evaluate\"", "[1,2,3]", "42",
        "{\"op\":17}", "{\"spec\":\"x\"}", ""}) {
    const auto reply = parse_reply(server.handle_line(bad).json);
    EXPECT_FALSE(reply.find("ok")->boolean) << bad;
    EXPECT_EQ(error_code(reply), "parse_error") << bad;
    expect_alive(server);
  }
}

TEST(ServeProtocol, UnknownOpAndUnknownFieldAreTypedErrors) {
  serve::Server server(serial_options());
  const auto unknown_op =
      parse_reply(server.handle_line("{\"op\":\"explode\",\"id\":1}").json);
  EXPECT_EQ(error_code(unknown_op), "invalid_request");
  EXPECT_EQ(unknown_op.find("id")->number, 1.0);  // id still echoed
  expect_alive(server);

  const std::string typo = "{\"op\":\"evaluate\",\"spec\":\"" +
                           json_escape(kSpec) +
                           "\",\"windows\":[2,1],\"solvr\":\"x\"}";
  const auto unknown_field = parse_reply(server.handle_line(typo).json);
  EXPECT_EQ(error_code(unknown_field), "invalid_request");
  expect_alive(server);

  const auto duplicate = parse_reply(
      server.handle_line("{\"op\":\"stats\",\"id\":1,\"id\":2}").json);
  EXPECT_EQ(error_code(duplicate), "invalid_request");
  expect_alive(server);
}

TEST(ServeProtocol, BadValuesAreTypedErrors) {
  serve::Server server(serial_options());
  const std::string spec = json_escape(kSpec);
  const struct {
    std::string line;
    const char* code;
  } cases[] = {
      // windows: empty, fractional, negative, wrong count
      {"{\"op\":\"evaluate\",\"spec\":\"" + spec + "\",\"windows\":[]}",
       "invalid_request"},
      {"{\"op\":\"evaluate\",\"spec\":\"" + spec + "\",\"windows\":[1.5,1]}",
       "invalid_request"},
      {"{\"op\":\"evaluate\",\"spec\":\"" + spec + "\",\"windows\":[-1,1]}",
       "invalid_request"},
      {"{\"op\":\"evaluate\",\"spec\":\"" + spec + "\",\"windows\":[1]}",
       "invalid_request"},
      // unknown solver
      {"{\"op\":\"evaluate\",\"spec\":\"" + spec +
           "\",\"windows\":[1,1],\"solver\":\"nope\"}",
       "unknown_solver"},
      {"{\"op\":\"dimension\",\"spec\":\"" + spec +
           "\",\"solver\":\"nope\"}",
       "unknown_solver"},
      // unparseable network spec
      {"{\"op\":\"evaluate\",\"spec\":\"garbage here\",\"windows\":[1]}",
       "invalid_spec"},
      // bad objective / delaycap without a cap
      {"{\"op\":\"dimension\",\"spec\":\"" + spec +
           "\",\"objective\":\"speed\"}",
       "invalid_request"},
      {"{\"op\":\"dimension\",\"spec\":\"" + spec +
           "\",\"objective\":\"delaycap\"}",
       "invalid_request"},
      // non-positive thread counts are rejected at the schema
      {"{\"op\":\"evaluate\",\"spec\":\"" + spec +
           "\",\"windows\":[1,1],\"solver_threads\":0}",
       "invalid_request"},
      // corpus entry text that is not a corpus entry
      {"{\"op\":\"fuzz-replay\",\"entry\":\"bogus\"}", "invalid_spec"},
  };
  for (const auto& c : cases) {
    const auto reply = parse_reply(server.handle_line(c.line).json);
    EXPECT_FALSE(reply.find("ok")->boolean) << c.line;
    EXPECT_EQ(error_code(reply), c.code) << c.line;
    expect_alive(server);
  }
}

TEST(ServeProtocol, OversizedRequestIsRejectedUnparsed) {
  serve::ServeOptions options = serial_options();
  options.max_request_bytes = 256;
  serve::Server server(options);
  std::string big = "{\"op\":\"evaluate\",\"spec\":\"";
  big.append(1000, 'x');
  big += "\",\"windows\":[1]}";
  const auto reply = parse_reply(server.handle_line(big).json);
  EXPECT_EQ(error_code(reply), "payload_too_large");
  // Unparsed, so no id echo even though the line had none anyway.
  EXPECT_EQ(reply.find("id")->kind, obs::JsonValue::Kind::kNull);
  expect_alive(server);
}

TEST(ServeProtocol, ExpiredDeadlineYieldsDeadlineExceeded) {
  serve::Server server(serial_options());
  // A deadline of 1 nanosecond-scale ms is expired by the first
  // cooperative poll inside the solver.
  const std::string line = "{\"op\":\"evaluate\",\"spec\":\"" +
                           json_escape(kSpec) +
                           "\",\"windows\":[2,1],\"deadline_ms\":1e-6}";
  const auto reply = parse_reply(server.handle_line(line).json);
  EXPECT_FALSE(reply.find("ok")->boolean);
  EXPECT_EQ(error_code(reply), "deadline_exceeded");
  expect_alive(server);
}

TEST(ServeProtocol, StreamHandlesTruncatedInputAndStaysOrdered) {
  serve::Server server(serial_options());
  // Last line is truncated mid-object (no closing brace, no newline):
  // getline still delivers it, and it must produce a parse_error reply
  // rather than wedging or killing the loop.
  std::istringstream in(evaluate_line(1) + "\n" +
                        "{\"op\":\"stats\",\"id\":2}\n" +
                        "{\"op\":\"evaluate\",\"spec\":\"tru");
  std::ostringstream out;
  EXPECT_EQ(server.serve_stream(in, out), 0);
  std::istringstream replies(out.str());
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(replies, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(parse_reply(lines[0]).find("id")->number, 1.0);
  EXPECT_EQ(parse_reply(lines[1]).find("id")->number, 2.0);
  EXPECT_EQ(error_code(parse_reply(lines[2])), "parse_error");
}

TEST(ServeProtocol, ParetoReplyCarriesFrontAndAlphaFairReference) {
  serve::Server server(serial_options());
  const std::string line = "{\"op\":\"pareto\",\"spec\":\"" +
                           json_escape(kSpec) +
                           "\",\"points\":5,\"alpha\":\"inf\",\"id\":11}";
  const auto reply = parse_reply(server.handle_line(line).json);
  EXPECT_TRUE(reply.find("ok")->boolean);
  EXPECT_EQ(reply.string_or("op", ""), "pareto");
  const obs::JsonValue* result = reply.find("result");
  ASSERT_NE(result, nullptr);
  const obs::JsonValue* points = result->find("points");
  ASSERT_NE(points, nullptr);
  ASSERT_FALSE(points->array.empty());
  double last_fairness = -1.0;
  for (const obs::JsonValue& p : points->array) {
    EXPECT_GT(p.number_or("power", 0.0), 0.0);
    EXPECT_EQ(p.find("windows")->array.size(), 2u);
    EXPECT_EQ(p.find("initial")->array.size(), 2u);
    // Ascending fairness: the documented sort order of the front.
    EXPECT_GT(p.number_or("fairness", -1.0), last_fairness);
    last_fairness = p.number_or("fairness", -1.0);
  }
  EXPECT_GE(result->number_or("runs", 0.0), 1.0);
  const obs::JsonValue* ref = result->find("alpha_fair");
  ASSERT_NE(ref, nullptr);
  EXPECT_EQ(ref->string_or("alpha", ""), "inf");  // echoed as the string
  EXPECT_EQ(ref->find("windows")->array.size(), 2u);
}

TEST(ServeProtocol, ParetoInfeasibleFloorComesBackEmptyNotRelaxed) {
  // A fairness floor above the spec's achievable Jain maximum: the
  // golden shape is ok:true with an EMPTY front and the infeasible run
  // counted — never a silently widened scan.
  serve::Server server(serial_options());
  const std::string line = "{\"op\":\"pareto\",\"spec\":\"" +
                           json_escape(kSpec) +
                           "\",\"min_fairness\":0.9999,\"id\":12}";
  const auto reply = parse_reply(server.handle_line(line).json);
  ASSERT_TRUE(reply.find("ok")->boolean);
  const obs::JsonValue* result = reply.find("result");
  ASSERT_NE(result, nullptr);
  EXPECT_TRUE(result->find("points")->array.empty());
  EXPECT_EQ(result->number_or("runs", 0.0), 1.0);
  EXPECT_EQ(result->number_or("infeasible_runs", 0.0), 1.0);
  expect_alive(server);
}

TEST(ServeProtocol, ParetoFaultsAreTypedErrors) {
  serve::Server server(serial_options());
  const std::string spec = json_escape(kSpec);
  const struct {
    std::string line;
    const char* code;
  } cases[] = {
      // malformed alpha: only 0, 1, 2 or the string "inf" are lawful
      {"{\"op\":\"pareto\",\"spec\":\"" + spec + "\",\"alpha\":0.5}",
       "invalid_request"},
      {"{\"op\":\"pareto\",\"spec\":\"" + spec + "\",\"alpha\":\"lots\"}",
       "invalid_request"},
      // fairness floor outside [0, 1]
      {"{\"op\":\"pareto\",\"spec\":\"" + spec + "\",\"min_fairness\":1.5}",
       "invalid_request"},
      // degenerate scan resolution
      {"{\"op\":\"pareto\",\"spec\":\"" + spec + "\",\"points\":1}",
       "invalid_request"},
      // unknown solver is screened before any solve
      {"{\"op\":\"pareto\",\"spec\":\"" + spec + "\",\"solver\":\"nope\"}",
       "unknown_solver"},
      // expired deadline: refused whole, not answered with a truncated
      // front
      {"{\"op\":\"pareto\",\"spec\":\"" + spec + "\",\"deadline_ms\":1e-6}",
       "deadline_exceeded"},
      // dimension twin of the CLI check: a non-positive delay cap
      {"{\"op\":\"dimension\",\"spec\":\"" + spec + "\",\"max_delay\":0}",
       "invalid_request"},
  };
  for (const auto& c : cases) {
    const auto reply = parse_reply(server.handle_line(c.line).json);
    EXPECT_FALSE(reply.find("ok")->boolean) << c.line;
    EXPECT_EQ(error_code(reply), c.code) << c.line;
    expect_alive(server);
  }
}

TEST(ServeProtocol, ShutdownStopsIntakeAndLaterRequestsAreRefused) {
  serve::Server server(serial_options());
  std::istringstream in("{\"op\":\"shutdown\",\"id\":1}\n" +
                        evaluate_line(2) + "\n");
  std::ostringstream out;
  EXPECT_EQ(server.serve_stream(in, out), 0);
  std::istringstream replies(out.str());
  std::string first;
  ASSERT_TRUE(std::getline(replies, first));
  EXPECT_TRUE(parse_reply(first).find("ok")->boolean);
  // Requests arriving on other connections after the drain began get
  // the typed refusal, not silence or a crash.
  const auto late = parse_reply(server.handle_line(evaluate_line(3)).json);
  EXPECT_EQ(error_code(late), "shutting_down");
}

}  // namespace
}  // namespace windim
