// Accuracy regression tests for the approximate MVA solvers: both
// sigma policies (the thesis heuristic and Schweitzer-Bard) and the
// Linearizer must stay within the error envelopes recorded from fuzz
// campaigns (DESIGN.md §6) against exact multichain MVA, over a fixed
// deterministic seed set.  A regression in the fixed-point iteration
// shows up here as an envelope breach, not as a silent accuracy drift.
#include <gtest/gtest.h>

#include <cmath>

#include "mva/approx.h"
#include "mva/exact_multichain.h"
#include "mva/linearizer.h"
#include "verify/gen.h"

namespace windim {
namespace {

using verify::Family;
using verify::Instance;

constexpr int kSeeds = 30;

/// Max relative chain-throughput error of `approx` vs `exact`.
double max_rel_error(const mva::MvaSolution& approx,
                     const mva::MvaSolution& exact) {
  double worst = 0.0;
  for (std::size_t r = 0; r < exact.chain_throughput.size(); ++r) {
    const double x = exact.chain_throughput[r];
    const double e = std::abs(approx.chain_throughput[r] - x) / x;
    worst = std::max(worst, e);
  }
  return worst;
}

struct EnvelopeStats {
  double worst = 0.0;
  double sum = 0.0;
  int samples = 0;

  void add(double e) {
    worst = std::max(worst, e);
    sum += e;
    ++samples;
  }
  [[nodiscard]] double mean() const { return sum / samples; }
};

class MvaAccuracy : public ::testing::Test {
 protected:
  /// Accumulates the error of one sigma policy over the seed set.
  EnvelopeStats policy_stats(mva::SigmaPolicy policy) {
    EnvelopeStats stats;
    for (Family family : {Family::kFcfsClosed, Family::kDisciplines}) {
      for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
        const Instance inst = verify::generate(family, seed);
        const mva::MvaSolution exact =
            mva::solve_exact_multichain(inst.model);
        mva::ApproxMvaOptions options;
        options.sigma = policy;
        mva::MvaSolution approx = mva::solve_approx_mva(inst.model, options);
        if (!approx.converged) {
          // The oracle registry retries with damping; mirror that.
          options.damping = 0.5;
          approx = mva::solve_approx_mva(inst.model, options);
        }
        EXPECT_TRUE(approx.converged) << inst.name;
        stats.add(max_rel_error(approx, exact));
      }
    }
    return stats;
  }
};

TEST_F(MvaAccuracy, ChanHeuristicStaysWithinRecordedEnvelope) {
  const EnvelopeStats stats =
      policy_stats(mva::SigmaPolicy::kChanSingleChain);
  // Campaign-recorded quantiles (500 seeds x 7 families, populations
  // 1-4): p50 ~ 0.03, p99 ~ 0.12.  The hard ceiling is the oracle
  // envelope; the mean guards against broad drift.
  EXPECT_LT(stats.worst, 0.25);
  EXPECT_LT(stats.mean(), 0.08);
}

TEST_F(MvaAccuracy, SchweitzerBardStaysWithinRecordedEnvelope) {
  const EnvelopeStats stats =
      policy_stats(mva::SigmaPolicy::kSchweitzerBard);
  EXPECT_LT(stats.worst, 0.25);
  EXPECT_LT(stats.mean(), 0.08);
}

TEST_F(MvaAccuracy, KnownHeuristicWorstCaseDelayDominatedChain) {
  // Shrink-amplified worst case from the fuzz campaign (committed as
  // tests/corpus/disciplines-187-heuristic.corpus): one chain of
  // population 2 spending most of its cycle at IS stations.  The
  // thesis sigma policy mis-estimates sigma at the single queueing
  // station and lands ~49% high; Schweitzer-Bard and Linearizer stay
  // tight.  This pins the RAW heuristic: the registry's shape-based
  // routing (solver_registry_test.cc) dispatches this shape to exact
  // single-chain MVA, which is why the corpus entry itself must pass.
  // If the heuristic is ever improved past the 0.40 bar below, retire
  // this test and revisit the routing threshold.
  qn::NetworkModel m;
  qn::Station is1, is2, q;
  is1.name = "q1";
  is1.discipline = qn::Discipline::kInfiniteServer;
  is2.name = "q2";
  is2.discipline = qn::Discipline::kInfiniteServer;
  q.name = "q3";
  q.discipline = qn::Discipline::kFcfs;
  m.add_station(std::move(is1));
  m.add_station(std::move(is2));
  m.add_station(std::move(q));
  qn::Chain c;
  c.name = "c0";
  c.type = qn::ChainType::kClosed;
  c.population = 2;
  c.visits.push_back({0, 1.0, 0.1});
  c.visits.push_back({1, 1.0, 0.03});
  c.visits.push_back({2, 1.0, 0.3});
  m.add_chain(std::move(c));

  const mva::MvaSolution exact = mva::solve_exact_multichain(m);
  const mva::MvaSolution chan = mva::solve_approx_mva(m);
  const double chan_err = max_rel_error(chan, exact);
  EXPECT_GT(chan_err, 0.40) << "heuristic improved: revisit auto-routing";
  EXPECT_LT(chan_err, 0.60);

  mva::ApproxMvaOptions sb;
  sb.sigma = mva::SigmaPolicy::kSchweitzerBard;
  EXPECT_LT(max_rel_error(mva::solve_approx_mva(m, sb), exact), 0.10);
  EXPECT_LT(max_rel_error(mva::solve_linearizer(m), exact), 0.01);
}

TEST_F(MvaAccuracy, LinearizerIsAnOrderTighterThanTheHeuristics) {
  EnvelopeStats stats;
  for (Family family : {Family::kFcfsClosed, Family::kDisciplines}) {
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
      const Instance inst = verify::generate(family, seed);
      const mva::MvaSolution exact = mva::solve_exact_multichain(inst.model);
      const mva::MvaSolution lin = mva::solve_linearizer(inst.model);
      EXPECT_TRUE(lin.converged) << inst.name;
      stats.add(max_rel_error(lin, exact));
    }
  }
  EXPECT_LT(stats.worst, 0.08);
  EXPECT_LT(stats.mean(), 0.02);
}

}  // namespace
}  // namespace windim
