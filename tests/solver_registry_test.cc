// The solver registry and workspace contracts of the
// compile-once/solve-many engine: name/alias resolution, the
// unknown-name error listing available solvers, the zero-allocation
// warm path, warm-start hints, the product-form state-cap hint, and the
// scratch-model cache being keyed by compilation id (not address).
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "mva/approx.h"
#include "obs/metrics.h"
#include "qn/compiled_model.h"
#include "qn/network.h"
#include "solver/registry.h"
#include "solver/solver.h"
#include "solver/workspace.h"

namespace windim {
namespace {

qn::Station fcfs(const std::string& name) {
  qn::Station s;
  s.name = name;
  s.discipline = qn::Discipline::kFcfs;
  return s;
}

/// Two-chain, three-station closed model; `scale` stretches every
/// service time so distinct instances have distinct solutions.
qn::NetworkModel two_chain_model(double scale = 1.0) {
  qn::NetworkModel m;
  for (int n = 0; n < 3; ++n) m.add_station(fcfs("q" + std::to_string(n)));
  qn::Chain a;
  a.type = qn::ChainType::kClosed;
  a.population = 3;
  a.visits = {{0, 1.0, 0.04 * scale}, {1, 1.0, 0.05 * scale}};
  m.add_chain(std::move(a));
  qn::Chain b;
  b.type = qn::ChainType::kClosed;
  b.population = 2;
  b.visits = {{1, 1.0, 0.05 * scale}, {2, 1.0, 0.09 * scale}};
  m.add_chain(std::move(b));
  return m;
}

TEST(SolverRegistry, ListsEveryCanonicalSolverName) {
  const std::vector<std::string> names =
      solver::SolverRegistry::instance().names();
  const std::vector<std::string> expected = {
      "convolution", "buzen",         "buzen-log",      "recal",
      "tree-convolution", "product-form", "exact-mva",  "heuristic-mva",
      "schweitzer-mva",   "linearizer",   "bounds",     "semiclosed",
      "auto"};
  EXPECT_EQ(names, expected);
  for (const std::string& name : names) {
    const solver::Solver* s = solver::SolverRegistry::instance().find(name);
    ASSERT_NE(s, nullptr) << name;
    EXPECT_EQ(s->name(), name);
  }
}

TEST(SolverRegistry, AliasesResolveToTheCanonicalSolver) {
  const auto& reg = solver::SolverRegistry::instance();
  EXPECT_EQ(reg.find("heuristic"), reg.find("heuristic-mva"));
  EXPECT_EQ(reg.find("schweitzer"), reg.find("schweitzer-mva"));
}

TEST(SolverRegistry, RequireOnUnknownNameListsAvailableSolvers) {
  const auto& reg = solver::SolverRegistry::instance();
  EXPECT_EQ(reg.find("no-such-solver"), nullptr);
  try {
    (void)reg.require("no-such-solver");
    FAIL() << "require() accepted an unknown name";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown solver 'no-such-solver'"), std::string::npos)
        << what;
    EXPECT_NE(what.find("available solvers:"), std::string::npos) << what;
    EXPECT_NE(what.find("convolution"), std::string::npos) << what;
    EXPECT_NE(what.find("heuristic-mva"), std::string::npos) << what;
  }
}

/// The shrink-amplified heuristic worst case (see
/// tests/corpus/disciplines-187-heuristic.corpus and
/// mva_accuracy_test.cc): a delay-dominated single chain on which the
/// thesis sigma policy lands ~49% high.
qn::NetworkModel delay_dominated_model() {
  qn::NetworkModel m;
  qn::Station is1, is2;
  is1.name = "q1";
  is1.discipline = qn::Discipline::kInfiniteServer;
  is2.name = "q2";
  is2.discipline = qn::Discipline::kInfiniteServer;
  m.add_station(std::move(is1));
  m.add_station(std::move(is2));
  m.add_station(fcfs("q3"));
  qn::Chain c;
  c.name = "c0";
  c.type = qn::ChainType::kClosed;
  c.population = 2;
  c.visits = {{0, 1.0, 0.1}, {1, 1.0, 0.03}, {2, 1.0, 0.3}};
  m.add_chain(std::move(c));
  return m;
}

TEST(SolverRegistry, AutoRoutesDelayDominatedSingleChainToExactMva) {
  const auto& reg = solver::SolverRegistry::instance();
  const qn::CompiledModel compiled =
      qn::CompiledModel::compile(delay_dominated_model());
  // Shape check: 0.13 of a 0.43 s cycle at IS stations (~30%), above
  // the 25% routing threshold.
  EXPECT_EQ(&reg.route(compiled), reg.find("exact-mva"));

  const solver::PopulationVector population = {2};
  solver::Workspace ws;
  const solver::Solution exact =
      reg.require("exact-mva").solve(compiled, population, ws);
  const double exact_lambda = exact.chain_throughput[0];
  ASSERT_GT(exact_lambda, 0.0);

  solver::Workspace auto_ws;
  const solver::Solution routed =
      reg.require("auto").solve(compiled, population, auto_ws);
  EXPECT_TRUE(routed.converged);
  EXPECT_NEAR(routed.chain_throughput[0], exact_lambda,
              1e-9 * exact_lambda);
}

TEST(SolverRegistry, ExplicitHeuristicNameBypassesTheRouting) {
  // --solver=heuristic-mva must keep the raw thesis iteration reachable
  // (and therefore keep exhibiting its known ~49% worst-case error on
  // the delay-dominated shape): the routing is a dispatch-time default,
  // not a change to any solver.
  const auto& reg = solver::SolverRegistry::instance();
  const qn::CompiledModel compiled =
      qn::CompiledModel::compile(delay_dominated_model());
  const solver::PopulationVector population = {2};
  solver::Workspace ws;
  const double exact_lambda =
      reg.require("exact-mva").solve(compiled, population, ws)
          .chain_throughput[0];
  solver::Workspace hws;
  const solver::Solution heuristic =
      reg.require("heuristic-mva").solve(compiled, population, hws);
  ASSERT_TRUE(heuristic.converged);
  const double err =
      std::abs(heuristic.chain_throughput[0] - exact_lambda) / exact_lambda;
  EXPECT_GT(err, 0.40) << "heuristic improved: revisit auto-routing";
  EXPECT_LT(err, 0.60);
}

TEST(SolverRegistry, AutoKeepsTheHeuristicForMultichainAndLowDelayShapes) {
  const auto& reg = solver::SolverRegistry::instance();
  // Multichain: always the heuristic.
  const qn::CompiledModel multi = qn::CompiledModel::compile(two_chain_model());
  EXPECT_EQ(&reg.route(multi), reg.find("heuristic-mva"));
  // Single chain but queueing-dominated (no IS time at all).
  qn::NetworkModel m;
  m.add_station(fcfs("q0"));
  m.add_station(fcfs("q1"));
  qn::Chain c;
  c.type = qn::ChainType::kClosed;
  c.population = 3;
  c.visits = {{0, 1.0, 0.1}, {1, 1.0, 0.2}};
  m.add_chain(std::move(c));
  const qn::CompiledModel queueing = qn::CompiledModel::compile(m);
  EXPECT_EQ(&reg.route(queueing), reg.find("heuristic-mva"));
}

TEST(SolverRegistry, WarmSolvesPerformZeroArenaAllocations) {
  const qn::CompiledModel compiled =
      qn::CompiledModel::compile(two_chain_model());
  const solver::PopulationVector population = {3, 2};
  for (const char* name : {"heuristic-mva", "convolution", "exact-mva"}) {
    const solver::Solver& s =
        solver::SolverRegistry::instance().require(name);
    solver::Workspace ws;
    (void)s.solve(compiled, population, ws);  // warm-up: arena grows
    const std::size_t warm = ws.heap_allocations();
    for (int i = 0; i < 10; ++i) (void)s.solve(compiled, population, ws);
    EXPECT_EQ(ws.heap_allocations(), warm)
        << name << " allocated on the warm path";
  }
}

TEST(SolverRegistry, OversizedScratchRequestsThrowTypedOverflowError) {
  // A count whose byte size wraps std::size_t must surface as the typed
  // error, not as a silently undersized lease (the large-N overflow
  // class: 64-bit cell counts flowing into arena byte math).
  solver::Workspace ws;
  EXPECT_THROW((void)ws.doubles(SIZE_MAX / 4), qn::OverflowError);
  EXPECT_THROW((void)ws.ints(SIZE_MAX / 2), qn::OverflowError);
  // OverflowError is a ModelError: existing catch sites stay valid.
  EXPECT_THROW((void)ws.doubles(SIZE_MAX / 4), qn::ModelError);
  // The workspace stays usable after a rejected request.
  const std::span<double> ok = ws.doubles(8);
  EXPECT_EQ(ok.size(), 8u);
}

TEST(SolverRegistry, WarmStartHintReachesTheSameFixedPoint) {
  const qn::CompiledModel compiled =
      qn::CompiledModel::compile(two_chain_model());
  const solver::PopulationVector population = {3, 2};
  const solver::Solver& s =
      solver::SolverRegistry::instance().require("heuristic-mva");
  ASSERT_TRUE(s.traits().supports_warm_start);

  solver::Workspace ws;
  const solver::Solution cold = s.solve(compiled, population, ws);
  mva::MvaWarmStart state;
  state.lambda.assign(cold.chain_throughput.begin(),
                      cold.chain_throughput.end());
  state.number.assign(cold.mean_queue.begin(), cold.mean_queue.end());
  state.sigma.assign(cold.sigma.begin(), cold.sigma.end());
  const int cold_iterations = cold.iterations;

  solver::Workspace warm_ws;
  warm_ws.hints.warm_start = &state;
  const solver::Solution warm = s.solve(compiled, population, warm_ws);
  ASSERT_EQ(warm.chain_throughput.size(), state.lambda.size());
  for (std::size_t r = 0; r < state.lambda.size(); ++r) {
    EXPECT_NEAR(warm.chain_throughput[r], state.lambda[r], 1e-8);
  }
  // Seeded from the converged state, the fixed point is re-verified in
  // far fewer sweeps than the cold transient.
  EXPECT_LT(warm.iterations, cold_iterations);
}

TEST(SolverRegistry, MaxStatesHintCapsProductFormEnumeration) {
  const qn::CompiledModel compiled =
      qn::CompiledModel::compile(two_chain_model());
  const solver::PopulationVector population = {3, 2};
  const solver::Solver& s =
      solver::SolverRegistry::instance().require("product-form");
  solver::Workspace ws;
  EXPECT_NO_THROW((void)s.solve(compiled, population, ws));
  ws.hints.max_states = 1;
  EXPECT_THROW((void)s.solve(compiled, population, ws), std::runtime_error);
}

TEST(SolverRegistry, ProfilingHooksReportFixedPointTripCount) {
  // Hand-solved fixture: two disjoint single-station chains, one
  // customer each.  The initializer already sits on the fixed point —
  // all of chain r's population at its only station, lambda_r = 1/d_r;
  // sweep 1 then computes sigma = 1, seen = max(0, 1 - 1) = 0, time =
  // d_r, lambda_r = 1/d_r again, so CRIT is exactly 0 and the loop
  // trips exactly once.
  qn::NetworkModel m;
  m.add_station(fcfs("qa"));
  m.add_station(fcfs("qb"));
  qn::Chain a;
  a.type = qn::ChainType::kClosed;
  a.population = 1;
  a.visits = {{0, 1.0, 0.1}};
  m.add_chain(std::move(a));
  qn::Chain b;
  b.type = qn::ChainType::kClosed;
  b.population = 1;
  b.visits = {{1, 1.0, 0.05}};
  m.add_chain(std::move(b));
  const qn::CompiledModel compiled = qn::CompiledModel::compile(m);

  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  reg.reset();
  reg.set_enabled(true);
  const solver::Solver& s =
      solver::SolverRegistry::instance().require("heuristic-mva");
  solver::Workspace ws;
  const solver::Solution sol = s.solve_profiled(compiled, {1, 1}, ws);
  EXPECT_TRUE(sol.converged);
  EXPECT_EQ(sol.iterations, 1);
  EXPECT_DOUBLE_EQ(sol.chain_throughput[0], 10.0);
  EXPECT_DOUBLE_EQ(sol.chain_throughput[1], 20.0);

  obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter_or("solver.heuristic-mva.solves"), 1u);
  EXPECT_EQ(snap.counter_or("solver.heuristic-mva.iterations"), 1u);
  const obs::HistogramSnapshot* latency =
      snap.histogram("solver.heuristic-mva.solve_us");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->count, 1u);
  EXPECT_GT(snap.gauge_or("solver.heuristic-mva.arena_hwm_bytes"), 0.0);

  // A coupled model with a real transient: the counter accumulates the
  // reported trip count, so it must equal 1 + the second solve's
  // iterations.
  const qn::CompiledModel coupled =
      qn::CompiledModel::compile(two_chain_model());
  const solver::Solution coupled_sol =
      s.solve_profiled(coupled, {3, 2}, ws);
  EXPECT_GT(coupled_sol.iterations, 1);
  snap = reg.snapshot();
  EXPECT_EQ(snap.counter_or("solver.heuristic-mva.solves"), 2u);
  EXPECT_EQ(snap.counter_or("solver.heuristic-mva.iterations"),
            1u + static_cast<std::uint64_t>(coupled_sol.iterations));
  reg.set_enabled(false);
  reg.reset();
}

TEST(SolverRegistry, SolveProfiledIsAPassThroughWhenDisabled) {
  ASSERT_FALSE(obs::MetricsRegistry::global().enabled());
  const qn::CompiledModel compiled =
      qn::CompiledModel::compile(two_chain_model());
  const solver::Solver& s =
      solver::SolverRegistry::instance().require("heuristic-mva");
  solver::Workspace plain_ws;
  solver::Workspace profiled_ws;
  const solver::Solution plain = s.solve(compiled, {3, 2}, plain_ws);
  const solver::Solution profiled =
      s.solve_profiled(compiled, {3, 2}, profiled_ws);
  ASSERT_EQ(plain.chain_throughput.size(), profiled.chain_throughput.size());
  for (std::size_t r = 0; r < plain.chain_throughput.size(); ++r) {
    EXPECT_EQ(plain.chain_throughput[r], profiled.chain_throughput[r]);
  }
  EXPECT_EQ(plain.iterations, profiled.iterations);
  // Nothing was recorded.
  EXPECT_EQ(obs::MetricsRegistry::global().snapshot().counter_or(
                "solver.heuristic-mva.solves"),
            0u);
}

TEST(SolverRegistry, ScratchModelCacheIsKeyedByCompilationIdNotAddress) {
  // Regression: the per-workspace scratch NetworkModel used to be keyed
  // on the CompiledModel's address.  Successive compiled models often
  // reuse the same address, so a warm workspace would keep solving a
  // *stale* model with only the populations rewritten.  Compilation ids
  // are process-unique, so recompiling — even at the same address —
  // must invalidate the cache.
  const solver::Solver& s =
      solver::SolverRegistry::instance().require("convolution");
  const solver::PopulationVector population = {3, 2};
  solver::Workspace ws;
  auto throughput_of = [&](double scale, solver::Workspace& w) {
    const qn::CompiledModel compiled =
        qn::CompiledModel::compile(two_chain_model(scale));
    const solver::Solution sol = s.solve(compiled, population, w);
    return std::vector<double>(sol.chain_throughput.begin(),
                               sol.chain_throughput.end());
  };  // compiled model destroyed here; the next one may reuse its address

  const std::vector<double> a_warm = throughput_of(1.0, ws);
  const std::vector<double> b_warm = throughput_of(2.0, ws);
  solver::Workspace fresh_a;
  solver::Workspace fresh_b;
  EXPECT_EQ(a_warm, throughput_of(1.0, fresh_a));
  EXPECT_EQ(b_warm, throughput_of(2.0, fresh_b));
  ASSERT_EQ(a_warm.size(), b_warm.size());
  EXPECT_NE(a_warm, b_warm);  // the two models genuinely differ
}

}  // namespace
}  // namespace windim
