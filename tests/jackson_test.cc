#include <gtest/gtest.h>

#include "exact/jackson.h"
#include "exact/mm_queues.h"

namespace windim::exact {
namespace {

qn::Station fcfs(const std::string& name) {
  qn::Station s;
  s.name = name;
  s.discipline = qn::Discipline::kFcfs;
  return s;
}

qn::NetworkModel tandem(double rate, double s0, double s1) {
  qn::NetworkModel m;
  const int a = m.add_station(fcfs("a"));
  const int b = m.add_station(fcfs("b"));
  qn::Chain c;
  c.name = "open";
  c.type = qn::ChainType::kOpen;
  c.arrival_rate = rate;
  c.visits = {{a, 1.0, s0}, {b, 1.0, s1}};
  m.add_chain(std::move(c));
  return m;
}

TEST(JacksonTest, TandemMatchesIndependentMM1s) {
  const double rate = 3.0;
  const qn::NetworkModel m = tandem(rate, 0.1, 0.2);
  const OpenSolution sol = solve_open(m);
  const MM1 q0(rate, 10.0), q1(rate, 5.0);
  EXPECT_NEAR(sol.stations[0].mean_number, q0.mean_number(), 1e-12);
  EXPECT_NEAR(sol.stations[1].mean_number, q1.mean_number(), 1e-12);
  EXPECT_NEAR(sol.stations[0].mean_time, q0.mean_time(), 1e-12);
  EXPECT_NEAR(sol.chain_delay[0], q0.mean_time() + q1.mean_time(), 1e-12);
  EXPECT_NEAR(sol.total_throughput, rate, 1e-12);
}

TEST(JacksonTest, NetworkDelayByLittle) {
  const qn::NetworkModel m = tandem(2.0, 0.1, 0.3);
  const OpenSolution sol = solve_open(m);
  const double total_number =
      sol.stations[0].mean_number + sol.stations[1].mean_number;
  EXPECT_NEAR(sol.mean_network_delay, total_number / 2.0, 1e-12);
}

TEST(JacksonTest, TwoChainsSuperposeAtSharedStation) {
  qn::NetworkModel m;
  const int shared = m.add_station(fcfs("shared"));
  for (int i = 0; i < 2; ++i) {
    qn::Chain c;
    c.name = "c" + std::to_string(i);
    c.type = qn::ChainType::kOpen;
    c.arrival_rate = 2.0;
    c.visits = {{shared, 1.0, 0.1}};
    m.add_chain(std::move(c));
  }
  const OpenSolution sol = solve_open(m);
  // Station sees 4.0 total at mu = 10: rho = 0.4.
  const MM1 q(4.0, 10.0);
  EXPECT_NEAR(sol.stations[0].mean_number, q.mean_number(), 1e-12);
  // Classes split the queue evenly (equal intensities).
  EXPECT_NEAR(sol.queue_length(0, 0), q.mean_number() / 2.0, 1e-12);
  EXPECT_NEAR(sol.queue_length(0, 1), q.mean_number() / 2.0, 1e-12);
}

TEST(JacksonTest, VisitRatiosScaleDemand) {
  // A chain visiting a station twice per customer doubles its load there.
  qn::NetworkModel m;
  const int a = m.add_station(fcfs("a"));
  qn::Chain c;
  c.type = qn::ChainType::kOpen;
  c.arrival_rate = 2.0;
  c.visits = {{a, 2.0, 0.1}};
  m.add_chain(std::move(c));
  const OpenSolution sol = solve_open(m);
  EXPECT_NEAR(sol.stations[0].utilization, 0.4, 1e-12);
  EXPECT_NEAR(sol.stations[0].arrival_rate, 4.0, 1e-12);
}

TEST(JacksonTest, IsStationIsPureDelay) {
  qn::NetworkModel m;
  qn::Station is;
  is.name = "think";
  is.discipline = qn::Discipline::kInfiniteServer;
  const int a = m.add_station(std::move(is));
  qn::Chain c;
  c.type = qn::ChainType::kOpen;
  c.arrival_rate = 4.0;
  c.visits = {{a, 1.0, 2.0}};
  m.add_chain(std::move(c));
  const OpenSolution sol = solve_open(m);
  EXPECT_NEAR(sol.stations[0].mean_number, 8.0, 1e-12);  // Poisson mean
  EXPECT_NEAR(sol.stations[0].mean_time, 2.0, 1e-12);    // no queueing
}

TEST(JacksonTest, QueueDependentStationMatchesMMm) {
  // rate_multipliers {1, 2} make the station an M/M/2.
  qn::NetworkModel m;
  qn::Station s = fcfs("mm2");
  s.rate_multipliers = {1.0, 2.0};
  const int a = m.add_station(std::move(s));
  qn::Chain c;
  c.type = qn::ChainType::kOpen;
  c.arrival_rate = 3.0;
  c.visits = {{a, 1.0, 0.5}};  // per-server mu = 2
  m.add_chain(std::move(c));
  const OpenSolution sol = solve_open(m);
  const MMm reference(3.0, 2.0, 2);
  EXPECT_NEAR(sol.stations[0].mean_number, reference.mean_number(), 1e-9);
}

TEST(JacksonTest, SaturatedStationThrows) {
  const qn::NetworkModel m = tandem(11.0, 0.1, 0.01);  // rho0 = 1.1
  EXPECT_FALSE(open_network_stable(m));
  EXPECT_THROW((void)solve_open(m), std::domain_error);
}

TEST(JacksonTest, StableCheckPasses) {
  EXPECT_TRUE(open_network_stable(tandem(3.0, 0.1, 0.2)));
}

TEST(JacksonTest, RejectsClosedChains) {
  qn::NetworkModel m;
  const int a = m.add_station(fcfs("a"));
  qn::Chain c;
  c.type = qn::ChainType::kClosed;
  c.population = 2;
  c.visits = {{a, 1.0, 0.1}};
  m.add_chain(std::move(c));
  EXPECT_THROW((void)solve_open(m), qn::ModelError);
}

}  // namespace
}  // namespace windim::exact
