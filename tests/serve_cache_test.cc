// LRU model-cache semantics for `windim serve`: eviction order, the
// canonical-key discipline (formatting differences hit, any real model
// difference — down to one perturbed demand — compiles a distinct
// entry), and stats that match hand-computed counts.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "serve/cache.h"

namespace windim {
namespace {

std::string spec_with_rate(const std::string& rate) {
  return "node A\nnode B\nchannel A B 50\nclass east rate " + rate +
         " path A B\n";
}

TEST(ServeCache, EvictsLeastRecentlyUsedInOrder) {
  serve::ModelCache cache(2);
  const std::string a = spec_with_rate("10");
  const std::string b = spec_with_rate("20");
  const std::string c = spec_with_rate("30");

  const auto ea = cache.lookup_or_compile(a);
  (void)cache.lookup_or_compile(b);
  // Touch A so B becomes the LRU entry...
  (void)cache.lookup_or_compile(a);
  // ...and the third topology evicts B, not A.
  (void)cache.lookup_or_compile(c);

  const std::vector<std::string> keys = cache.keys_mru_first();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], cache.lookup_or_compile(c)->canonical_spec);
  EXPECT_EQ(keys[1], ea->canonical_spec);

  // B is gone: looking it up again is a fresh compile (a miss), which
  // in turn evicts A (the LRU after the touch order above was C, A).
  const serve::CacheStats before = cache.stats();
  (void)cache.lookup_or_compile(b);
  const serve::CacheStats after = cache.stats();
  EXPECT_EQ(after.misses, before.misses + 1);
  EXPECT_EQ(after.evictions, before.evictions + 1);
}

TEST(ServeCache, CanonicalizationMakesFormattingIrrelevant) {
  serve::ModelCache cache(4);
  const std::string plain = spec_with_rate("10");
  const std::string noisy =
      "# a comment\n  node A\n\nnode B\n"
      "channel A B 50\t\n# another\nclass east rate 10 path A B\n";
  const auto first = cache.lookup_or_compile(plain);
  const auto second = cache.lookup_or_compile(noisy);
  EXPECT_EQ(first.get(), second.get()) << "formatting split the cache";

  const serve::CacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.entries, 1u);
}

TEST(ServeCache, NearIdenticalModelsCompileDistinctEntries) {
  serve::ModelCache cache(4);
  // One perturbed demand value: same topology text shape, different
  // model.  Whatever the 64-bit hashes do, the full-key equality guard
  // must keep these apart.
  const auto base = cache.lookup_or_compile(spec_with_rate("10"));
  const auto perturbed = cache.lookup_or_compile(spec_with_rate("10.0001"));
  EXPECT_NE(base.get(), perturbed.get());
  EXPECT_NE(base->canonical_spec, perturbed->canonical_spec);
  EXPECT_NE(base->topology_hash, perturbed->topology_hash);

  const serve::CacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.entries, 2u);
}

TEST(ServeCache, StatsMatchHandComputedCounts) {
  serve::ModelCache cache(2);
  const std::string specs[] = {spec_with_rate("1"), spec_with_rate("2"),
                               spec_with_rate("3")};
  // 3 compiles + 2 hits + 1 eviction, by hand:
  (void)cache.lookup_or_compile(specs[0]);  // miss 1
  (void)cache.lookup_or_compile(specs[0]);  // hit 1
  (void)cache.lookup_or_compile(specs[1]);  // miss 2
  (void)cache.lookup_or_compile(specs[2]);  // miss 3, evicts specs[0]
  (void)cache.lookup_or_compile(specs[1]);  // hit 2

  const serve::CacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 2u);
  EXPECT_EQ(s.misses, 3u);
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.entries, 2u);
  EXPECT_EQ(s.capacity, 2u);
}

TEST(ServeCache, FailedCompilesAreNeverCached) {
  serve::ModelCache cache(2);
  EXPECT_THROW((void)cache.lookup_or_compile("garbage"), std::exception);
  const serve::CacheStats s = cache.stats();
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.misses, 0u);
}

TEST(ServeCache, EntriesSurviveEviction) {
  // shared_ptr holders keep solving on an evicted model safely.
  serve::ModelCache cache(1);
  const auto pinned = cache.lookup_or_compile(spec_with_rate("10"));
  (void)cache.lookup_or_compile(spec_with_rate("20"));  // evicts pinned
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(pinned->problem.num_classes(), 1);  // still fully usable
}

}  // namespace
}  // namespace windim
