// The perf-baseline comparison logic (bench/baseline.h): identical and
// mildly-noisy runs pass, regressions beyond tolerance fail in the
// metric's regression direction only, exact gates admit no drift,
// floors keep near-zero baselines from amplifying noise, and malformed
// or incomplete JSON is a hard error — never a silent pass.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "baseline.h"

namespace windim::bench {
namespace {

std::string perf_json(double speedup, double overhead_pct,
                      int allocations, bool pass) {
  std::string out = "{\"benchmark\":\"perf_dimension\",\"speedup_vs_pr1\":";
  out += std::to_string(speedup);
  out += ",\"obs_disabled_overhead_pct\":";
  out += std::to_string(overhead_pct);
  out += ",\"warm_workspace_allocations\":";
  out += std::to_string(allocations);
  out += ",\"identical_windows\":true,\"pass\":";
  out += pass ? "true" : "false";
  out += ",\"engine_ms\":1.0}";
  return out;
}

TEST(PerfBaseline, IdenticalRunPasses) {
  const std::string base = perf_json(5.9, 0.12, 0, true);
  const BaselineReport report =
      compare_baseline(base, base, perf_dimension_checks());
  EXPECT_TRUE(report.ok()) << report.render();
  EXPECT_EQ(report.comparisons.size(), 5u);
  EXPECT_TRUE(report.errors.empty());
}

TEST(PerfBaseline, NoiseWithinTolerancePasses) {
  const BaselineReport report = compare_baseline(
      perf_json(5.9, 0.12, 0, true), perf_json(5.0, 0.14, 0, true),
      perf_dimension_checks(25.0));
  EXPECT_TRUE(report.ok()) << report.render();
}

TEST(PerfBaseline, ImprovementNeverFails) {
  // Faster and cheaper than the baseline: drift is zero, not negative
  // noise that could trip a symmetric band.
  const BaselineReport report = compare_baseline(
      perf_json(5.9, 0.12, 0, true), perf_json(9.0, 0.01, 0, true),
      perf_dimension_checks(25.0));
  EXPECT_TRUE(report.ok()) << report.render();
  for (const MetricComparison& c : report.comparisons) {
    EXPECT_DOUBLE_EQ(c.drift_pct, 0.0) << c.metric;
  }
}

TEST(PerfBaseline, InflatedBaselineFailsTheSpeedupCheck) {
  // The committed baseline claims 50x; the fresh run manages 5.9x.
  const BaselineReport report = compare_baseline(
      perf_json(50.0, 0.12, 0, true), perf_json(5.9, 0.12, 0, true),
      perf_dimension_checks(25.0));
  EXPECT_FALSE(report.ok());
  bool speedup_failed = false;
  for (const MetricComparison& c : report.comparisons) {
    if (c.metric == "speedup_vs_pr1") {
      speedup_failed = !c.ok;
      EXPECT_GT(c.drift_pct, 25.0);
    } else {
      EXPECT_TRUE(c.ok) << c.metric;
    }
  }
  EXPECT_TRUE(speedup_failed);
}

TEST(PerfBaseline, AllocationGateIsExact) {
  const BaselineReport report = compare_baseline(
      perf_json(5.9, 0.12, 0, true), perf_json(5.9, 0.12, 1, true),
      perf_dimension_checks(25.0));
  EXPECT_FALSE(report.ok());
}

TEST(PerfBaseline, PassFlagRegressionFails) {
  const BaselineReport report = compare_baseline(
      perf_json(5.9, 0.12, 0, true), perf_json(5.9, 0.12, 0, false),
      perf_dimension_checks(25.0));
  EXPECT_FALSE(report.ok());
}

TEST(PerfBaseline, OverheadFloorAbsorbsTinyBaselineWobble) {
  // 0.02% -> 0.05% is a 150% relative jump but far below the 0.5pp
  // floor; it must not flag.  A genuine jump past the floored band
  // still fails.
  EXPECT_TRUE(compare_baseline(perf_json(5.9, 0.02, 0, true),
                               perf_json(5.9, 0.05, 0, true),
                               perf_dimension_checks(25.0))
                  .ok());
  EXPECT_FALSE(compare_baseline(perf_json(5.9, 0.02, 0, true),
                                perf_json(5.9, 1.9, 0, true),
                                perf_dimension_checks(25.0))
                   .ok());
}

TEST(PerfBaseline, WallClockChecksAreOptInAndDirectional) {
  std::vector<CheckSpec> checks = wall_clock_checks(25.0);
  // engine_ms 1.0 -> 1.0: fine.  Against a doubled current value the
  // lower-is-better direction fails.
  EXPECT_TRUE(compare_baseline(perf_json(5.9, 0.12, 0, true),
                               perf_json(5.9, 0.12, 0, true), checks)
                  .errors.size() > 0)
      << "wall-clock set requires all four *_ms metrics";
  const std::string base =
      "{\"serial_cold_ms\":1.0,\"pr1_baseline_ms\":2.0,"
      "\"engine_ms\":0.5,\"instrumented_ms\":0.6}";
  const std::string slow =
      "{\"serial_cold_ms\":1.0,\"pr1_baseline_ms\":2.0,"
      "\"engine_ms\":2.5,\"instrumented_ms\":0.6}";
  EXPECT_TRUE(compare_baseline(base, base, checks).ok());
  EXPECT_FALSE(compare_baseline(base, slow, checks).ok());
}

TEST(PerfBaseline, MalformedJsonIsAnError) {
  const std::string good = perf_json(5.9, 0.12, 0, true);
  EXPECT_FALSE(compare_baseline("not json", good,
                                perf_dimension_checks())
                   .ok());
  EXPECT_FALSE(compare_baseline(good, "{\"truncated\":",
                                perf_dimension_checks())
                   .ok());
  EXPECT_FALSE(compare_baseline("[1,2,3]", good, perf_dimension_checks())
                   .ok());
}

TEST(PerfBaseline, MissingMetricIsAnErrorNotASilentPass) {
  const BaselineReport report = compare_baseline(
      "{\"speedup_vs_pr1\":5.9}", perf_json(5.9, 0.12, 0, true),
      perf_dimension_checks());
  EXPECT_FALSE(report.ok());
  ASSERT_FALSE(report.errors.empty());
  EXPECT_NE(report.errors.front().find("missing metric"),
            std::string::npos);
}

TEST(PerfBaseline, RenderNamesEveryFailure) {
  const BaselineReport report = compare_baseline(
      perf_json(50.0, 0.12, 0, true), perf_json(5.9, 0.12, 0, true),
      perf_dimension_checks(25.0));
  const std::string text = report.render();
  EXPECT_NE(text.find("FAIL speedup_vs_pr1"), std::string::npos) << text;
  EXPECT_NE(text.find("baseline check FAILED"), std::string::npos) << text;
}

TEST(PerfBaseline, SaveLoadRoundTrips) {
  const std::string path =
      ::testing::TempDir() + "/perf_baseline_roundtrip.json";
  const std::string body = perf_json(5.9, 0.12, 0, true);
  ASSERT_TRUE(save_file(path, body));
  const auto loaded = load_file(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, body + "\n");
  EXPECT_FALSE(load_file(path + ".does-not-exist").has_value());
}

}  // namespace
}  // namespace windim::bench
