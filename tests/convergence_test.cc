// Per-iteration convergence telemetry: the classify() rules (including
// the PR 2 corpus worst case, which "converges" at iteration 1 without
// ever leaving its initialization and must be reported STAGNATED, not
// converged), the recorder's ring/envelope contract, the summary path
// for non-iterative solvers (iterations == 1, empty ring), the
// run-level log, and the monotone-or-classified property of every
// record a real dimensioning run produces.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "mva/approx.h"
#include "net/examples.h"
#include "obs/convergence.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "qn/compiled_model.h"
#include "qn/network.h"
#include "solver/registry.h"
#include "solver/solver.h"
#include "solver/workspace.h"
#include "windim/windim.h"

namespace windim {
namespace {

using obs::ConvergenceClass;
using obs::ConvergenceLog;
using obs::ConvergenceRecorder;
using obs::IterationSample;
using obs::SolveRecord;

qn::Station station(const std::string& name, qn::Discipline d) {
  qn::Station s;
  s.name = name;
  s.discipline = d;
  return s;
}

/// The PR 2 differential-fuzz worst case, reduced: a delay-dominated
/// single chain whose sigma estimate swallows the entire queue, so the
/// heuristic's first sweep reproduces the balanced initialization
/// exactly and the fixed point "converges" having never moved.
qn::NetworkModel delay_dominated_single_chain() {
  qn::NetworkModel m;
  const int d1 =
      m.add_station(station("d1", qn::Discipline::kInfiniteServer));
  const int d2 =
      m.add_station(station("d2", qn::Discipline::kInfiniteServer));
  const int q = m.add_station(station("q", qn::Discipline::kFcfs));
  qn::Chain c;
  c.type = qn::ChainType::kClosed;
  c.population = 2;
  c.visits = {{d1, 1.0, 0.1}, {d2, 1.0, 0.03}, {q, 1.0, 0.3}};
  m.add_chain(std::move(c));
  return m;
}

SolveRecord streamed_record(const std::vector<double>& residuals,
                            bool converged, bool warm = false) {
  SolveRecord r;
  r.solver = "test";
  r.num_chains = 1;
  r.tracked_chains = 1;
  r.warm_started = warm;
  r.converged = converged;
  r.iterations = static_cast<int>(residuals.size());
  r.samples_seen = residuals.size();
  r.first_residual = residuals.empty() ? 0.0 : residuals.front();
  r.final_residual = residuals.empty() ? 0.0 : residuals.back();
  for (std::size_t i = 0; i < residuals.size(); ++i) {
    IterationSample s;
    s.iteration = i + 1;
    s.max_residual = residuals[i];
    s.chain_delta[0] = residuals[i];
    r.samples.push_back(s);
  }
  return r;
}

// ---------------------------------------------------------------------
// classify()

TEST(ConvergenceClassify, EmptyStreamTrustsTheConvergedFlag) {
  SolveRecord summary;
  summary.samples_seen = 0;
  summary.converged = true;
  EXPECT_EQ(obs::classify(summary), ConvergenceClass::kConverged);
  summary.converged = false;
  EXPECT_EQ(obs::classify(summary), ConvergenceClass::kDiverged);
}

TEST(ConvergenceClassify, MonotoneDecreaseIsConverged) {
  const SolveRecord r =
      streamed_record({1e-2, 1e-4, 1e-7, 1e-11}, /*converged=*/true);
  EXPECT_EQ(obs::classify(r), ConvergenceClass::kConverged);
}

TEST(ConvergenceClassify, ColdOneSweepConvergenceIsStagnation) {
  // The stagnation trap: converged on the very first cold sweep means
  // the initialization was already a fixed point of the approximate
  // map — the solver never produced information.
  const SolveRecord cold = streamed_record({0.0}, /*converged=*/true);
  EXPECT_EQ(obs::classify(cold), ConvergenceClass::kStagnated);
}

TEST(ConvergenceClassify, WarmOneSweepConvergenceIsLegitimate) {
  // A warm start converging immediately near its seed is the whole
  // point of warm starting.
  const SolveRecord warm =
      streamed_record({1e-12}, /*converged=*/true, /*warm=*/true);
  EXPECT_EQ(obs::classify(warm), ConvergenceClass::kConverged);
}

TEST(ConvergenceClassify, GrowingResidualIsDivergence) {
  const SolveRecord r =
      streamed_record({1e-3, 1e-2, 1e-1, 1.0, 10.0}, /*converged=*/false);
  EXPECT_EQ(obs::classify(r), ConvergenceClass::kDiverged);
}

TEST(ConvergenceClassify, SignFlippingDeltasAreOscillation) {
  // Alternating signed chain deltas with a flat magnitude: a limit
  // cycle of the damped map, not drift.
  const SolveRecord r = streamed_record({1e-2, -1e-2, 1e-2, -1e-2, 1e-2, -1e-2},
                                        /*converged=*/false);
  EXPECT_EQ(obs::classify(r), ConvergenceClass::kOscillating);
}

TEST(ConvergenceClassify, FlatResidualAboveToleranceIsStagnation) {
  const SolveRecord r = streamed_record({1e-3, 9e-4, 9e-4, 9e-4, 9e-4, 9e-4},
                                        /*converged=*/false);
  EXPECT_EQ(obs::classify(r), ConvergenceClass::kStagnated);
}

// ---------------------------------------------------------------------
// ConvergenceRecorder

TEST(ConvergenceRecorder, StreamsEnvelopeAndRing) {
  ConvergenceRecorder rec;
  rec.begin_solve("unit", 2, /*warm_started=*/false);
  const std::vector<double> residuals = {0.5, 0.1, 0.02, 1e-6};
  for (std::size_t i = 0; i < residuals.size(); ++i) {
    rec.record_chain(0, residuals[i]);
    rec.record_chain(1, -residuals[i] / 2.0);
    rec.record_iteration(residuals[i], 0.9);
  }
  rec.end_solve(static_cast<int>(residuals.size()), /*converged=*/true);
  ASSERT_TRUE(rec.has_record());
  const SolveRecord& r = rec.record();
  EXPECT_EQ(r.solver, "unit");
  EXPECT_EQ(r.num_chains, 2);
  EXPECT_EQ(r.tracked_chains, 2);
  EXPECT_EQ(r.iterations, 4);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.classification, ConvergenceClass::kConverged);
  EXPECT_EQ(r.samples_seen, 4u);
  ASSERT_EQ(r.samples.size(), 4u);
  EXPECT_DOUBLE_EQ(r.first_residual, 0.5);
  EXPECT_DOUBLE_EQ(r.final_residual, 1e-6);
  EXPECT_DOUBLE_EQ(r.min_residual, 1e-6);
  EXPECT_DOUBLE_EQ(r.max_residual, 0.5);
  EXPECT_EQ(r.samples.front().iteration, 1u);
  EXPECT_DOUBLE_EQ(r.samples.front().chain_delta[1], -0.25);
  EXPECT_DOUBLE_EQ(r.samples.back().max_residual, 1e-6);
  EXPECT_DOUBLE_EQ(r.samples.back().damping, 0.9);
}

TEST(ConvergenceRecorder, RingDropsOldestButEnvelopeCoversEverySweep) {
  ConvergenceRecorder rec(/*ring_capacity=*/4);
  rec.begin_solve("unit", 1, false);
  for (int i = 1; i <= 10; ++i) {
    rec.record_chain(0, 1.0 / i);
    rec.record_iteration(1.0 / i, 1.0);
  }
  rec.end_solve(10, true);
  const SolveRecord& r = rec.record();
  EXPECT_EQ(r.samples_seen, 10u);
  ASSERT_EQ(r.samples.size(), 4u);
  // Oldest first: sweeps 7..10 survive.
  EXPECT_EQ(r.samples.front().iteration, 7u);
  EXPECT_EQ(r.samples.back().iteration, 10u);
  // The envelope still covers the dropped sweeps.
  EXPECT_DOUBLE_EQ(r.first_residual, 1.0);
  EXPECT_DOUBLE_EQ(r.max_residual, 1.0);
  EXPECT_DOUBLE_EQ(r.final_residual, 0.1);
}

TEST(ConvergenceRecorder, ResetForgetsTheFinishedRecord) {
  ConvergenceRecorder rec;
  rec.record_summary("unit", 1, true);
  ASSERT_TRUE(rec.has_record());
  rec.reset();
  EXPECT_FALSE(rec.has_record());
}

// ---------------------------------------------------------------------
// Solver integration

TEST(ConvergenceSolvers, HeuristicStreamsPerIterationResiduals) {
  // Two chains contending at a shared FCFS station (equal service mean
  // there, per product form) so the fixed point genuinely iterates.
  qn::NetworkModel m;
  const int a = m.add_station(station("a", qn::Discipline::kFcfs));
  const int shared = m.add_station(station("shared", qn::Discipline::kFcfs));
  const int b = m.add_station(station("b", qn::Discipline::kFcfs));
  qn::Chain c1;
  c1.type = qn::ChainType::kClosed;
  c1.population = 4;
  c1.visits = {{a, 1.0, 0.08}, {shared, 1.0, 0.05}};
  m.add_chain(std::move(c1));
  qn::Chain c2;
  c2.type = qn::ChainType::kClosed;
  c2.population = 3;
  c2.visits = {{shared, 1.0, 0.05}, {b, 1.0, 0.11}};
  m.add_chain(std::move(c2));

  const qn::CompiledModel cm = qn::CompiledModel::compile(m);
  const solver::Solver& s =
      solver::SolverRegistry::instance().require("heuristic-mva");
  solver::Workspace ws;
  ConvergenceRecorder rec;
  ws.hints.convergence = &rec;
  const solver::Solution sol = s.solve_profiled(cm, {4, 3}, ws);
  ASSERT_TRUE(rec.has_record());
  const SolveRecord& r = rec.record();
  EXPECT_EQ(r.solver, "heuristic-mva");
  EXPECT_EQ(r.iterations, sol.iterations);
  EXPECT_GT(sol.iterations, 1);
  EXPECT_EQ(r.samples_seen, static_cast<std::uint64_t>(sol.iterations));
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.classification, ConvergenceClass::kConverged);
  // The stream ends at the stopping criterion.
  EXPECT_LT(r.final_residual, 1e-9);
  EXPECT_GT(r.first_residual, r.final_residual);
}

TEST(ConvergenceSolvers, WorstCaseColdSolveIsClassifiedStagnated) {
  // PR 2 corpus worst case (48.7% throughput error vs exact): the
  // heuristic reports converged after ONE cold sweep with residual 0 —
  // it never left the balanced initialization.  The observatory must
  // call that stagnation, not convergence.
  const qn::CompiledModel cm =
      qn::CompiledModel::compile(delay_dominated_single_chain());
  const solver::Solver& s =
      solver::SolverRegistry::instance().require("heuristic-mva");
  solver::Workspace ws;
  ConvergenceRecorder rec;
  ws.hints.convergence = &rec;
  const solver::Solution sol = s.solve_profiled(cm, {2}, ws);
  EXPECT_TRUE(sol.converged);
  EXPECT_EQ(sol.iterations, 1);
  ASSERT_TRUE(rec.has_record());
  const SolveRecord& r = rec.record();
  EXPECT_EQ(r.samples_seen, 1u);
  EXPECT_FALSE(r.warm_started);
  EXPECT_DOUBLE_EQ(r.final_residual, 0.0);
  EXPECT_EQ(r.classification, ConvergenceClass::kStagnated);
}

TEST(ConvergenceSolvers, ExactSolversReportSummaryWithEmptyRing) {
  // Non-iterative solvers stream nothing; solve_profiled records the
  // summary contract: iterations == 1, empty sample ring, converged.
  const qn::CompiledModel cm =
      qn::CompiledModel::compile(delay_dominated_single_chain());
  for (const char* name : {"recal", "convolution", "exact-mva"}) {
    const solver::Solver& s =
        solver::SolverRegistry::instance().require(name);
    solver::Workspace ws;
    ConvergenceRecorder rec;
    ws.hints.convergence = &rec;
    (void)s.solve_profiled(cm, {2}, ws);
    ASSERT_TRUE(rec.has_record()) << name;
    const SolveRecord& r = rec.record();
    EXPECT_EQ(r.solver, name);
    EXPECT_EQ(r.iterations, 1) << name;
    EXPECT_TRUE(r.converged) << name;
    EXPECT_EQ(r.samples_seen, 0u) << name;
    EXPECT_TRUE(r.samples.empty()) << name;
    EXPECT_EQ(r.classification, ConvergenceClass::kConverged) << name;
  }
}

TEST(ConvergenceSolvers, ApproxMvaEntryPointStreamsThroughOptions) {
  ConvergenceRecorder rec;
  mva::ApproxMvaOptions options;
  options.convergence = &rec;
  const mva::MvaSolution sol =
      mva::solve_approx_mva(delay_dominated_single_chain(), options);
  EXPECT_TRUE(sol.converged);
  ASSERT_TRUE(rec.has_record());
  EXPECT_EQ(rec.record().solver, "approx-mva");
  EXPECT_EQ(rec.record().classification, ConvergenceClass::kStagnated);
}

// ---------------------------------------------------------------------
// ConvergenceLog + end-to-end dimensioning run

TEST(ConvergenceLog, CountsAndDropsOldest) {
  ConvergenceLog log(/*capacity=*/2);
  for (int i = 0; i < 5; ++i) {
    SolveRecord r = streamed_record({1e-2, 1e-6}, true);
    r.classification = obs::classify(r);
    log.append(std::move(r));
  }
  EXPECT_EQ(log.total_appended(), 5u);
  EXPECT_EQ(log.dropped(), 3u);
  EXPECT_EQ(log.records().size(), 2u);
  EXPECT_EQ(log.count_of(ConvergenceClass::kConverged), 5u);
  EXPECT_EQ(log.total_iterations(), 10u);
}

TEST(ConvergenceLog, DimensioningRunIsMonotoneOrClassified) {
  // Thesis fixture end-to-end: every solve the engine performs must
  // either be a genuinely converged record (residual fell over the
  // stream) or carry a non-converged classification explaining why
  // not.  A record claiming kConverged whose residual stream rose is
  // the bug this harness exists to catch.
  const core::WindowProblem problem(net::canada_topology(),
                                    net::four_class_traffic(6, 6, 6, 12));
  ConvergenceLog log;
  core::DimensionOptions options;
  options.threads = 2;
  options.convergence = &log;
  const core::DimensionResult result =
      core::dimension_windows(problem, options);
  EXPECT_FALSE(result.optimal_windows.empty());

  const std::vector<SolveRecord> records = log.records();
  ASSERT_GT(records.size(), 0u);
  // Every appended record corresponds to a distinct replayed probe;
  // speculative evaluations that the serial replay never consumed are
  // counted by the search but never surface as records.
  EXPECT_LE(log.total_appended(),
            static_cast<std::uint64_t>(result.objective_evaluations));
  for (const SolveRecord& r : records) {
    EXPECT_EQ(r.classification, obs::classify(r));
    if (r.classification == ConvergenceClass::kConverged &&
        r.samples_seen > 1) {
      // Monotone in the envelope sense: the solve ended at its minimum
      // residual, below where it started.
      EXPECT_LE(r.final_residual, r.first_residual);
      EXPECT_DOUBLE_EQ(r.final_residual, r.min_residual);
    } else {
      EXPECT_NE(r.classification, ConvergenceClass::kConverged);
    }
  }

  // The JSONL export is one valid JSON object per line, in order.
  const std::string jsonl = log.to_jsonl();
  std::size_t lines = 0;
  std::size_t start = 0;
  while (start < jsonl.size()) {
    const std::size_t end = jsonl.find('\n', start);
    ASSERT_NE(end, std::string::npos);
    const auto parsed = obs::parse_json(jsonl.substr(start, end - start));
    ASSERT_TRUE(parsed.has_value());
    ASSERT_TRUE(parsed->is_object());
    EXPECT_NE(parsed->find("solver"), nullptr);
    EXPECT_NE(parsed->find("class"), nullptr);
    EXPECT_NE(parsed->find("samples"), nullptr);
    ++lines;
    start = end + 1;
  }
  EXPECT_EQ(lines, records.size());
}

TEST(ConvergenceLog, ExportMetricsFeedsTheGlobalRegistry) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  reg.set_enabled(true);
  const obs::MetricsSnapshot before = reg.snapshot();
  ConvergenceLog log;
  SolveRecord ok = streamed_record({1e-2, 1e-6}, true);
  ok.classification = obs::classify(ok);
  log.append(std::move(ok));
  SolveRecord stuck = streamed_record({0.0}, true);
  stuck.classification = obs::classify(stuck);
  log.append(std::move(stuck));
  log.export_metrics();
  const obs::MetricsSnapshot after = reg.snapshot();
  reg.set_enabled(false);
  EXPECT_EQ(after.counter_or("windim.convergence.solves") -
                before.counter_or("windim.convergence.solves"),
            2u);
  EXPECT_EQ(after.counter_or("windim.convergence.stagnated") -
                before.counter_or("windim.convergence.stagnated"),
            1u);
  EXPECT_EQ(after.counter_or("windim.convergence.iterations") -
                before.counter_or("windim.convergence.iterations"),
            3u);
}

}  // namespace
}  // namespace windim
