#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "exact/mm_queues.h"

namespace windim::exact {
namespace {

// ----------------------------------------------------------------------- MM1

TEST(MM1Test, TextbookValues) {
  const MM1 q(2.0, 5.0);  // rho = 0.4
  EXPECT_DOUBLE_EQ(q.utilization(), 0.4);
  EXPECT_TRUE(q.stable());
  EXPECT_NEAR(q.mean_number(), 0.4 / 0.6, 1e-12);
  EXPECT_NEAR(q.mean_time(), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(q.mean_queue_waiting(), 0.4 / 0.6 - 0.4, 1e-12);
}

TEST(MM1Test, LittleLawHolds) {
  const MM1 q(3.0, 4.0);
  EXPECT_NEAR(q.mean_number(), 3.0 * q.mean_time(), 1e-12);
}

TEST(MM1Test, GeometricDistributionSumsToOne) {
  const MM1 q(1.0, 2.0);
  double total = 0.0;
  for (int n = 0; n < 200; ++n) total += q.prob_n(n);
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_NEAR(q.prob_n(0), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(q.prob_n(-1), 0.0);
}

TEST(MM1Test, UnstableQueueThrows) {
  const MM1 q(5.0, 4.0);
  EXPECT_FALSE(q.stable());
  EXPECT_THROW((void)q.mean_number(), std::domain_error);
  EXPECT_THROW((void)q.mean_time(), std::domain_error);
}

TEST(MM1Test, RejectsBadParameters) {
  EXPECT_THROW(MM1(-1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(MM1(1.0, 0.0), std::invalid_argument);
}

// ----------------------------------------------------------------------- MMm

TEST(MMmTest, OneServerReducesToMM1) {
  const MMm multi(2.0, 5.0, 1);
  const MM1 single(2.0, 5.0);
  EXPECT_NEAR(multi.mean_number(), single.mean_number(), 1e-12);
  EXPECT_NEAR(multi.mean_time(), single.mean_time(), 1e-12);
  // Erlang C with one server equals the utilization.
  EXPECT_NEAR(multi.erlang_c(), 0.4, 1e-12);
}

TEST(MMmTest, TwoServerTextbookValue) {
  // M/M/2, lambda = 3, mu = 2 => a = 1.5, rho = 0.75.
  // Erlang C = a^2/2! / ((1-rho)(1 + a + a^2/2!/(1-rho))) ... computed:
  // C = (1.125/0.25) / (1 + 1.5 + 1.125/0.25) = 4.5 / 7 = 0.642857...
  const MMm q(3.0, 2.0, 2);
  EXPECT_NEAR(q.erlang_c(), 4.5 / 7.0, 1e-12);
  EXPECT_NEAR(q.mean_number(), 1.5 + (4.5 / 7.0) * 0.75 / 0.25, 1e-12);
}

TEST(MMmTest, ManyServersApproachDelaySystem) {
  // With servers >> offered load the queueing probability vanishes and
  // N -> offered load.
  const MMm q(2.0, 1.0, 50);
  EXPECT_LT(q.erlang_c(), 1e-12);
  EXPECT_NEAR(q.mean_number(), 2.0, 1e-9);
}

TEST(MMmTest, UnstableThrows) {
  const MMm q(10.0, 1.0, 5);
  EXPECT_FALSE(q.stable());
  EXPECT_THROW((void)q.erlang_c(), std::domain_error);
}

TEST(MMmTest, RejectsZeroServers) {
  EXPECT_THROW(MMm(1.0, 1.0, 0), std::invalid_argument);
}

// --------------------------------------------------------------------- MMInf

TEST(MMInfTest, PoissonOccupancy) {
  const MMInf q(6.0, 2.0);  // mean 3
  EXPECT_DOUBLE_EQ(q.mean_number(), 3.0);
  EXPECT_DOUBLE_EQ(q.mean_time(), 0.5);
  EXPECT_NEAR(q.prob_n(0), std::exp(-3.0), 1e-12);
  EXPECT_NEAR(q.prob_n(3), std::exp(-3.0) * 27.0 / 6.0, 1e-12);
  double total = 0.0;
  for (int n = 0; n < 60; ++n) total += q.prob_n(n);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(MMInfTest, ZeroArrivalRateIsEmpty) {
  const MMInf q(0.0, 2.0);
  EXPECT_DOUBLE_EQ(q.mean_number(), 0.0);
  EXPECT_DOUBLE_EQ(q.prob_n(0), 1.0);
  EXPECT_DOUBLE_EQ(q.prob_n(1), 0.0);
}

}  // namespace
}  // namespace windim::exact
