// Pareto-front dimensioning (windim/pareto.h): front shape and
// determinism on the 4-class Canadian fixture, seed reproducibility,
// explicit-floor semantics, option validation, and the balanced-job
// box prunes for exhaustive enumeration.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "search/exhaustive.h"
#include "windim/windim.h"

namespace windim::core {
namespace {

WindowProblem four_class_problem() {
  return WindowProblem(net::canada_topology(),
                       net::four_class_traffic(6.0, 6.0, 6.0, 12.0));
}

WindowProblem two_class_problem(double s1 = 20.0, double s2 = 20.0) {
  return WindowProblem(net::canada_topology(),
                       net::two_class_traffic(s1, s2));
}

TEST(ParetoFrontTest, FourClassFrontIsNonDominatedAndSorted) {
  const WindowProblem problem = four_class_problem();
  const ParetoFront front = pareto_front(problem);
  ASSERT_GE(front.points.size(), 5u);
  EXPECT_FALSE(front.cancelled);
  EXPECT_GE(front.runs, front.points.size());
  for (std::size_t i = 1; i < front.points.size(); ++i) {
    // Sorted by ascending fairness; power strictly descends along the
    // sorted front (otherwise a point would be dominated).
    EXPECT_LT(front.points[i - 1].fairness, front.points[i].fairness);
    EXPECT_GT(front.points[i - 1].power, front.points[i].power);
  }
  for (const ParetoPoint& p : front.points) {
    EXPECT_GT(p.power, 0.0);
    EXPECT_GT(p.throughput, 0.0);
    EXPECT_GE(p.fairness, 0.0);
    EXPECT_LE(p.fairness, 1.0);
    EXPECT_DOUBLE_EQ(p.power, p.evaluation.power);
  }
}

TEST(ParetoFrontTest, SerializedFrontIsThreadCountInvariant) {
  const WindowProblem problem = four_class_problem();
  ParetoOptions serial;
  serial.base.threads = 1;
  ParetoOptions threaded;
  threaded.base.threads = 8;
  EXPECT_EQ(to_json(pareto_front(problem, serial)),
            to_json(pareto_front(problem, threaded)));
}

TEST(ParetoFrontTest, EveryPointReproducesFromItsRecordedSeed) {
  const WindowProblem problem = four_class_problem();
  const ParetoFront front = pareto_front(problem);
  for (const ParetoPoint& p : front.points) {
    DimensionOptions opts;
    opts.objective = DimensionObjective::kPowerFairConstrained;
    opts.min_fairness = p.fairness_floor;
    opts.initial_windows = p.initial_windows;
    const DimensionResult r = dimension_windows(problem, opts);
    EXPECT_TRUE(r.feasible);
    EXPECT_EQ(r.optimal_windows, p.windows);
  }
}

TEST(ParetoFrontTest, ExplicitReachableFloorBoundsTheScan) {
  // The 4-class fixture's achievable Jain maximum sits near 0.51, so
  // 0.45 cuts off the unconstrained anchor (fairness ~0.43) without
  // emptying the scan.
  ParetoOptions options;
  options.min_fairness_floor = 0.45;
  const ParetoFront front = pareto_front(four_class_problem(), options);
  ASSERT_FALSE(front.points.empty());
  for (const ParetoPoint& p : front.points) {
    EXPECT_GE(p.fairness, 0.45);
    EXPECT_GE(p.fairness_floor, 0.45);
  }
}

TEST(ParetoFrontTest, UnreachableFloorYieldsEmptyFrontNotRelaxedScan) {
  // A floor above the achievable Jain maximum must come back as
  // infeasible runs and an empty front — never as a silently widened
  // scan.  The collapsed bracket also dedupes to a single solve.
  ParetoOptions options;
  options.min_fairness_floor = 0.9999;
  const ParetoFront front = pareto_front(two_class_problem(10.0, 30.0),
                                         options);
  EXPECT_TRUE(front.points.empty());
  EXPECT_EQ(front.runs, 1u);
  EXPECT_EQ(front.infeasible_runs, 1u);
}

TEST(ParetoFrontTest, RejectsMalformedOptions) {
  const WindowProblem problem = two_class_problem();
  ParetoOptions options;
  options.num_points = 1;
  EXPECT_THROW((void)pareto_front(problem, options), std::invalid_argument);
  options = {};
  options.max_fairness_floor = 1.5;
  EXPECT_THROW((void)pareto_front(problem, options), std::invalid_argument);
  options = {};
  options.min_fairness_floor = 1.5;
  EXPECT_THROW((void)pareto_front(problem, options), std::invalid_argument);
  options = {};
  options.min_fairness_floor = std::nan("");
  EXPECT_THROW((void)pareto_front(problem, options), std::invalid_argument);
}

TEST(ParetoFrontTest, ToJsonIsOneDeterministicLine) {
  const ParetoFront front = pareto_front(four_class_problem());
  const std::string json = to_json(front);
  EXPECT_EQ(json.find('\n'), std::string::npos);
  EXPECT_NE(json.find("\"points\":["), std::string::npos);
  EXPECT_NE(json.find("\"runs\":"), std::string::npos);
  EXPECT_EQ(json, to_json(front));
}

// ---------------------------------------------------------------------
// Balanced-job box prunes over exhaustive enumeration.

TEST(ParetoPruneTest, ThroughputPruneSkipsBoxesAndKeepsOptimum) {
  const WindowProblem problem = four_class_problem();
  ObjectiveSpec spec;
  spec.kind = ObjectiveKind::kAlphaFair;
  spec.alpha = 0.0;  // total throughput: objectives[0] = -sum(lambda)
  const search::VectorObjective objective = [&](const search::Point& p) {
    return objective_vector(problem.evaluate(p), spec);
  };
  const search::Point lower(4, 1);
  const search::Point upper(4, 5);
  const search::VectorExhaustiveResult full =
      search::vector_exhaustive_search(objective, lower, upper);
  search::VectorExhaustiveOptions options;
  options.prune = balanced_job_throughput_prune(problem);
  const search::VectorExhaustiveResult pruned =
      search::vector_exhaustive_search(objective, lower, upper, options);
  EXPECT_EQ(pruned.best, full.best);
  EXPECT_EQ(pruned.best_eval.objectives, full.best_eval.objectives);
  EXPECT_GT(pruned.pruned, 0u);
  EXPECT_EQ(pruned.evaluations + pruned.pruned, full.evaluations);
}

TEST(ParetoPruneTest, PowerPruneIsSoundOnTheLattice) {
  // The power bound's 1/route-demand factor overshoots the Canadian
  // fixture's short routes, so it may legitimately prune nothing here —
  // the contract under test is soundness: the optimum never changes.
  const WindowProblem problem = two_class_problem();
  const ObjectiveSpec spec;  // kPower
  const search::VectorObjective objective = [&](const search::Point& p) {
    return objective_vector(problem.evaluate(p), spec);
  };
  const search::Point lower(2, 1);
  const search::Point upper(2, 6);
  const search::VectorExhaustiveResult full =
      search::vector_exhaustive_search(objective, lower, upper);
  search::VectorExhaustiveOptions options;
  options.prune = balanced_job_power_prune(problem);
  const search::VectorExhaustiveResult pruned =
      search::vector_exhaustive_search(objective, lower, upper, options);
  EXPECT_EQ(pruned.best, full.best);
  EXPECT_EQ(pruned.evaluations + pruned.pruned, full.evaluations);
}

}  // namespace
}  // namespace windim::core
