// Continental-scale regression tests for the SoA sweep kernels.
//
// These pin the two large-N bug classes this engine has actually
// shipped: 32-bit offset overflow in the demand-slab addressing (the
// 100k-chain fixture's slab is > 2^31 bytes of index space when cells
// are counted in ints) and solve-time histogram saturation (a 10k-chain
// solve must land inside the widened latency bounds, not in the
// overflow bucket).  The 100k test doubles as the ASan/UBSan target:
// the sanitizer job runs this binary and any offset miscomputation
// turns into a hard report instead of a silent wrong answer.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "mva/approx.h"
#include "obs/metrics.h"
#include "qn/compiled_model.h"
#include "qn/network.h"
#include "solver/registry.h"
#include "solver/solver.h"
#include "solver/workspace.h"
#include "verify/gen.h"

namespace windim {
namespace {

verify::Instance large_instance(int chains, std::uint64_t seed) {
  verify::GenOptions opt;
  opt.large_chains = chains;
  return verify::generate(verify::Family::kLargeCyclic, seed, opt);
}

// Solves a large-cyclic fixture with the native heuristic kernel and
// checks the physical invariants that survive any refactor: finite
// positive windows and per-chain population conservation
// (sum_n queue[n][r] == pop_r within fixed-point tolerance).
void solve_and_check_invariants(int chains, std::uint64_t seed) {
  const verify::Instance inst = large_instance(chains, seed);
  const qn::CompiledModel compiled = qn::CompiledModel::compile(inst.model);
  ASSERT_EQ(compiled.num_chains(), chains);
  const std::vector<int> population(compiled.base_populations().begin(),
                                    compiled.base_populations().end());
  const solver::Solver& s =
      solver::SolverRegistry::instance().require("heuristic-mva");
  solver::Workspace ws;
  // The sanitizer job is this test's target, so bound the sweep count:
  // every sweep touches every demand cell (the offsets under test), and
  // population conservation holds after each sweep, not just at the
  // fixed point.  Full convergence at this scale takes ~1000 sweeps and
  // is pinned at 10k scale instead (equivalence + histogram tests).
  mva::ApproxMvaOptions bounded;
  bounded.max_iterations = 40;
  ws.hints.mva = &bounded;
  const solver::Solution sol = s.solve(compiled, population, ws);
  EXPECT_GT(sol.iterations, 0);
  EXPECT_LE(sol.iterations, 40);
  ASSERT_EQ(sol.chain_throughput.size(), static_cast<std::size_t>(chains));

  const std::size_t R = static_cast<std::size_t>(compiled.num_chains());
  const std::size_t N = static_cast<std::size_t>(compiled.num_stations());
  std::vector<double> per_chain_queue(R, 0.0);
  for (std::size_t n = 0; n < N; ++n) {
    for (std::size_t r = 0; r < R; ++r) {
      per_chain_queue[r] += sol.mean_queue[n * R + r];
    }
  }
  for (std::size_t r = 0; r < R; ++r) {
    ASSERT_TRUE(std::isfinite(sol.chain_throughput[r])) << "chain " << r;
    ASSERT_GT(sol.chain_throughput[r], 0.0) << "chain " << r;
    // MVA distributes each chain's full population across its stations
    // at every sweep, so conservation is structural — tolerance only
    // covers fixed-point residual.
    ASSERT_NEAR(per_chain_queue[r], static_cast<double>(population[r]),
                1e-6 * population[r])
        << "chain " << r;
  }
}

TEST(LargeScale, HundredThousandChainFixtureCompilesAndSolves) {
  // 100k chains x 32 stations = 3.2M demand cells; every slab offset
  // must be computed in std::size_t (a 32-bit int row stride overflows
  // far below this).  Passing under ASan/UBSan is the acceptance bar.
  solve_and_check_invariants(100000, 1);
}

TEST(LargeScale, TenThousandChainSolveStaysInsideHistogramBounds) {
  // Regression for the solve-time histogram saturating on large
  // models: the widened default latency bounds reach 60 s, so a
  // 10k-chain solve must never land in the overflow bucket.
  const verify::Instance inst = large_instance(10000, 1);
  const qn::CompiledModel compiled = qn::CompiledModel::compile(inst.model);
  const std::vector<int> population(compiled.base_populations().begin(),
                                    compiled.base_populations().end());
  const solver::Solver& s =
      solver::SolverRegistry::instance().require("heuristic-mva");

  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  reg.reset();
  reg.set_enabled(true);
  solver::Workspace ws;
  const solver::Solution sol = s.solve_profiled(compiled, population, ws);
  EXPECT_TRUE(sol.converged);
  const obs::MetricsSnapshot snap = reg.snapshot();
  reg.set_enabled(false);
  reg.reset();

  const obs::HistogramSnapshot* latency =
      snap.histogram("solver.heuristic-mva.solve_us");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->count, 1u);
  EXPECT_EQ(latency->overflow(), 0u)
      << "10k-chain solve overflowed the latency histogram (max_observed="
      << latency->max_observed << " us, top bound=" << latency->bounds.back()
      << " us)";
  EXPECT_GE(latency->bounds.back(), 6e7)
      << "default latency bounds regressed below 60 s";
}

}  // namespace
}  // namespace windim
