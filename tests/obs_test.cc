// The observability layer: MetricsRegistry semantics (cross-thread
// merge, snapshot isolation, reset, disabled-mode no-ops), the JSON
// writer, the search-trace ring, and the determinism contract — the
// JSONL trace of a dimensioning run is byte-identical for serial,
// --threads 4 and --threads 0 (hardware) runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "net/examples.h"
#include "obs/derived.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"
#include "windim/dimension.h"
#include "windim/problem.h"

namespace windim {
namespace {

// ------------------------------------------------------------- registry

TEST(MetricsRegistryTest, CountersGaugesHistogramsMergeAcrossThreads) {
  obs::MetricsRegistry reg;
  reg.set_enabled(true);
  const obs::Counter counter = reg.counter("jobs");
  const obs::Gauge gauge = reg.gauge("hwm");
  const obs::Histogram hist = reg.histogram("lat", {10.0, 100.0});

  util::ThreadPool pool(4);
  std::vector<std::function<void()>> jobs;
  for (int i = 0; i < 40; ++i) {
    jobs.push_back([&, i] {
      counter.add(2);
      gauge.record_max(static_cast<double>(i));
      hist.observe(static_cast<double>(i * 10));
    });
  }
  pool.run_batch(std::move(jobs));

  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter_or("jobs"), 80u);
  EXPECT_DOUBLE_EQ(snap.gauge_or("hwm"), 39.0);
  const obs::HistogramSnapshot* h = snap.histogram("lat");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 40u);
  // Observations 0..390 in steps of 10: <=10 -> {0, 10}, <=100 ->
  // {20..100}, +inf bucket -> {110..390}.
  ASSERT_EQ(h->counts.size(), 3u);
  EXPECT_EQ(h->counts[0], 2u);
  EXPECT_EQ(h->counts[1], 9u);
  EXPECT_EQ(h->counts[2], 29u);
  double expected_sum = 0.0;
  for (int i = 0; i < 40; ++i) expected_sum += i * 10;
  EXPECT_DOUBLE_EQ(h->sum, expected_sum);
}

TEST(MetricsRegistryTest, HistogramOverflowBucketKeepsMaxObserved) {
  // Regression for the solve_us saturation bug: a solve slower than the
  // top bound used to vanish into a clipped bucket with no record of
  // HOW slow it was.  The overflow bucket now counts it and
  // max_observed keeps the magnitude.
  obs::MetricsRegistry reg;
  reg.set_enabled(true);
  const obs::Histogram h = reg.histogram("solve_us", {10.0, 100.0});
  h.observe(5.0);
  h.observe(50.0);
  h.observe(1e9);  // far past the top bound
  const obs::MetricsSnapshot snap = reg.snapshot();
  const obs::HistogramSnapshot* s = snap.histogram("solve_us");
  ASSERT_NE(s, nullptr);
  ASSERT_EQ(s->counts.size(), s->bounds.size() + 1);
  EXPECT_EQ(s->counts[0], 1u);
  EXPECT_EQ(s->counts[1], 1u);
  EXPECT_EQ(s->overflow(), 1u);
  EXPECT_EQ(s->count, 3u);
  EXPECT_DOUBLE_EQ(s->max_observed, 1e9);
  // The JSON export carries both fields explicitly.
  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"overflow\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"max_observed\":1000000000"), std::string::npos)
      << json;
}

TEST(MetricsRegistryTest, SnapshotsAreSortedByNameRegardlessOfOrder) {
  // Two registries populated with identical state in OPPOSITE
  // registration order must produce element-for-element equal
  // snapshots — the diffability contract monitoring relies on.
  const std::vector<std::string> names = {"zeta", "alpha", "mid"};
  obs::MetricsRegistry forward;
  obs::MetricsRegistry backward;
  forward.set_enabled(true);
  backward.set_enabled(true);
  for (std::size_t i = 0; i < names.size(); ++i) {
    forward.counter(names[i]).add(i + 1);
    forward.gauge(names[i] + ".g").record_max(static_cast<double>(i));
    backward.counter(names[names.size() - 1 - i])
        .add(names.size() - i);
    backward.gauge(names[names.size() - 1 - i] + ".g")
        .record_max(static_cast<double>(names.size() - 1 - i));
  }
  const obs::MetricsSnapshot a = forward.snapshot();
  const obs::MetricsSnapshot b = backward.snapshot();
  ASSERT_EQ(a.counters.size(), b.counters.size());
  for (std::size_t i = 0; i < a.counters.size(); ++i) {
    EXPECT_EQ(a.counters[i], b.counters[i]);
  }
  ASSERT_EQ(a.gauges.size(), b.gauges.size());
  for (std::size_t i = 0; i < a.gauges.size(); ++i) {
    EXPECT_EQ(a.gauges[i].first, b.gauges[i].first);
    EXPECT_DOUBLE_EQ(a.gauges[i].second, b.gauges[i].second);
  }
  // Sorted: names ascend.
  for (std::size_t i = 1; i < a.counters.size(); ++i) {
    EXPECT_LT(a.counters[i - 1].first, a.counters[i].first);
  }
  // Two-snapshot diff of one registry: only the touched metric moves.
  forward.counter("mid").add(5);
  const obs::MetricsSnapshot after = forward.snapshot();
  ASSERT_EQ(after.counters.size(), a.counters.size());
  for (std::size_t i = 0; i < a.counters.size(); ++i) {
    EXPECT_EQ(after.counters[i].first, a.counters[i].first);
    const std::uint64_t delta =
        after.counters[i].second - a.counters[i].second;
    EXPECT_EQ(delta, a.counters[i].first == "mid" ? 5u : 0u);
  }
}

TEST(MetricsRegistryTest, SnapshotIsIsolatedFromLaterMutation) {
  obs::MetricsRegistry reg;
  reg.set_enabled(true);
  const obs::Counter c = reg.counter("n");
  c.add(3);
  const obs::MetricsSnapshot before = reg.snapshot();
  c.add(10);
  EXPECT_EQ(before.counter_or("n"), 3u);
  EXPECT_EQ(reg.snapshot().counter_or("n"), 13u);
}

TEST(MetricsRegistryTest, ResetZeroesValuesButKeepsRegistrations) {
  obs::MetricsRegistry reg;
  reg.set_enabled(true);
  const obs::Counter c = reg.counter("n");
  const obs::Gauge g = reg.gauge("g");
  const obs::Histogram h = reg.histogram("h");
  c.add(7);
  g.record_max(2.5);
  h.observe(1.0);
  reg.reset();
  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter_or("n", 999), 0u);  // registered, value 0
  EXPECT_DOUBLE_EQ(snap.gauge_or("g", 999.0), 0.0);
  ASSERT_NE(snap.histogram("h"), nullptr);
  EXPECT_EQ(snap.histogram("h")->count, 0u);
  // Handles stay valid across reset.
  c.add(1);
  EXPECT_EQ(reg.snapshot().counter_or("n"), 1u);
}

TEST(MetricsRegistryTest, DisabledRegistryRecordsNothing) {
  obs::MetricsRegistry reg;  // disabled by default
  ASSERT_FALSE(reg.enabled());
  const obs::Counter c = reg.counter("n");
  const obs::Gauge g = reg.gauge("g");
  const obs::Histogram h = reg.histogram("h");
  c.add(5);
  g.record_max(9.0);
  h.observe(3.0);
  {
    obs::ScopedTimerUs timer(h);
  }
  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter_or("n"), 0u);
  EXPECT_DOUBLE_EQ(snap.gauge_or("g"), 0.0);
  EXPECT_EQ(snap.histogram("h")->count, 0u);
}

TEST(MetricsRegistryTest, DetachedHandlesAreNoOps) {
  obs::Counter c;
  obs::Gauge g;
  obs::Histogram h;
  c.add();
  g.record_max(1.0);
  h.observe(1.0);
  obs::ScopedTimerUs timer(h);  // must not crash on destruction either
}

TEST(MetricsRegistryTest, RegistrationIsIdempotentByName) {
  obs::MetricsRegistry reg;
  reg.set_enabled(true);
  const obs::Counter a = reg.counter("same");
  const obs::Counter b = reg.counter("same");
  a.add(1);
  b.add(2);
  EXPECT_EQ(reg.snapshot().counter_or("same"), 3u);
  EXPECT_EQ(reg.snapshot().counters.size(), 1u);
}

TEST(MetricsRegistryTest, ScopedTimerObservesElapsedMicroseconds) {
  obs::MetricsRegistry reg;
  reg.set_enabled(true);
  const obs::Histogram h = reg.histogram("t");
  {
    obs::ScopedTimerUs timer(h);
  }
  const obs::MetricsSnapshot snapshot = reg.snapshot();
  const obs::HistogramSnapshot* snap = snapshot.histogram("t");
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->count, 1u);
  EXPECT_GE(snap->sum, 0.0);
}

// ----------------------------------------------------------------- json

TEST(JsonWriterTest, WritesNestedStructuresWithEscaping) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("a\"b");
  w.value("x\ny");
  w.key("list");
  w.begin_array();
  w.value(1);
  w.value(2.5);
  w.value(true);
  w.end_array();
  w.key("obj");
  w.begin_object();
  w.end_object();
  w.end_object();
  EXPECT_EQ(std::move(w).str(),
            "{\"a\\\"b\":\"x\\ny\",\"list\":[1,2.5,true],\"obj\":{}}");
}

// -------------------------------------------------------------- derived

TEST(DerivedMetricsTest, JainFairnessIndex) {
  const std::vector<double> even = {2.0, 2.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(obs::jain_fairness(even), 1.0);
  const std::vector<double> starved = {4.0, 0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(obs::jain_fairness(starved), 0.25);
  EXPECT_DOUBLE_EQ(obs::jain_fairness(std::vector<double>{}), 1.0);
  EXPECT_DOUBLE_EQ(obs::jain_fairness(std::vector<double>{0.0, 0.0}), 1.0);
}

TEST(DerivedMetricsTest, EvaluationCarriesFairnessOverChainPowers) {
  const core::WindowProblem problem(net::canada_topology(),
                                    net::two_class_traffic(20.0, 20.0));
  const core::Evaluation ev = problem.evaluate({4, 4});
  const std::vector<double> powers =
      obs::chain_powers(ev.class_throughput, ev.class_delay);
  EXPECT_GT(ev.fairness, 0.0);
  EXPECT_LE(ev.fairness, 1.0);
  EXPECT_DOUBLE_EQ(ev.fairness, obs::jain_fairness(powers));
}

// ---------------------------------------------------------------- trace

TEST(SearchTraceTest, RingDropsOldestOnOverflow) {
  obs::SearchTrace trace(4);
  for (int i = 0; i < 6; ++i) {
    obs::TraceRecord r;
    r.step = static_cast<std::uint64_t>(i);
    trace.append(std::move(r));
  }
  EXPECT_EQ(trace.total_appended(), 6u);
  EXPECT_EQ(trace.dropped(), 2u);
  const std::vector<obs::TraceRecord> records = trace.records();
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records.front().step, 2u);
  EXPECT_EQ(records.back().step, 5u);
}

TEST(SearchTraceTest, JsonlHasFixedFieldOrder) {
  obs::SearchTrace trace;
  obs::TraceRecord r;
  r.step = 3;
  r.windows = {2, 5};
  r.objective = 0.125;
  r.objective_vector = {0.125, -0.5};
  r.violation = 0.25;
  r.power = 8.0;
  r.solver = "heuristic-mva";
  r.cache_hit = true;
  r.anchor = {2, 4};
  trace.append(std::move(r));
  EXPECT_EQ(trace.to_jsonl(),
            "{\"step\":3,\"windows\":[2,5],\"F\":0.125,\"obj\":[0.125,-0.5],"
            "\"viol\":0.25,\"P\":8,"
            "\"solver\":\"heuristic-mva\",\"cache_hit\":true,"
            "\"anchor\":[2,4],\"thread\":0}\n");
}

TEST(SearchTraceTest, ClearResetsRecordsAndOrdinals) {
  obs::SearchTrace trace;
  trace.append(obs::TraceRecord{});
  trace.clear();
  EXPECT_EQ(trace.total_appended(), 0u);
  EXPECT_TRUE(trace.records().empty());
}

// ------------------------------------------- trace determinism contract

std::string trace_of_run(const core::WindowProblem& problem, int threads,
                         core::DimensionResult* result_out = nullptr) {
  obs::SearchTrace trace;
  core::DimensionOptions options;
  options.threads = threads;
  options.trace = &trace;
  const core::DimensionResult result = dimension_windows(problem, options);
  if (result_out != nullptr) *result_out = result;
  return trace.to_jsonl();
}

TEST(SearchTraceTest, DimensionTraceIsByteIdenticalAcrossThreadCounts) {
  const core::WindowProblem problem(net::canada_topology(),
                                    net::two_class_traffic(20.0, 20.0));
  core::DimensionResult serial_result;
  const std::string serial = trace_of_run(problem, 1, &serial_result);
  ASSERT_FALSE(serial.empty());
  // One record per serially resolved probe: evaluations + revisits.
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(serial.begin(), serial.end(), '\n')),
            serial_result.objective_evaluations + serial_result.cache_hits);
  EXPECT_EQ(serial, trace_of_run(problem, 4));
  EXPECT_EQ(serial, trace_of_run(problem, 0));  // hardware concurrency
}

TEST(SearchTraceTest, FourClassTraceIsByteIdenticalAcrossThreadCounts) {
  const core::WindowProblem problem(
      net::canada_topology(), net::four_class_traffic(6.0, 6.0, 6.0, 12.0));
  const std::string serial = trace_of_run(problem, 1);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, trace_of_run(problem, 4));
}

TEST(SearchTraceTest, TraceRecordsCarrySolverAndAnchors) {
  const core::WindowProblem problem(net::canada_topology(),
                                    net::two_class_traffic(20.0, 20.0));
  obs::SearchTrace trace;
  core::DimensionOptions options;
  options.trace = &trace;
  (void)dimension_windows(problem, options);
  const std::vector<obs::TraceRecord> records = trace.records();
  ASSERT_FALSE(records.empty());
  // Step indices are the serial probe order.
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].step, i);
    EXPECT_EQ(records[i].solver, "heuristic-mva");
    EXPECT_EQ(records[i].windows.size(), 2u);
    EXPECT_EQ(records[i].thread, 0u);  // appended by the search thread
  }
  // The initial probe is evaluated cold: no anchor yet, not a revisit.
  EXPECT_FALSE(records.front().cache_hit);
  EXPECT_TRUE(records.front().anchor.empty());
  // Warm starts kick in after the first base point: some later fresh
  // probe must carry a non-empty anchor.
  bool saw_anchor = false;
  for (const obs::TraceRecord& r : records) {
    if (!r.cache_hit && !r.anchor.empty()) saw_anchor = true;
  }
  EXPECT_TRUE(saw_anchor);
}

TEST(SearchTraceTest, NullTraceKeepsDimensionUntouched) {
  // Same run with and without a trace: identical result (the hook only
  // observes).
  const core::WindowProblem problem(net::canada_topology(),
                                    net::two_class_traffic(20.0, 20.0));
  core::DimensionOptions plain;
  const core::DimensionResult a = dimension_windows(problem, plain);
  obs::SearchTrace trace;
  core::DimensionOptions traced;
  traced.trace = &trace;
  const core::DimensionResult b = dimension_windows(problem, traced);
  EXPECT_EQ(a.optimal_windows, b.optimal_windows);
  EXPECT_EQ(a.base_points, b.base_points);
  EXPECT_EQ(a.objective_evaluations, b.objective_evaluations);
}

}  // namespace
}  // namespace windim
