// Live serving-plane observability (PR 10): request-scoped traces with
// real stage spans, sliding-window rates and quantiles in the `stats`
// reply, the OpenMetrics `metrics` op, the flight recorder's `dump` op
// and fault dump, and SLO burn accounting — all pinned deterministically
// through injected clocks (obs::ManualWindowClock for window placement,
// obs::SteppingWindowClock for span/latency durations).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/window.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace windim {
namespace {

constexpr const char* kSpec =
    "node A\nnode B\nnode C\n"
    "channel A B 50\nchannel B C 50\n"
    "class east rate 20 path A B C\n"
    "class west rate 10 path C B\n";

std::string json_escape(const std::string& s) {
  std::string out;
  obs::JsonWriter::append_escaped(out, s);
  return out;
}

std::string evaluate_line(int id) {
  return "{\"op\":\"evaluate\",\"spec\":\"" + json_escape(kSpec) +
         "\",\"windows\":[2,1],\"id\":" + std::to_string(id) + "}";
}

obs::JsonValue parse_reply(const std::string& line) {
  const std::optional<obs::JsonValue> doc = obs::parse_json(line);
  EXPECT_TRUE(doc.has_value()) << "reply is not valid JSON: " << line;
  return doc.value_or(obs::JsonValue{});
}

/// Base options every test here uses: single worker (deterministic
/// request interleaving), global registry untouched.
serve::ServeOptions live_options(obs::WindowClock* clock) {
  serve::ServeOptions options;
  options.threads = 1;
  options.enable_metrics = false;
  options.clock = clock;
  return options;
}

const obs::JsonValue* window_of(const obs::JsonValue& reply,
                                const std::string& op) {
  const obs::JsonValue* result = reply.find("result");
  if (result == nullptr) return nullptr;
  const obs::JsonValue* window = result->find("window");
  if (window == nullptr) return nullptr;
  const obs::JsonValue* by_op = window->find("by_op");
  if (by_op == nullptr) return nullptr;
  return by_op->find(op);
}

// --------------------------------------------------- windowed readouts

TEST(ServeLiveTest, StatsPinsWindowRatesUnderManualClock) {
  obs::ManualWindowClock clock;
  serve::Server server(live_options(&clock));

  for (int i = 0; i < 5; ++i) {
    EXPECT_NE(server.handle_line(evaluate_line(i)).json.find("\"ok\":true"),
              std::string::npos);
  }
  clock.advance_seconds(5);
  // One parse error five seconds later.
  (void)server.handle_line("this is not json");

  const obs::JsonValue reply =
      parse_reply(server.handle_line("{\"op\":\"stats\",\"id\":9}").json);
  const obs::JsonValue* evaluate = window_of(reply, "evaluate");
  ASSERT_NE(evaluate, nullptr);
  EXPECT_DOUBLE_EQ(evaluate->number_or("rate_10s", -1.0), 0.5);
  EXPECT_DOUBLE_EQ(evaluate->number_or("rate_60s", -1.0), 5.0 / 60.0);
  EXPECT_DOUBLE_EQ(evaluate->number_or("errors_60s", -1.0), 0.0);

  // The aggregate row sees the parse error too (6 requests in 10 s).
  const obs::JsonValue* all = window_of(reply, "all");
  ASSERT_NE(all, nullptr);
  EXPECT_DOUBLE_EQ(all->number_or("rate_10s", -1.0), 0.6);
  EXPECT_DOUBLE_EQ(all->number_or("errors_60s", -1.0), 1.0);

  // 30 s later the evaluate burst left the 10 s window but not the
  // 60 s one.
  clock.advance_seconds(30);
  const obs::JsonValue later =
      parse_reply(server.handle_line("{\"op\":\"stats\",\"id\":10}").json);
  const obs::JsonValue* evaluate_later = window_of(later, "evaluate");
  ASSERT_NE(evaluate_later, nullptr);
  EXPECT_DOUBLE_EQ(evaluate_later->number_or("rate_10s", -1.0), 0.0);
  EXPECT_DOUBLE_EQ(evaluate_later->number_or("rate_60s", -1.0), 5.0 / 60.0);
}

// Two servers fed the same request stream under fresh stepping clocks
// produce byte-identical stats replies: every windowed rate and
// quantile is a pure function of the request stream — the live plane's
// determinism pin.
TEST(ServeLiveTest, IdenticalStreamsYieldByteIdenticalWindowedStats) {
  const auto run = [] {
    obs::SteppingWindowClock clock(1000);  // 1 ms per clock read
    serve::Server server(live_options(&clock));
    (void)server.handle_line(evaluate_line(1));
    (void)server.handle_line(evaluate_line(2));
    (void)server.handle_line("{\"op\":\"bogus\"}");
    return server.handle_line("{\"op\":\"stats\",\"id\":3}").json;
  };
  const std::string first = run();
  const std::string second = run();
  EXPECT_EQ(first, second);

  // And the quantiles are real values, not zeros: the stepping clock
  // advanced between the request's first and last reads.
  const obs::JsonValue reply = parse_reply(first);
  const obs::JsonValue* evaluate = window_of(reply, "evaluate");
  ASSERT_NE(evaluate, nullptr);
  EXPECT_GT(evaluate->number_or("p50_us_60s", 0.0), 0.0);
  EXPECT_GE(evaluate->number_or("p99_us_60s", 0.0),
            evaluate->number_or("p50_us_60s", 0.0));
}

// ------------------------------------------------------------- tracing

TEST(ServeLiveTest, TraceOpDrainsRealStageSpans) {
  obs::SteppingWindowClock clock(10);
  serve::Server server(live_options(&clock));
  (void)server.handle_line(evaluate_line(7));

  const obs::JsonValue reply =
      parse_reply(server.handle_line("{\"op\":\"trace\",\"id\":8}").json);
  const obs::JsonValue* result = reply.find("result");
  ASSERT_NE(result, nullptr);
  EXPECT_TRUE(result->find("enabled")->boolean);
  const obs::JsonValue* traces = result->find("traces");
  ASSERT_NE(traces, nullptr);
  ASSERT_EQ(traces->array.size(), 1u);

  const obs::JsonValue& t = traces->array[0];
  EXPECT_EQ(t.string_or("op", ""), "evaluate");
  EXPECT_EQ(t.string_or("id", ""), "7");
  EXPECT_EQ(t.string_or("outcome", ""), "ok");
  EXPECT_GT(t.number_or("topology_hash", 0.0), 0.0);
  EXPECT_GT(t.number_or("total_us", 0.0), 0.0);

  const obs::JsonValue* spans = t.find("spans");
  ASSERT_NE(spans, nullptr);
  std::vector<std::string> names;
  for (const obs::JsonValue& s : spans->array) {
    names.push_back(std::string(s.string_or("name", "")));
    // Real spans from the stepping clock: every stage took > 0 us.
    EXPECT_GT(s.number_or("dur_us", 0.0), 0.0);
  }
  EXPECT_EQ(names, (std::vector<std::string>{
                       "parse", "cache_lookup", "workspace_lease", "solve"}));
}

TEST(ServeLiveTest, TraceLimitLeavesTheRestBuffered) {
  obs::ManualWindowClock clock;
  serve::Server server(live_options(&clock));
  for (int i = 0; i < 4; ++i) (void)server.handle_line(evaluate_line(i));

  const obs::JsonValue first = parse_reply(
      server.handle_line("{\"op\":\"trace\",\"limit\":1,\"id\":5}").json);
  const obs::JsonValue* result = first.find("result");
  ASSERT_NE(result, nullptr);
  ASSERT_EQ(result->find("traces")->array.size(), 1u);
  // Oldest first.
  EXPECT_EQ(result->find("traces")->array[0].string_or("id", ""), "0");
  EXPECT_DOUBLE_EQ(result->number_or("buffered", -1.0), 3.0);

  // The remaining three (plus the first trace request itself) drain on
  // the next unlimited call.
  const obs::JsonValue second =
      parse_reply(server.handle_line("{\"op\":\"trace\",\"id\":6}").json);
  EXPECT_EQ(second.find("result")->find("traces")->array.size(), 4u);
}

TEST(ServeLiveTest, QueueSpanCoversTransportEnqueueGap) {
  obs::SteppingWindowClock clock(10);
  serve::Server server(live_options(&clock));
  std::istringstream in(evaluate_line(1) + "\n");
  std::ostringstream out;
  EXPECT_EQ(server.serve_stream(in, out), 0);

  const std::vector<serve::RequestTrace> traces = server.traces().drain();
  ASSERT_EQ(traces.size(), 1u);
  ASSERT_FALSE(traces[0].spans.empty());
  EXPECT_EQ(traces[0].spans[0].name, "queue");
  EXPECT_GT(traces[0].spans[0].dur_us, 0u);
}

// ------------------------------------------------- flight recorder

TEST(ServeLiveTest, DumpOpReturnsDigestsAndWritesJsonl) {
  const std::string path = ::testing::TempDir() + "windim_flight_test.jsonl";
  std::remove(path.c_str());

  obs::ManualWindowClock clock;
  serve::ServeOptions options = live_options(&clock);
  options.flight_path = path;
  serve::Server server(options);

  (void)server.handle_line(evaluate_line(1));
  (void)server.handle_line("{\"op\":\"bogus\"}");

  const obs::JsonValue reply =
      parse_reply(server.handle_line("{\"op\":\"dump\",\"id\":3}").json);
  const obs::JsonValue* result = reply.find("result");
  ASSERT_NE(result, nullptr);
  EXPECT_TRUE(result->find("written")->boolean);
  const obs::JsonValue* digests = result->find("digests");
  ASSERT_NE(digests, nullptr);
  ASSERT_EQ(digests->array.size(), 2u);
  // Oldest first, seq monotone, taxonomy codes as outcomes.
  EXPECT_DOUBLE_EQ(digests->array[0].number_or("seq", -1.0), 1.0);
  EXPECT_EQ(digests->array[0].string_or("op", ""), "evaluate");
  EXPECT_EQ(digests->array[0].string_or("outcome", ""), "ok");
  EXPECT_DOUBLE_EQ(digests->array[1].number_or("seq", -1.0), 2.0);
  EXPECT_EQ(digests->array[1].string_or("outcome", ""), "invalid_request");
  EXPECT_GT(digests->array[0].number_or("topology_hash", 0.0), 0.0);

  // The JSONL file mirrors the ring: one parseable object per line.
  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::string line;
  int lines = 0;
  while (std::getline(file, line)) {
    const std::optional<obs::JsonValue> doc = obs::parse_json(line);
    ASSERT_TRUE(doc.has_value()) << line;
    EXPECT_NE(doc->find("seq"), nullptr);
    EXPECT_NE(doc->find("outcome"), nullptr);
    ++lines;
  }
  EXPECT_EQ(lines, 2);
  std::remove(path.c_str());
}

TEST(ServeLiveTest, FlightRingKeepsOnlyTheLastN) {
  obs::ManualWindowClock clock;
  serve::ServeOptions options = live_options(&clock);
  options.flight_capacity = 4;
  serve::Server server(options);
  for (int i = 0; i < 10; ++i) (void)server.handle_line(evaluate_line(i));

  const std::vector<serve::RequestDigest> digests = server.flight().snapshot();
  ASSERT_EQ(digests.size(), 4u);
  EXPECT_EQ(digests.front().seq, 7u);
  EXPECT_EQ(digests.back().seq, 10u);
  EXPECT_EQ(server.flight().total(), 10u);
}

// A scripted fault session: the internal-error reply triggers an
// automatic flight dump whose JSONL reproduces the session's digests,
// fault included.
TEST(ServeLiveTest, InternalErrorTriggersFaultDump) {
  const std::string path = ::testing::TempDir() + "windim_fault_dump.jsonl";
  std::remove(path.c_str());

  obs::ManualWindowClock clock;
  serve::ServeOptions options = live_options(&clock);
  options.flight_path = path;
  serve::Server server(options);

  (void)server.handle_line(evaluate_line(1));
  // recal's multiplicity layer overflows on absurd windows — the
  // taxonomy's `internal` bucket, i.e. a fault.
  const std::string fault_line =
      "{\"op\":\"evaluate\",\"spec\":\"" + json_escape(kSpec) +
      "\",\"windows\":[100000,100000],\"solver\":\"recal\",\"id\":2}";
  const obs::JsonValue reply = parse_reply(server.handle_line(fault_line).json);
  ASSERT_NE(reply.find("error"), nullptr);
  EXPECT_EQ(reply.find("error")->string_or("code", ""), "internal");

  std::ifstream file(path);
  ASSERT_TRUE(file.good()) << "fault did not dump the flight recorder";
  std::string line;
  std::vector<std::string> outcomes;
  while (std::getline(file, line)) {
    const std::optional<obs::JsonValue> doc = obs::parse_json(line);
    ASSERT_TRUE(doc.has_value());
    outcomes.push_back(std::string(doc->string_or("outcome", "")));
  }
  EXPECT_EQ(outcomes, (std::vector<std::string>{"ok", "internal"}));
  std::remove(path.c_str());
}

// ----------------------------------------------------------- SLO burn

TEST(ServeLiveTest, DeadlineBreachCountsTowardSloBurn) {
  obs::ManualWindowClock clock;
  serve::Server server(live_options(&clock));

  // An effectively-zero deadline dies of deadline_exceeded; two healthy
  // requests frame it.
  (void)server.handle_line(evaluate_line(1));
  const std::string doomed =
      "{\"op\":\"evaluate\",\"spec\":\"" + json_escape(kSpec) +
      "\",\"windows\":[2,1],\"deadline_ms\":0.000001,\"id\":2}";
  const obs::JsonValue reply = parse_reply(server.handle_line(doomed).json);
  ASSERT_NE(reply.find("error"), nullptr);
  EXPECT_EQ(reply.find("error")->string_or("code", ""), "deadline_exceeded");
  (void)server.handle_line(evaluate_line(3));

  const obs::JsonValue stats =
      parse_reply(server.handle_line("{\"op\":\"stats\",\"id\":4}").json);
  const obs::JsonValue* evaluate = window_of(stats, "evaluate");
  ASSERT_NE(evaluate, nullptr);
  EXPECT_DOUBLE_EQ(evaluate->number_or("slo_breaches_60s", -1.0), 1.0);
  EXPECT_DOUBLE_EQ(evaluate->number_or("slo_breaches_total", -1.0), 1.0);
  EXPECT_DOUBLE_EQ(evaluate->number_or("slo_burn_60s", -1.0), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(evaluate->number_or("errors_60s", -1.0), 1.0);
}

TEST(ServeLiveTest, LateSuccessBurnsTheBudgetToo) {
  // 1 s of stepping-clock time per read: an evaluate request "takes"
  // several injected seconds, far past a 5 s deadline, while the real
  // wall-clock deadline token (also 5 s) never fires on a sub-ms solve.
  obs::SteppingWindowClock clock(1'000'000);
  serve::Server server(live_options(&clock));
  const std::string line =
      "{\"op\":\"evaluate\",\"spec\":\"" + json_escape(kSpec) +
      "\",\"windows\":[2,1],\"deadline_ms\":5000,\"id\":1}";
  const obs::JsonValue reply = parse_reply(server.handle_line(line).json);
  ASSERT_NE(reply.find("ok"), nullptr);
  EXPECT_TRUE(reply.find("ok")->boolean);

  const obs::JsonValue stats =
      parse_reply(server.handle_line("{\"op\":\"stats\",\"id\":2}").json);
  const obs::JsonValue* evaluate = window_of(stats, "evaluate");
  ASSERT_NE(evaluate, nullptr);
  EXPECT_DOUBLE_EQ(evaluate->number_or("slo_breaches_60s", -1.0), 1.0);
  EXPECT_DOUBLE_EQ(evaluate->number_or("errors_60s", -1.0), 0.0);
}

// ------------------------------------------------------------- metrics

TEST(ServeLiveTest, MetricsOpReturnsParseableOpenMetrics) {
  obs::ManualWindowClock clock;
  serve::Server server(live_options(&clock));
  // 10 requests in the 10 s window: rate_10s = 1, an integral render.
  for (int i = 0; i < 10; ++i) (void)server.handle_line(evaluate_line(i));

  const obs::JsonValue reply =
      parse_reply(server.handle_line("{\"op\":\"metrics\",\"id\":11}").json);
  const obs::JsonValue* result = reply.find("result");
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(result->string_or("content_type", ""),
            "application/openmetrics-text; version=1.0.0; charset=utf-8");
  const std::string body(result->string_or("exposition", ""));
  // Ends with the mandatory terminator and carries the windowed rows
  // under the distinct windim_serve_window_* namespace.
  ASSERT_GE(body.size(), 6u);
  EXPECT_EQ(body.substr(body.size() - 6), "# EOF\n");
  EXPECT_NE(body.find("# TYPE windim_serve_window_rate_10s gauge\n"),
            std::string::npos);
  EXPECT_NE(body.find("windim_serve_window_rate_10s{op=\"evaluate\"} 1\n"),
            std::string::npos);
  EXPECT_NE(body.find("windim_serve_window_p99_us_60s{op=\"all\"}"),
            std::string::npos);
}

// ------------------------------------------------- live plane off

TEST(ServeLiveTest, WindowDisabledKeepsFlightButSkipsTraces) {
  obs::ManualWindowClock clock;
  serve::ServeOptions options = live_options(&clock);
  options.enable_window = false;
  serve::Server server(options);
  (void)server.handle_line(evaluate_line(1));

  const obs::JsonValue stats =
      parse_reply(server.handle_line("{\"op\":\"stats\",\"id\":2}").json);
  const obs::JsonValue* window = stats.find("result")->find("window");
  ASSERT_NE(window, nullptr);
  EXPECT_FALSE(window->find("enabled")->boolean);
  EXPECT_EQ(window->find("by_op"), nullptr);

  const obs::JsonValue trace =
      parse_reply(server.handle_line("{\"op\":\"trace\",\"id\":3}").json);
  EXPECT_FALSE(trace.find("result")->find("enabled")->boolean);
  EXPECT_EQ(trace.find("result")->find("traces")->array.size(), 0u);

  // The black box still recorded every request.
  EXPECT_EQ(server.flight().total(), 3u);
}

// New ops appear in the cumulative per-op counters.
TEST(ServeLiveTest, StatsCountsTheIntrospectionOps) {
  obs::ManualWindowClock clock;
  serve::Server server(live_options(&clock));
  (void)server.handle_line("{\"op\":\"trace\"}");
  (void)server.handle_line("{\"op\":\"metrics\"}");
  (void)server.handle_line("{\"op\":\"dump\"}");
  const serve::ServeCounters c = server.counters();
  EXPECT_EQ(c.trace, 1u);
  EXPECT_EQ(c.metrics, 1u);
  EXPECT_EQ(c.dump, 1u);
  EXPECT_EQ(c.requests, 3u);
  EXPECT_EQ(c.errors, 0u);
}

}  // namespace
}  // namespace windim
