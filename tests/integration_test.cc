// Cross-module integration tests: the full WINDIM pipeline against the
// independent oracles (exact solvers and the discrete-event simulators).
#include <gtest/gtest.h>

#include <cmath>

#include "sim/closed_sim.h"
#include "sim/msgnet_sim.h"
#include "windim/windim.h"

namespace windim {
namespace {

TEST(IntegrationTest, DimensionedModelValidatedByClosedSimulation) {
  // Dimension with the heuristic, then simulate the closed-chain model at
  // the chosen windows: throughput and power must agree with the
  // heuristic's prediction within simulation noise.
  const core::WindowProblem problem(net::canada_topology(),
                                    net::two_class_traffic(20.0, 20.0));
  const core::DimensionResult dim = core::dimension_windows(problem);

  const qn::CyclicNetwork network = problem.network(dim.optimal_windows);
  sim::ClosedSimOptions options;
  options.sim_time = 3000.0;
  options.warmup = 300.0;
  const sim::ClosedSimResult simulated = sim::simulate_closed(network, options);

  const double sim_throughput =
      simulated.chain_throughput[0] + simulated.chain_throughput[1];
  EXPECT_NEAR(sim_throughput, dim.evaluation.throughput,
              0.05 * dim.evaluation.throughput);

  // Power from the simulation (delay over route queues via Little).
  double route_customers = 0.0;
  for (int n = 0; n < static_cast<int>(network.stations.size()); ++n) {
    for (int r = 0; r < 2; ++r) {
      if (n == problem.source_station(r)) continue;
      route_customers += simulated.queue_length(n, r);
    }
  }
  const double sim_delay = route_customers / sim_throughput;
  const double sim_power = sim_throughput / sim_delay;
  EXPECT_NEAR(sim_power, dim.evaluation.power, 0.08 * dim.evaluation.power);
}

TEST(IntegrationTest, HeuristicTracksExactAcrossWindowGrid) {
  // The property WINDIM depends on: the heuristic's power surface must
  // rank window settings like the exact surface does (same argmax on the
  // grid, small relative errors).
  const core::WindowProblem problem(net::canada_topology(),
                                    net::two_class_traffic(18.0, 18.0));
  double worst_error = 0.0;
  std::vector<int> best_heur, best_exact;
  double best_heur_power = -1.0, best_exact_power = -1.0;
  for (int e1 = 1; e1 <= 6; ++e1) {
    for (int e2 = 1; e2 <= 6; ++e2) {
      const core::Evaluation h =
          problem.evaluate({e1, e2}, core::Evaluator::kHeuristicMva);
      const core::Evaluation x =
          problem.evaluate({e1, e2}, core::Evaluator::kConvolution);
      worst_error = std::max(worst_error,
                             std::abs(h.power - x.power) / x.power);
      if (h.power > best_heur_power) {
        best_heur_power = h.power;
        best_heur = {e1, e2};
      }
      if (x.power > best_exact_power) {
        best_exact_power = x.power;
        best_exact = {e1, e2};
      }
    }
  }
  EXPECT_LT(worst_error, 0.06);
  EXPECT_EQ(best_heur, best_exact);
}

TEST(IntegrationTest, ClosedChainModelApproximatesMsgNetSimulation) {
  // The thesis's modelling assumption: the closed-chain model (source
  // queue = 1/S) approximates the real flow-controlled network.  Compare
  // analytic class throughput against the full store-and-forward
  // simulator with the same windows.
  const double s1 = 20.0, s2 = 20.0;
  const std::vector<int> windows{4, 4};
  const core::WindowProblem problem(net::canada_topology(),
                                    net::two_class_traffic(s1, s2));
  const core::Evaluation analytic =
      problem.evaluate(windows, core::Evaluator::kConvolution);

  sim::MsgNetOptions options;
  options.windows = windows;
  options.sim_time = 2000.0;
  options.warmup = 200.0;
  const sim::MsgNetResult simulated = sim::simulate_msgnet(
      net::canada_topology(), net::two_class_traffic(s1, s2), options);

  // The closed model replaces the Poisson source (with its backlog
  // queue) by a single exponential server, which forgets buffered
  // arrivals and therefore throttles harder than the real network: the
  // analytic throughput is a conservative estimate.  Check it brackets
  // the simulation from below within 30%.
  EXPECT_LE(analytic.throughput,
            simulated.delivered_rate * 1.05);
  EXPECT_GE(analytic.throughput, 0.70 * simulated.delivered_rate);
}

TEST(IntegrationTest, FourClassPerStationQueuesValidatedBySimulation) {
  // Station-level validation at scale: the 4-class closed-chain model's
  // per-channel queue lengths vs the closed-network simulator.
  const core::WindowProblem problem(
      net::canada_topology(),
      net::four_class_traffic(10.0, 10.0, 10.0, 20.0));
  const std::vector<int> windows{2, 2, 2, 3};
  const qn::CyclicNetwork network = problem.network(windows);
  const exact::ConvolutionResult analytic =
      exact::solve_convolution(network.to_model());

  sim::ClosedSimOptions options;
  options.sim_time = 3000.0;
  options.warmup = 300.0;
  options.seed = 21;
  const sim::ClosedSimResult simulated =
      sim::simulate_closed(network, options);

  for (int n = 0; n < static_cast<int>(network.stations.size()); ++n) {
    for (int r = 0; r < 4; ++r) {
      const double expected = analytic.queue_length(n, r);
      EXPECT_NEAR(simulated.queue_length(n, r), expected,
                  0.05 + 0.08 * expected)
          << "station " << n << " chain " << r;
    }
  }
  for (int r = 0; r < 4; ++r) {
    EXPECT_NEAR(simulated.chain_throughput[static_cast<std::size_t>(r)],
                analytic.chain_throughput[static_cast<std::size_t>(r)],
                0.04 * analytic.chain_throughput[static_cast<std::size_t>(r)])
        << "chain " << r;
  }
}

TEST(IntegrationTest, FourClassHopRuleIsSuboptimal) {
  // Thesis Table 4.12 headline: with strong inter-class interaction the
  // Kleinrock hop-count setting (4,4,3,1) is clearly beaten by WINDIM.
  const core::WindowProblem problem(
      net::canada_topology(),
      net::four_class_traffic(12.5, 12.5, 12.5, 25.0));
  const core::DimensionResult dim = core::dimension_windows(problem);
  const core::Evaluation hop_rule = problem.evaluate({4, 4, 3, 1});
  EXPECT_GT(dim.evaluation.power, 1.10 * hop_rule.power);
}

TEST(IntegrationTest, ExactEvaluatorDimensioningAgreesWithHeuristic) {
  // On the 2-class example the heuristic objective and the exact
  // objective pick (nearly) the same windows; verify the powers agree.
  const core::WindowProblem problem(net::canada_topology(),
                                    net::two_class_traffic(25.0, 25.0));
  core::DimensionOptions heuristic;
  core::DimensionOptions exact;
  exact.evaluator = core::Evaluator::kConvolution;
  exact.max_window = 8;
  const core::DimensionResult h = core::dimension_windows(problem, heuristic);
  const core::DimensionResult x = core::dimension_windows(problem, exact);
  const core::Evaluation h_at_exact =
      problem.evaluate(h.optimal_windows, core::Evaluator::kConvolution);
  EXPECT_NEAR(h_at_exact.power, x.evaluation.power,
              0.03 * x.evaluation.power);
}

TEST(IntegrationTest, WindowedSimulationBeatsUncontrolledOnPower) {
  // The point of flow control (Fig 2.1): at overload, windows keep the
  // delay bounded and the power high; the uncontrolled network's delay
  // blows up.
  const auto topo = net::canada_topology();
  const auto classes = net::two_class_traffic(40.0, 40.0);
  sim::MsgNetOptions uncontrolled;
  uncontrolled.sim_time = 800.0;
  sim::MsgNetOptions windowed = uncontrolled;
  windowed.windows = {3, 3};
  const sim::MsgNetResult a = sim::simulate_msgnet(topo, classes, uncontrolled);
  const sim::MsgNetResult b = sim::simulate_msgnet(topo, classes, windowed);
  EXPECT_GT(b.power, a.power);
}

}  // namespace
}  // namespace windim
