// Hierarchical span tracing: Scope nesting and the disabled-guard
// contract, Chrome trace-event JSON structure (metadata first, complete
// events with depth as the first arg), correctly nested depths per
// track, and the headline determinism property — the span trace of a
// dimensioning run is byte-identical across thread counts once
// timestamps and durations are normalized.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "net/examples.h"
#include "obs/json.h"
#include "obs/span.h"
#include "windim/windim.h"

namespace windim {
namespace {

using obs::SpanEvent;
using obs::SpanTracer;

/// Replaces the numeric value after every "ts": and "dur": key with 0,
/// leaving everything else byte-for-byte intact.
std::string normalize_times(const std::string& json) {
  std::string out;
  out.reserve(json.size());
  std::size_t i = 0;
  while (i < json.size()) {
    bool replaced = false;
    for (const char* key : {"\"ts\":", "\"dur\":"}) {
      const std::size_t len = std::char_traits<char>::length(key);
      if (json.compare(i, len, key) == 0) {
        out.append(key);
        i += len;
        while (i < json.size() &&
               (std::isdigit(static_cast<unsigned char>(json[i])) != 0 ||
                json[i] == '.' || json[i] == '-' || json[i] == '+' ||
                json[i] == 'e' || json[i] == 'E')) {
          ++i;
        }
        out.push_back('0');
        replaced = true;
        break;
      }
    }
    if (!replaced) {
      out.push_back(json[i]);
      ++i;
    }
  }
  return out;
}

std::string traced_dimension_json(int threads) {
  const core::WindowProblem problem(net::canada_topology(),
                                    net::four_class_traffic(6, 6, 6, 12));
  SpanTracer tracer;
  tracer.set_enabled(true);
  core::DimensionOptions options;
  options.threads = threads;
  options.spans = &tracer;
  const core::DimensionResult result =
      core::dimension_windows(problem, options);
  EXPECT_FALSE(result.optimal_windows.empty());
  tracer.set_enabled(false);
  return tracer.to_json();
}

TEST(SpanTracer, DisabledTracerRecordsNothing) {
  SpanTracer tracer;
  {
    SpanTracer::Scope outer(&tracer, "outer");
    outer.arg("k", 1);
    SpanTracer::Scope inner(&tracer, "inner");
  }
  EXPECT_EQ(tracer.add_track("replay"), 0u);
  tracer.emit(SpanEvent{});
  EXPECT_EQ(tracer.total_events(), 0u);
  EXPECT_TRUE(tracer.events().empty());
  // Null tracer: every Scope operation is a no-op, not a crash.
  SpanTracer::Scope null_scope(nullptr, "nothing");
  null_scope.arg("k", 2);
}

TEST(SpanTracer, ScopesNestThroughTheThreadLocalStack) {
  SpanTracer tracer;
  tracer.set_enabled(true);
  {
    SpanTracer::Scope outer(&tracer, "outer");
    {
      SpanTracer::Scope inner(&tracer, "inner");
      inner.arg("step", 7);
    }
    SpanTracer::Scope sibling(&tracer, "sibling");
  }
  const std::vector<SpanEvent> events = tracer.events();
  // Scopes append at destruction: inner closes first.
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[0].depth, 1);
  EXPECT_EQ(events[1].name, "sibling");
  EXPECT_EQ(events[1].depth, 1);
  EXPECT_EQ(events[2].name, "outer");
  EXPECT_EQ(events[2].depth, 0);
  EXPECT_GE(events[2].dur_us, events[0].dur_us);
  ASSERT_EQ(events[0].args.size(), 1u);
  EXPECT_EQ(events[0].args[0].key, "step");
}

TEST(SpanTracer, TraceJsonIsValidChromeTraceFormat) {
  const std::string json = traced_dimension_json(1);
  const auto parsed = obs::parse_json(json);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->is_object());
  const obs::JsonValue* events = parsed->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_GT(events->array.size(), 0u);

  std::size_t metadata = 0;
  std::size_t complete = 0;
  bool saw_probe = false, saw_solve = false, saw_iterate = false,
       saw_search = false, saw_explore = false;
  for (const obs::JsonValue& e : events->array) {
    ASSERT_TRUE(e.is_object());
    const std::string_view ph = e.string_or("ph", "");
    if (ph == "M") {
      ++metadata;
      const std::string_view name = e.string_or("name", "");
      EXPECT_TRUE(name == "process_name" || name == "thread_name")
          << std::string(name);
      continue;
    }
    ASSERT_EQ(ph, "X");
    ++complete;
    EXPECT_EQ(e.number_or("pid", -1.0), 1.0);
    EXPECT_GE(e.number_or("tid", -1.0), 0.0);
    EXPECT_GE(e.number_or("dur", -1.0), 0.0);
    const obs::JsonValue* args = e.find("args");
    ASSERT_NE(args, nullptr);
    ASSERT_TRUE(args->is_object());
    // depth is the FIRST arg key: nesting must survive the ts/dur
    // normalization the determinism test applies.
    ASSERT_FALSE(args->object.empty());
    EXPECT_EQ(args->object.front().first, "depth");
    const std::string_view name = e.string_or("name", "");
    saw_probe |= name == "probe";
    saw_solve |= name == "solve";
    saw_iterate |= name == "iterate";
    saw_search |= name == "search";
    saw_explore |= name == "explore";
  }
  EXPECT_GE(metadata, 2u);  // real caller thread + the replay track
  EXPECT_GT(complete, 0u);
  EXPECT_TRUE(saw_search);
  EXPECT_TRUE(saw_explore);
  EXPECT_TRUE(saw_probe);
  EXPECT_TRUE(saw_solve);
  EXPECT_TRUE(saw_iterate);
}

TEST(SpanTracer, DepthsFormAValidForestPerTrack) {
  const std::string json = traced_dimension_json(1);
  const auto parsed = obs::parse_json(json);
  ASSERT_TRUE(parsed.has_value());
  const obs::JsonValue* events = parsed->find("traceEvents");
  ASSERT_NE(events, nullptr);
  // Synthesized events are emitted parent-first (pre-order): within a
  // track the depth can step down arbitrarily but only step UP by one.
  std::map<std::int64_t, double> last_depth;
  for (const obs::JsonValue& e : events->array) {
    if (e.string_or("ph", "") != "X") continue;
    const auto tid = static_cast<std::int64_t>(e.number_or("tid", 0.0));
    const obs::JsonValue* args = e.find("args");
    ASSERT_NE(args, nullptr);
    const double depth = args->number_or("depth", -1.0);
    ASSERT_GE(depth, 0.0);
    const auto it = last_depth.find(tid);
    if (it != last_depth.end()) {
      EXPECT_LE(depth, it->second + 1.0);
    } else {
      // Real scopes append at CLOSE (post-order, leaves first); only
      // tracks opened by synthesized pre-order events must start at 0.
      if (e.string_or("name", "") == "probe") EXPECT_EQ(depth, 0.0);
    }
    last_depth[tid] = depth;
  }
}

TEST(SpanTracer, TraceIsByteIdenticalAcrossThreadCounts) {
  // The acceptance property: spans are only opened on deterministic
  // paths and the probe subtree is synthesized from the serial replay,
  // so --threads 1 and --threads 8 differ ONLY in measured times.
  const std::string serial = normalize_times(traced_dimension_json(1));
  const std::string parallel = normalize_times(traced_dimension_json(8));
  EXPECT_EQ(serial, parallel);
}

}  // namespace
}  // namespace windim
