// Ablation A1: accuracy of the WINDIM heuristic MVA against the exact
// solvers over the window grid of the 2-class example, plus the
// Schweitzer-Bard sigma policy for comparison.
//
// The thesis justifies the heuristic by (a) bounded error and (b) the
// same ranking of window settings as the exact model.  This bench
// quantifies both: per-grid-point power error statistics and whether the
// argmax windows coincide.
#include <cmath>
#include <cstdio>
#include <vector>

#include "util/table.h"
#include "windim/windim.h"

int main() {
  using namespace windim;
  const net::Topology topology = net::canada_topology();

  util::TextTable table({"S1=S2", "sigma policy", "max |dP|/P", "mean |dP|/P",
                         "argmax heur", "argmax exact", "agree"});

  for (double s : {10.0, 20.0, 40.0, 60.0}) {
    const core::WindowProblem problem(topology,
                                      net::two_class_traffic(s, s));
    for (int policy = 0; policy < 2; ++policy) {
      mva::ApproxMvaOptions options;
      options.sigma = policy == 0 ? mva::SigmaPolicy::kChanSingleChain
                                  : mva::SigmaPolicy::kSchweitzerBard;
      double worst = 0.0, total = 0.0;
      int count = 0;
      std::vector<int> best_h, best_x;
      double best_h_power = -1.0, best_x_power = -1.0;
      for (int e1 = 1; e1 <= 7; ++e1) {
        for (int e2 = 1; e2 <= 7; ++e2) {
          const double h =
              problem.evaluate({e1, e2}, core::Evaluator::kHeuristicMva,
                               options)
                  .power;
          const double x =
              problem.evaluate({e1, e2}, core::Evaluator::kConvolution)
                  .power;
          const double err = std::abs(h - x) / x;
          worst = std::max(worst, err);
          total += err;
          ++count;
          if (h > best_h_power) {
            best_h_power = h;
            best_h = {e1, e2};
          }
          if (x > best_x_power) {
            best_x_power = x;
            best_x = {e1, e2};
          }
        }
      }
      table.begin_row()
          .add(s, 1)
          .add(policy == 0 ? "chan-single-chain" : "schweitzer-bard")
          .add(worst, 4)
          .add(total / count, 4)
          .add_window(best_h)
          .add_window(best_x)
          .add(best_h == best_x ? "yes" : "NO");
    }
  }

  std::printf("Ablation A1 - heuristic MVA accuracy vs exact convolution "
              "over the 7x7 window grid (2-class network)\n");
  std::printf("(expected: errors of a few percent; argmax windows agree; "
              "thesis sigma heuristic at least as good as "
              "Schweitzer-Bard)\n\n%s\n",
              table.render().c_str());
  return 0;
}
