// Ablation A3: pattern search vs exhaustive enumeration, and sensitivity
// to the initialization policy.
//
// Over a sweep of 2-class loadings, compares (a) whether the pattern
// search reaches the exhaustive global optimum of the heuristic power
// surface, (b) how many objective evaluations each needs, and (c) the
// effect of starting from Kleinrock's hop counts vs from all-ones vs
// from a far corner.
#include <cstdio>
#include <limits>

#include "search/exhaustive.h"
#include "util/table.h"
#include "windim/windim.h"

int main() {
  using namespace windim;
  const net::Topology topology = net::canada_topology();

  util::TextTable table({"S1", "S2", "E* (exhaustive)", "evals(exh)",
                         "E (kleinrock init)", "evals", "E (init 1,1)",
                         "evals", "E (init 12,12)", "evals", "optimal?"});

  int reached = 0, rows = 0;
  for (const auto& [s1, s2] : {std::pair{10.0, 10.0}, std::pair{20.0, 20.0},
                               std::pair{40.0, 40.0}, std::pair{10.0, 35.0},
                               std::pair{55.0, 15.0}, std::pair{70.0, 70.0}}) {
    const core::WindowProblem problem(topology,
                                      net::two_class_traffic(s1, s2));
    const search::Objective objective = [&](const search::Point& e) {
      const core::Evaluation ev = problem.evaluate(e);
      return ev.power > 0.0 ? 1.0 / ev.power
                            : std::numeric_limits<double>::infinity();
    };
    const search::ExhaustiveResult exhaustive =
        search::exhaustive_search(objective, {1, 1}, {12, 12});

    auto run = [&](std::vector<int> init) {
      core::DimensionOptions options;
      options.initial_windows = std::move(init);
      options.max_window = 12;
      return core::dimension_windows(problem, options);
    };
    const core::DimensionResult from_kleinrock =
        core::dimension_windows(problem);
    const core::DimensionResult from_ones = run({1, 1});
    const core::DimensionResult from_corner = run({12, 12});

    const bool all_optimal =
        std::abs(1.0 / from_kleinrock.evaluation.power -
                 exhaustive.best_value) < 1e-9 &&
        std::abs(1.0 / from_ones.evaluation.power - exhaustive.best_value) <
            1e-9 &&
        std::abs(1.0 / from_corner.evaluation.power - exhaustive.best_value) <
            1e-9;
    reached += all_optimal ? 1 : 0;
    ++rows;

    table.begin_row()
        .add(s1, 1)
        .add(s2, 1)
        .add_window(exhaustive.best)
        .add(static_cast<long>(exhaustive.evaluations))
        .add_window(from_kleinrock.optimal_windows)
        .add(static_cast<long>(from_kleinrock.objective_evaluations))
        .add_window(from_ones.optimal_windows)
        .add(static_cast<long>(from_ones.objective_evaluations))
        .add_window(from_corner.optimal_windows)
        .add(static_cast<long>(from_corner.objective_evaluations))
        .add(all_optimal ? "yes" : "NO");
  }

  std::printf("Ablation A3 - pattern search vs exhaustive search "
              "(2-class network, box [1,12]^2)\n");
  std::printf("(expected: every init reaches the global optimum with ~10x "
              "fewer evaluations than the 144-point enumeration)\n\n%s\n",
              table.render().c_str());
  std::printf("rows where all inits reached the optimum: %d/%d\n", reached,
              rows);
  return 0;
}
