// Window-setting robustness (thesis 4.5: "the window settings should be
// as insensitive to traffic fluctuations as possible").
//
// Dimension once at a design load S0, then operate the network across a
// wide load range with those *fixed* windows and compare against the
// per-load optimum.  Expected: the fixed setting stays within a few
// percent of optimal across a 2-3x load swing - the property that makes
// static window dimensioning viable at all.
#include <cstdio>

#include "util/table.h"
#include "windim/windim.h"

int main() {
  using namespace windim;
  const net::Topology topology = net::canada_topology();

  const double design_load = 20.0;
  const core::WindowProblem design_problem(
      topology, net::two_class_traffic(design_load, design_load));
  const core::DimensionResult design =
      core::dimension_windows(design_problem);
  std::printf("designed at S1=S2=%.0f msg/s: E = %s\n\n", design_load,
              util::format_window(design.optimal_windows).c_str());

  util::TextTable table({"operating S1=S2", "P(fixed E)", "E_opt(S)",
                         "P_opt(S)", "P(fixed)/P_opt"});

  for (double s : {8.0, 12.0, 16.0, 20.0, 25.0, 30.0, 40.0, 50.0, 60.0}) {
    const core::WindowProblem problem(topology,
                                      net::two_class_traffic(s, s));
    const core::Evaluation fixed = problem.evaluate(design.optimal_windows);
    const core::DimensionResult best = core::dimension_windows(problem);
    table.begin_row()
        .add(s, 1)
        .add(fixed.power, 1)
        .add_window(best.optimal_windows)
        .add(best.evaluation.power, 1)
        .add(fixed.power / best.evaluation.power, 3);
  }

  std::printf("Window robustness across load fluctuation\n");
  std::printf("(expected: P(fixed)/P_opt >= ~0.95 over a wide band around "
              "the design point)\n\n%s\n",
              table.render().c_str());
  return 0;
}
