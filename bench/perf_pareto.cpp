// Acceptance benchmark for the Pareto-front dimensioning mode (PR 8):
// the epsilon-constraint scan over the 4-class Canadian fixture, the
// determinism and reproducibility contracts of the front, and the
// balanced-job-bounds pruning of exhaustive enumeration.
//
// Measured:
//   - scan wall time (median over --reps, recorded for trend inspection
//     only — machine-bound, no cross-machine check);
//   - front size, constrained solves, infeasible floors;
//   - byte-identity of the serialized front across probe thread counts
//     (1 vs 8);
//   - per-point reproducibility: one constrained dimension_windows call
//     from each point's recorded seed must land on the same windows;
//   - pruned fraction of the exhaustive lattice under
//     balanced_job_power_prune, with optimum identity vs the unpruned
//     sweep.
//
// Gates (exit 1 on violation):
//   - front carries >= 5 non-dominated points;
//   - serialized fronts are byte-identical across thread counts;
//   - every point reproduces from its seed;
//   - the pruned exhaustive sweep prunes a nonzero part of the lattice
//     and returns the unpruned optimum.
//
// --json=PATH writes the measurements with pareto_-prefixed keys so the
// result merges into the shared bench/baselines/BENCH_perf.json;
// --check compares against --baseline-in via perf_pareto_checks()
// (scale-free gates only).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "baseline.h"
#include "obs/json.h"
#include "windim/windim.h"

using namespace windim;

namespace {

core::WindowProblem canadian_problem() {
  return core::WindowProblem(net::canada_topology(),
                             net::four_class_traffic(6, 6, 6, 12));
}

core::ParetoFront run_scan(const core::WindowProblem& problem, int threads) {
  core::ParetoOptions popts;
  popts.base.threads = threads;
  return core::pareto_front(problem, popts);
}

}  // namespace

int main(int argc, char** argv) {
  int reps = 5;
  std::string json_path;
  std::string baseline_in;
  std::string baseline_out;
  bool check = false;
  double tolerance_pct = 25.0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--reps=", 7) == 0) {
      reps = std::atoi(arg + 7);
      if (reps < 1) reps = 1;
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      json_path = arg + 7;
    } else if (std::strncmp(arg, "--baseline-in=", 14) == 0) {
      baseline_in = arg + 14;
    } else if (std::strncmp(arg, "--baseline-out=", 15) == 0) {
      baseline_out = arg + 15;
    } else if (std::strcmp(arg, "--check") == 0) {
      check = true;
    } else if (std::strncmp(arg, "--tolerance-pct=", 16) == 0) {
      tolerance_pct = std::atof(arg + 16);
    } else {
      std::fprintf(
          stderr,
          "usage: bench_perf_pareto [--reps=N] [--json=PATH]\n"
          "           [--baseline-in=PATH] [--baseline-out=PATH] [--check]\n"
          "           [--tolerance-pct=P]\n"
          "--check compares the fresh measurements against the\n"
          "--baseline-in JSON (scale-free pareto_ gates) and fails on any\n"
          "regression beyond the tolerance (default 25%%).\n");
      return 2;
    }
  }
  if (check && baseline_in.empty()) {
    std::fprintf(stderr, "error: --check requires --baseline-in=PATH\n");
    return 2;
  }

  const core::WindowProblem problem = canadian_problem();

  // Timed scans (serial probes — the deterministic reference config).
  std::vector<double> scan_ms;
  core::ParetoFront front;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    front = run_scan(problem, 1);
    const auto t1 = std::chrono::steady_clock::now();
    scan_ms.push_back(
        std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  std::sort(scan_ms.begin(), scan_ms.end());
  const double median_scan_ms = scan_ms[scan_ms.size() / 2];

  // Determinism: the serialized front must be byte-identical whether
  // the per-solve speculative probes ran on 1 or 8 threads.
  const std::string serial_json = core::to_json(front);
  const std::string threaded_json = core::to_json(run_scan(problem, 8));
  const bool deterministic = serial_json == threaded_json;

  // Reproducibility: each point's recorded seed + floor rebuilds it
  // with one constrained solve.
  bool reproducible = true;
  for (const core::ParetoPoint& p : front.points) {
    core::DimensionOptions opts;
    opts.objective = core::DimensionObjective::kPowerFairConstrained;
    opts.min_fairness = p.fairness_floor;
    opts.initial_windows = p.initial_windows;
    const core::DimensionResult r = core::dimension_windows(problem, opts);
    if (r.optimal_windows != p.windows) reproducible = false;
  }

  // Balanced-job-bounds pruning over the [1,6]^4 lattice under the
  // alpha = 0 (total-throughput) objective: identical optimum, strictly
  // less work.  The throughput bound is the sharp one on this fixture —
  // the power bound is equally sound but its 1/route-demand factor
  // overshoots the Canadian fixture's short routes and never fires.
  const int num_classes = problem.num_classes();
  const search::Point lower(static_cast<std::size_t>(num_classes), 1);
  const search::Point upper(static_cast<std::size_t>(num_classes), 6);
  core::ObjectiveSpec throughput_spec;
  throughput_spec.kind = core::ObjectiveKind::kAlphaFair;
  throughput_spec.alpha = 0.0;
  const search::VectorObjective objective = [&](const search::Point& p) {
    return core::objective_vector(problem.evaluate(p), throughput_spec);
  };
  const search::VectorExhaustiveResult full =
      search::vector_exhaustive_search(objective, lower, upper);
  search::VectorExhaustiveOptions pruned_opts;
  pruned_opts.prune = core::balanced_job_throughput_prune(problem);
  const search::VectorExhaustiveResult pruned =
      search::vector_exhaustive_search(objective, lower, upper, pruned_opts);
  const std::size_t lattice = full.evaluations;
  const double prune_fraction =
      lattice > 0 ? static_cast<double>(pruned.pruned) /
                        static_cast<double>(lattice)
                  : 0.0;
  const bool prune_identical = pruned.best == full.best;

  std::printf(
      "pareto scan: canada_topology/four_class_traffic(6,6,6,12), %d reps\n"
      "  scan       %10.3f ms (median), %zu solves, %zu infeasible\n"
      "  front      %zu non-dominated points, %zu dominated dropped\n"
      "  identity   deterministic=%s reproducible=%s\n"
      "  prune      %zu of %zu lattice points skipped (%.1f%%), "
      "identical=%s\n",
      reps, median_scan_ms, front.runs, front.infeasible_runs,
      front.points.size(), front.dominated_dropped,
      deterministic ? "yes" : "NO", reproducible ? "yes" : "NO",
      pruned.pruned, lattice, 100.0 * prune_fraction,
      prune_identical ? "yes" : "NO");

  bool pass = true;
  if (front.points.size() < 5) {
    std::printf("FAIL: front carries fewer than 5 non-dominated points\n");
    pass = false;
  }
  if (!deterministic) {
    std::printf("FAIL: serialized front differs across thread counts\n");
    pass = false;
  }
  if (!reproducible) {
    std::printf("FAIL: a front point does not reproduce from its seed\n");
    pass = false;
  }
  if (pruned.pruned == 0) {
    std::printf("FAIL: the balanced-job bound pruned nothing\n");
    pass = false;
  }
  if (!prune_identical) {
    std::printf("FAIL: pruning changed the exhaustive optimum\n");
    pass = false;
  }
  if (pass) std::printf("PASS\n");

  obs::JsonWriter w;
  {
    w.begin_object();
    w.key("benchmark");
    w.value("perf_pareto");
    w.key("pareto_reps");
    w.value(reps);
    w.key("pareto_scan_ms");
    w.value(median_scan_ms);
    w.key("pareto_front_points");
    w.value(static_cast<std::uint64_t>(front.points.size()));
    w.key("pareto_runs");
    w.value(static_cast<std::uint64_t>(front.runs));
    w.key("pareto_infeasible_runs");
    w.value(static_cast<std::uint64_t>(front.infeasible_runs));
    w.key("pareto_deterministic");
    w.value(deterministic);
    w.key("pareto_reproducible");
    w.value(reproducible);
    w.key("pareto_prune_lattice");
    w.value(static_cast<std::uint64_t>(lattice));
    w.key("pareto_prune_pruned");
    w.value(static_cast<std::uint64_t>(pruned.pruned));
    w.key("pareto_prune_fraction");
    w.value(prune_fraction);
    w.key("pareto_prune_identical");
    w.value(prune_identical);
    w.key("pareto_pass");
    w.value(pass);
    w.end_object();
  }
  const std::string json = w.str();

  if (!json_path.empty() && !bench::save_file(json_path, json)) {
    std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
    return 1;
  }
  if (!baseline_out.empty() && !bench::save_file(baseline_out, json)) {
    std::fprintf(stderr, "error: cannot write %s\n", baseline_out.c_str());
    return 1;
  }

  if (check) {
    const std::optional<std::string> baseline = bench::load_file(baseline_in);
    if (!baseline.has_value()) {
      std::fprintf(stderr, "error: cannot read baseline %s\n",
                   baseline_in.c_str());
      return 1;
    }
    const bench::BaselineReport report = bench::compare_baseline(
        *baseline, json, bench::perf_pareto_checks(tolerance_pct));
    std::printf("\nbaseline check vs %s (tolerance %.0f%%):\n%s",
                baseline_in.c_str(), tolerance_pct, report.render().c_str());
    if (!report.ok()) pass = false;
  }
  return pass ? 0 : 1;
}
