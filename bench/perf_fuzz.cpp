// Microbenchmarks for the differential oracle harness: per-family
// oracle cost (what one fuzz seed costs, and which oracles dominate),
// generator cost, and the shrinker's minimization loop.  The fuzz
// campaign budget planning in DESIGN.md §6 is derived from these
// numbers: at ~1-10 ms per fcfs-closed instance, a 500-seed x 7-family
// campaign fits well inside a one-minute CI smoke on a few cores.
#include <benchmark/benchmark.h>

#include "verify/gen.h"
#include "verify/oracle.h"
#include "verify/shrink.h"

namespace {

using namespace windim::verify;

void BM_Generate(benchmark::State& state) {
  const Family family = all_families()[static_cast<std::size_t>(state.range(0))];
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(generate(family, seed++));
  }
  state.SetLabel(to_string(family));
}
BENCHMARK(BM_Generate)->DenseRange(0, 6);

void BM_RunOracles(benchmark::State& state) {
  const Family family = all_families()[static_cast<std::size_t>(state.range(0))];
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const Instance inst = generate(family, seed++);
    benchmark::DoNotOptimize(run_oracles(inst));
  }
  state.SetLabel(to_string(family));
}
BENCHMARK(BM_RunOracles)->DenseRange(0, 6)->Unit(benchmark::kMillisecond);

void BM_RunOraclesNoCtmc(benchmark::State& state) {
  // The CTMC dominates cyclic-family cost; this isolates the rest.
  const Family family = all_families()[static_cast<std::size_t>(state.range(0))];
  OracleOptions options;
  options.with_ctmc = false;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const Instance inst = generate(family, seed++);
    benchmark::DoNotOptimize(run_oracles(inst, options));
  }
  state.SetLabel(to_string(family));
}
BENCHMARK(BM_RunOraclesNoCtmc)->DenseRange(0, 6)->Unit(benchmark::kMillisecond);

void BM_Shrink(benchmark::State& state) {
  // Minimization under a structural predicate (always reducible to one
  // station and one chain): measures the candidate-generation and
  // model-rebuild machinery rather than oracle cost.
  const FailurePredicate synthetic = [](const Instance& inst) {
    return inst.model.num_stations() >= 1;
  };
  for (auto _ : state) {
    const Instance inst = generate(Family::kDisciplines, 187);
    benchmark::DoNotOptimize(shrink(inst, synthetic));
  }
}
BENCHMARK(BM_Shrink)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
