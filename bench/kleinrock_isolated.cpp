// Thesis section 4.6: Kleinrock's isolated-chain window rule.
//
// For a single virtual channel over PHI identical M/M/1 hops with no
// cross traffic, Kleinrock's continuum model (thesis eq. 4.21-4.23)
// predicts the power-optimal window E = PHI.  We sweep the window for
// several hop counts on the closed-chain model (exact single-chain MVA
// via the convolution evaluator) and report the argmax - it should sit
// at PHI or its immediate neighbourhood, the discrete counterpart of
// Kleinrock's rule.  This is the regime where the hop-count
// *initialization* of WINDIM is justified; Table 4.12 shows it failing
// once chains interact.
#include <cstdio>
#include <vector>

#include "net/topology.h"
#include "util/table.h"
#include "windim/windim.h"

namespace {

/// A PHI-hop linear network with a single class across it.
windim::core::WindowProblem isolated_chain(int hops, double rate) {
  windim::net::Topology topo;
  std::vector<std::string> path;
  for (int n = 0; n <= hops; ++n) {
    topo.add_node("n" + std::to_string(n));
    path.push_back("n" + std::to_string(n));
    if (n > 0) {
      topo.add_channel("n" + std::to_string(n - 1), "n" + std::to_string(n),
                       50.0);
    }
  }
  windim::net::TrafficClass tc;
  tc.name = "chain";
  tc.path = path;
  tc.arrival_rate = rate;
  return windim::core::WindowProblem(topo, {tc});
}

}  // namespace

int main() {
  using namespace windim;

  util::TextTable table({"hops PHI", "S (msg/s)", "argmax_E P", "P at argmax",
                         "P at E=PHI", "P(E=PHI)/P(best)"});

  for (int hops : {2, 3, 4, 6, 8}) {
    for (double rate : {20.0, 45.0}) {
      const core::WindowProblem problem = isolated_chain(hops, rate);
      int best_window = 1;
      double best_power = -1.0;
      for (int e = 1; e <= 2 * hops + 4; ++e) {
        const double p =
            problem.evaluate({e}, core::Evaluator::kConvolution).power;
        if (p > best_power) {
          best_power = p;
          best_window = e;
        }
      }
      const double at_phi =
          problem.evaluate({hops}, core::Evaluator::kConvolution).power;
      table.begin_row()
          .add(hops)
          .add(rate, 1)
          .add(best_window)
          .add(best_power, 1)
          .add(at_phi, 1)
          .add(at_phi / best_power, 3);
    }
  }

  std::printf("Kleinrock isolated-chain check (thesis 4.6, eq. 4.21-4.23)\n");
  std::printf("(expected: optimal window within ~1 of the hop count PHI, "
              "and E=PHI within a few %% of the best power)\n\n%s\n",
              table.render().c_str());
  return 0;
}
