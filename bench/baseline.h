// Perf-baseline regression harness for the bench_perf_* binaries.
//
// A baseline is simply a committed copy of a benchmark's --json output
// (bench/baselines/BENCH_perf.json); a later run compares its fresh
// JSON against that file metric by metric and fails on regression.
// Noise handling is layered:
//
//   - the benchmark itself reports median-of-reps times, so single-rep
//     outliers never reach the comparison;
//   - the DEFAULT check set is scale-free (speedup ratios, overhead
//     percentages, allocation counts) — valid across machines of
//     different absolute speed, which is what lets the committed
//     baseline gate CI runners;
//   - wall-clock metrics (engine_ms ...) are a separate opt-in set for
//     same-machine comparisons only;
//   - each check carries a tolerance (percent of the baseline value)
//     and a floor that keeps tiny denominators from amplifying noise
//     into spurious relative regressions.
//
// The comparison is pure string -> report (no filesystem), so tests can
// drive it with synthetic JSON; load_file is the thin I/O wrapper the
// benchmarks use.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace windim::bench {

/// Which direction of change is a regression.
enum class Direction {
  kHigherIsBetter,  // speedups: regression = current below baseline
  kLowerIsBetter,   // times, overheads, counts: regression = above
};

struct CheckSpec {
  std::string metric;  // JSON key in the benchmark's --json object
  Direction direction = Direction::kLowerIsBetter;
  /// Allowed adverse drift, in percent of the (floored) baseline value.
  double tolerance_pct = 25.0;
  /// The baseline value is clamped up to this before the relative
  /// comparison, so near-zero baselines (a 0.03% guard overhead) do not
  /// turn measurement noise into huge relative "regressions".
  double floor = 0.0;
};

struct MetricComparison {
  std::string metric;
  double baseline = 0.0;
  double current = 0.0;
  /// Adverse drift in percent of the floored baseline (positive =
  /// moved in the regression direction).
  double drift_pct = 0.0;
  bool ok = true;
};

struct BaselineReport {
  std::vector<MetricComparison> comparisons;
  /// Structural problems: unreadable/malformed JSON, missing metrics.
  /// Any error fails the report.
  std::vector<std::string> errors;

  [[nodiscard]] bool ok() const;
  /// Human-readable summary, one line per comparison plus errors.
  [[nodiscard]] std::string render() const;
};

/// The scale-free default checks for bench_perf_dimension --check:
/// speedup_vs_pr1, obs_disabled_overhead_pct,
/// warm_workspace_allocations (exact), identical_windows and pass
/// (exact).  `tolerance_pct` applies to the ratio metrics.
[[nodiscard]] std::vector<CheckSpec> perf_dimension_checks(
    double tolerance_pct = 25.0);

/// The scale-free default checks for bench_perf_large_model --check:
/// large_speedup_10k / large_speedup_1k (ratio metrics under
/// `tolerance_pct`), large_warm_workspace_allocations,
/// large_identical_windows and large_pass (exact).  The keys are
/// prefixed so both benchmarks can share one merged baseline object.
[[nodiscard]] std::vector<CheckSpec> perf_large_model_checks(
    double tolerance_pct = 25.0);

/// The scale-free default checks for bench_perf_serve --check: the
/// cache hit rate (ratio metric under `tolerance_pct`, floored at 0.1)
/// plus the exact serve_error_free and serve_pass gates — the absolute
/// requests/second figure is machine-bound and gated by the benchmark
/// itself (>= 1000 req/s), not by the committed baseline.
[[nodiscard]] std::vector<CheckSpec> perf_serve_checks(
    double tolerance_pct = 25.0);

/// The scale-free default checks for bench_perf_pareto --check: the
/// front size, thread-count determinism, seed reproducibility and
/// prune/optimum-identity gates are exact; the pruned lattice fraction
/// is a ratio metric under `tolerance_pct` (floored at 0.05 so a small
/// absolute wobble on a thin prune cannot explode relatively).
[[nodiscard]] std::vector<CheckSpec> perf_pareto_checks(
    double tolerance_pct = 25.0);

/// The scale-free default checks for bench_perf_scenario --check: the
/// cell count, worker-count determinism and seed reproducibility gates
/// are exact; the stationary/static power ratio vs the analytic optimum
/// is a ratio metric under `tolerance_pct` (floored at 0.5 — it sits
/// near 1.0 by construction).
[[nodiscard]] std::vector<CheckSpec> perf_scenario_checks(
    double tolerance_pct = 25.0);

/// Same-machine wall-clock checks (opt-in): serial_cold_ms,
/// pr1_baseline_ms, engine_ms, instrumented_ms.
[[nodiscard]] std::vector<CheckSpec> wall_clock_checks(
    double tolerance_pct = 25.0);

/// Compares one benchmark JSON object against a baseline JSON object.
/// Booleans count as 1/0 so pass/identical_windows can be checked like
/// any numeric metric.
[[nodiscard]] BaselineReport compare_baseline(
    const std::string& baseline_json, const std::string& current_json,
    const std::vector<CheckSpec>& checks);

/// Reads a whole file; nullopt (with no diagnostics — the caller owns
/// the error message) when it cannot be opened.
[[nodiscard]] std::optional<std::string> load_file(const std::string& path);

/// Writes `body` (plus a trailing newline when missing) to `path`.
[[nodiscard]] bool save_file(const std::string& path,
                             const std::string& body);

}  // namespace windim::bench
