// Ablation A8: the three exact algorithms' complementary regimes.
//
// Convolution / exact MVA recurse over the population lattice
// (prod_r (E_r+1) points) - cheap for FEW chains with LARGE windows.
// RECAL (Conway & Georganas) recurses chain by chain over multiplicity
// simplices (C(K+N-1, N-1) points) - cheap for MANY chains with SMALL
// windows and few stations.  All three agree to solver precision; this
// bench times them across both regimes (google-benchmark).
#include <benchmark/benchmark.h>

#include "exact/convolution.h"
#include "exact/recal.h"
#include "mva/exact_multichain.h"

namespace {

using namespace windim;

qn::Station fcfs(const std::string& name) {
  qn::Station s;
  s.name = name;
  s.discipline = qn::Discipline::kFcfs;
  return s;
}

/// `chains` chains of population `window` over a SHARED set of four
/// stations (RECAL cost grows with the station count, so its regime is
/// many chains over few stations).  Each chain visits three of the four
/// stations, rotating, so the chains are distinct.
qn::NetworkModel shared_model(int chains, int window) {
  qn::NetworkModel m;
  const double times[4] = {0.02, 0.03, 0.04, 0.05};
  for (int n = 0; n < 4; ++n) {
    m.add_station(fcfs("q" + std::to_string(n)));
  }
  for (int r = 0; r < chains; ++r) {
    qn::Chain c;
    c.type = qn::ChainType::kClosed;
    c.population = window;
    for (int k = 0; k < 3; ++k) {
      const int n = (r + k) % 4;
      c.visits.push_back({n, 1.0, times[n]});
    }
    m.add_chain(std::move(c));
  }
  return m;
}

// Regime 1: many chains, window 1 (RECAL's home turf).
void BM_Recal_ManyChains(benchmark::State& state) {
  const qn::NetworkModel m =
      shared_model(static_cast<int>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(exact::solve_recal(m));
  }
}
BENCHMARK(BM_Recal_ManyChains)->Arg(8)->Arg(14)->Arg(18);

void BM_Convolution_ManyChains(benchmark::State& state) {
  const qn::NetworkModel m =
      shared_model(static_cast<int>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(exact::solve_convolution(m));
  }
}
BENCHMARK(BM_Convolution_ManyChains)->Arg(8)->Arg(14)->Arg(18);

void BM_ExactMva_ManyChains(benchmark::State& state) {
  const qn::NetworkModel m =
      shared_model(static_cast<int>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mva::solve_exact_multichain(m));
  }
}
BENCHMARK(BM_ExactMva_ManyChains)->Arg(8)->Arg(14)->Arg(18);

// Regime 2: two chains, growing windows (lattice methods' home turf).
void BM_Recal_BigWindows(benchmark::State& state) {
  const qn::NetworkModel m =
      shared_model(2, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(exact::solve_recal(m));
  }
}
BENCHMARK(BM_Recal_BigWindows)->Arg(2)->Arg(6)->Arg(10);

void BM_Convolution_BigWindows(benchmark::State& state) {
  const qn::NetworkModel m =
      shared_model(2, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(exact::solve_convolution(m));
  }
}
BENCHMARK(BM_Convolution_BigWindows)->Arg(2)->Arg(6)->Arg(10);

}  // namespace

BENCHMARK_MAIN();
