// Ablation A7: objective variants - Kleinrock's generalized power
// lambda^alpha / T and delay-capped throughput maximization.
//
// Expected: alpha sweeps trade delay for throughput monotonically
// (larger alpha -> larger windows, higher throughput, higher delay);
// the delay-capped objective returns the largest windows whose mean
// network delay stays under the cap.
#include <cstdio>

#include "util/table.h"
#include "windim/windim.h"

int main() {
  using namespace windim;
  const net::Topology topology = net::canada_topology();
  const core::WindowProblem problem(topology,
                                    net::two_class_traffic(25.0, 25.0));

  std::printf("Ablation A7a - generalized power lambda^alpha / T "
              "(S1=S2=25 msg/s)\n\n");
  util::TextTable alpha_table(
      {"alpha", "E_opt", "throughput", "delay(ms)", "plain power"});
  for (double alpha : {0.4, 0.7, 1.0, 1.5, 2.0, 3.0}) {
    core::DimensionOptions options;
    options.objective = core::DimensionObjective::kGeneralizedPower;
    options.power_exponent = alpha;
    const core::DimensionResult r = core::dimension_windows(problem, options);
    alpha_table.begin_row()
        .add(alpha, 1)
        .add_window(r.optimal_windows)
        .add(r.evaluation.throughput, 1)
        .add(r.evaluation.mean_delay * 1000.0, 1)
        .add(r.evaluation.power, 1);
  }
  std::printf("%s\n", alpha_table.render().c_str());

  std::printf("Ablation A7b - throughput maximization under a delay cap\n\n");
  util::TextTable cap_table(
      {"delay cap (ms)", "E_opt", "throughput", "delay(ms)"});
  for (double cap_ms : {80.0, 120.0, 150.0, 200.0, 400.0}) {
    core::DimensionOptions options;
    options.objective = core::DimensionObjective::kThroughputUnderDelayCap;
    options.max_delay = cap_ms / 1000.0;
    const core::DimensionResult r = core::dimension_windows(problem, options);
    cap_table.begin_row().add(cap_ms, 0);
    if (r.feasible) {
      cap_table.add_window(r.optimal_windows)
          .add(r.evaluation.throughput, 1)
          .add(r.evaluation.mean_delay * 1000.0, 1);
    } else {
      cap_table.add("infeasible").add("-").add("-");
    }
  }
  std::printf("%s", cap_table.render().c_str());
  return 0;
}
