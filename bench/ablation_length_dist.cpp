// Ablation A10: pricing the exponential-message-length assumption
// (thesis 4.2 assumption (c)).
//
// The analytic stack needs exponential lengths for the FCFS channel
// queues to stay product-form.  Real traffic is anything but: fixed
// packets (cv = 0) or bursty mixes (cv = 2).  Simulate the 2-class
// network with each length model at the analytically-dimensioned
// windows and compare power against the exponential prediction.
// Expected (Pollaczek-Khinchine intuition): regular traffic does
// *better* than the model predicts, bursty traffic worse - the thesis's
// window choices are conservative for fixed-size packets.
#include <cstdio>

#include "net/examples.h"
#include "sim/msgnet_sim.h"
#include "util/table.h"
#include "windim/windim.h"

int main() {
  using namespace windim;
  const net::Topology topology = net::canada_topology();
  const double s = 25.0;

  // Dimension under the analytic (exponential) model.
  const core::WindowProblem problem(topology,
                                    net::two_class_traffic(s, s));
  const core::DimensionResult dim = core::dimension_windows(problem);
  std::printf("analytic windows at S1=S2=%.0f: %s, predicted power %.1f\n\n",
              s, util::format_window(dim.optimal_windows).c_str(),
              dim.evaluation.power);

  util::TextTable table({"length model", "cv^2", "delivered", "delay (ms)",
                         "power", "power / analytic"});
  const struct {
    net::LengthModel model;
    double cv2;
  } models[] = {
      {net::LengthModel::kDeterministic, 0.0},
      {net::LengthModel::kErlang2, 0.5},
      {net::LengthModel::kExponential, 1.0},
      {net::LengthModel::kHyperExp2, 4.0},
  };

  for (const auto& [model, cv2] : models) {
    auto classes = net::two_class_traffic(s, s);
    for (auto& tc : classes) tc.length_model = model;
    sim::MsgNetOptions options;
    options.windows = dim.optimal_windows;
    options.sim_time = 1200.0;
    options.warmup = 120.0;
    options.seed = 31;
    const sim::MsgNetResult r =
        sim::simulate_msgnet(topology, classes, options);
    table.begin_row()
        .add(net::to_string(model))
        .add(cv2, 1)
        .add(r.delivered_rate, 1)
        .add(r.mean_network_delay * 1000.0, 1)
        .add(r.power, 1)
        .add(r.power / dim.evaluation.power, 3);
  }

  std::printf("Ablation A10 - message-length distribution vs the "
              "exponential model (windows fixed at the analytic "
              "optimum)\n");
  std::printf("(expected: power decreasing in cv^2; deterministic beats "
              "the analytic prediction, hyperexponential falls below "
              "it)\n\n%s\n",
              table.render().c_str());
  return 0;
}
