// Acceptance benchmark for the compile-once/solve-many engine:
// dimension the 4-class thesis network (Fig 4.10 traffic) with the
// heuristic-MVA evaluator and compare
//
//   (a) serial cold-start    — compiled engine, threads = 1, no warm start
//   (b) PR 1 baseline        — threads = 4 + warm start, but every
//       evaluation rebuilds the NetworkModel and runs the legacy
//       heap-allocating solve_approx_mva entry point (the engine's
//       per-evaluation cost before CompiledModel/Workspace existed;
//       reconstructed here because the engine no longer has that path)
//   (c) compiled engine      — threads = 4 + warm start over the
//       problem's CompiledModel, with a persistent WorkspacePool so the
//       arenas stay warm across runs
//
// Gates (exit 1 on violation):
//   - all configurations find the identical optimal window vector
//     (including the run with metrics + tracing enabled);
//   - (c) is at least 1.3x faster than the PR 1 baseline (b);
//   - the timed reps of (c) perform ZERO Workspace arena allocations
//     (solver::Workspace::total_heap_allocations() is flat);
//   - the disabled-instrumentation guard costs < 2% of an evaluation
//     (measured directly as ns per handle op, scaled by a generous
//     crossings-per-evaluation bound), and the disabled runs record
//     nothing into the global registry.
//
// --json=PATH writes the measurements as a JSON object (the CI
// perf-smoke job uploads it as the BENCH_perf.json artifact);
// --reps=N overrides the rep count (odd; median is reported).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "baseline.h"
#include "mva/approx.h"
#include "net/examples.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "qn/network.h"
#include "search/eval_cache.h"
#include "search/pattern_search.h"
#include "solver/workspace.h"
#include "util/thread_pool.h"
#include "windim/dimension.h"
#include "windim/problem.h"

namespace {

using windim::core::DimensionOptions;
using windim::core::DimensionResult;
using windim::core::Evaluation;
using windim::core::WindowProblem;

// --- PR 1 baseline: the legacy per-evaluation path -----------------------
//
// Same search machinery as dimension_windows (shared EvalCache, warm-start
// anchors on the deterministic base-point stream, speculative parallel
// probes), but the objective pays the pre-CompiledModel cost: copy the
// cyclic network, build a NetworkModel, and solve through the legacy
// vector-allocating entry point.

Evaluation legacy_evaluate(const WindowProblem& problem,
                           const std::vector<int>& windows,
                           const windim::mva::MvaWarmStart* seed,
                           windim::mva::MvaWarmStart* state) {
  const windim::qn::NetworkModel model = problem.network(windows).to_model();
  const windim::mva::MvaSolution sol =
      windim::mva::solve_approx_mva(model, {}, seed);
  if (state != nullptr) {
    state->lambda = sol.chain_throughput;
    state->number = sol.mean_queue;
    state->sigma = sol.sigma;
  }

  Evaluation ev;
  ev.windows = windows;
  ev.iterations = sol.iterations;
  ev.converged = sol.converged;
  ev.class_throughput = sol.chain_throughput;
  const int num_chains = problem.num_classes();
  ev.class_delay.assign(static_cast<std::size_t>(num_chains), 0.0);
  double total_rate = 0.0;
  double total_number = 0.0;
  for (int r = 0; r < num_chains; ++r) {
    const double rate = sol.chain_throughput[static_cast<std::size_t>(r)];
    total_rate += rate;
    double number_r = 0.0;
    for (int n = 0; n < model.num_stations(); ++n) {
      if (n == problem.source_station(r)) continue;
      number_r += sol.mean_queue[static_cast<std::size_t>(n) * num_chains + r];
    }
    total_number += number_r;
    ev.class_delay[static_cast<std::size_t>(r)] =
        rate > 0.0 ? number_r / rate : 0.0;
  }
  ev.throughput = total_rate;
  ev.mean_delay = total_rate > 0.0 ? total_number / total_rate : 0.0;
  ev.power = ev.mean_delay > 0.0 ? ev.throughput / ev.mean_delay : 0.0;
  return ev;
}

struct VectorHash {
  std::size_t operator()(const std::vector<int>& v) const noexcept {
    std::size_t h = 0x9e3779b97f4a7c15ull;
    for (int x : v) {
      h ^= static_cast<std::size_t>(x) + 0x9e3779b97f4a7c15ull + (h << 6) +
           (h >> 2);
    }
    return h;
  }
};

// Trimmed copy of the engine's EvaluationStore: converged states keyed by
// window vector, anchors registered in trajectory order.
class LegacyStore {
 public:
  void insert(const std::vector<int>& windows, windim::mva::MvaWarmStart s) {
    std::lock_guard<std::mutex> lock(mutex_);
    states_.emplace(windows, std::move(s));
  }

  void add_anchor(const std::vector<int>& windows) {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = states_.find(windows);
    if (it == states_.end() || it->second.lambda.empty()) return;
    anchors_.push_back(&*it);  // node pointers survive rehashing
  }

  [[nodiscard]] std::optional<windim::mva::MvaWarmStart> nearest_anchor(
      const std::vector<int>& windows) const {
    std::lock_guard<std::mutex> lock(mutex_);
    const Node* best = nullptr;
    long best_distance = 0;
    for (const Node* a : anchors_) {
      long distance = 0;
      for (std::size_t i = 0; i < windows.size(); ++i) {
        distance +=
            std::labs(static_cast<long>(windows[i]) - a->first[i]);
      }
      if (best == nullptr || distance < best_distance) {
        best = a;
        best_distance = distance;
      }
    }
    if (best == nullptr) return std::nullopt;
    return best->second;
  }

 private:
  using Node = std::pair<const std::vector<int>, windim::mva::MvaWarmStart>;
  mutable std::mutex mutex_;
  std::unordered_map<std::vector<int>, windim::mva::MvaWarmStart, VectorHash>
      states_;
  std::vector<const Node*> anchors_;
};

struct LegacyResult {
  std::vector<int> optimal_windows;
  double power = 0.0;
  std::size_t objective_evaluations = 0;
};

LegacyResult legacy_dimension(const WindowProblem& problem, int threads) {
  windim::search::EvalCache cache(1'000'000);
  LegacyStore store;
  std::unique_ptr<windim::util::ThreadPool> pool;
  if (threads > 1) {
    pool = std::make_unique<windim::util::ThreadPool>(
        static_cast<std::size_t>(threads));
  }

  const windim::search::Objective objective =
      [&](const windim::search::Point& e) {
        const std::optional<windim::mva::MvaWarmStart> seed =
            store.nearest_anchor(e);
        windim::mva::MvaWarmStart state;
        const Evaluation ev =
            legacy_evaluate(problem, e, seed ? &*seed : nullptr, &state);
        store.insert(e, std::move(state));
        return ev.power > 0.0 ? 1.0 / ev.power
                              : std::numeric_limits<double>::infinity();
      };

  const int num_classes = problem.num_classes();
  windim::search::PatternSearchOptions ps;
  ps.lower_bound.assign(static_cast<std::size_t>(num_classes), 1);
  ps.upper_bound.assign(static_cast<std::size_t>(num_classes), 64);
  ps.cache = &cache;
  ps.pool = pool.get();
  ps.on_new_base = [&](const windim::search::Point& p, double) {
    store.add_anchor(p);
  };

  const windim::search::PatternSearchResult r = windim::search::pattern_search(
      objective, problem.kleinrock_windows(), ps);
  LegacyResult result;
  result.optimal_windows = r.best;
  result.power = r.best_value > 0.0 ? 1.0 / r.best_value : 0.0;
  result.objective_evaluations = r.evaluations;
  return result;
}

// --- timing harness -------------------------------------------------------

template <typename Run>
double median_ms(int reps, const Run& run) {
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    run();
    const auto t1 = std::chrono::steady_clock::now();
    times.push_back(
        std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

// Direct measurement of the disabled-instrumentation guard: every
// handle operation starts with one relaxed atomic load of the enabled
// flag and bails.  Measuring the guard itself (instead of differencing
// two noisy end-to-end timings) makes the <2% overhead gate stable.
// Must run while the global registry is disabled.
double guard_cost_ns() {
  windim::obs::MetricsRegistry& reg = windim::obs::MetricsRegistry::global();
  const windim::obs::Counter c = reg.counter("bench.guard_probe");
  const windim::obs::Histogram h = reg.histogram("bench.guard_probe_us");
  constexpr int kOps = 1 << 21;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kOps; ++i) {
    c.add(1);
    h.observe(static_cast<double>(i));
  }
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(t1 - t0).count() /
         (2.0 * kOps);
}

void print_result(const char* label, double ms, const std::vector<int>& w,
                  double power, std::size_t evals) {
  std::printf("%-24s %8.3f ms   evals=%-4zu windows=(", label, ms, evals);
  for (std::size_t i = 0; i < w.size(); ++i) {
    std::printf("%s%d", i ? "," : "", w[i]);
  }
  std::printf(")  power=%.4f\n", power);
}

}  // namespace

int main(int argc, char** argv) {
  int reps = 15;
  std::string json_path;
  std::string baseline_in;
  std::string baseline_out;
  bool check = false;
  bool check_wall = false;
  double tolerance_pct = 25.0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--reps=", 7) == 0) {
      reps = std::atoi(arg + 7);
      if (reps < 1) reps = 1;
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      json_path = arg + 7;
    } else if (std::strncmp(arg, "--baseline-in=", 14) == 0) {
      baseline_in = arg + 14;
    } else if (std::strncmp(arg, "--baseline-out=", 15) == 0) {
      baseline_out = arg + 15;
    } else if (std::strcmp(arg, "--check") == 0) {
      check = true;
    } else if (std::strcmp(arg, "--check-wall") == 0) {
      // Same-machine selftest only: also compare wall-clock times.
      check = true;
      check_wall = true;
    } else if (std::strncmp(arg, "--tolerance-pct=", 16) == 0) {
      tolerance_pct = std::atof(arg + 16);
    } else {
      std::fprintf(
          stderr,
          "usage: bench_perf_dimension [--reps=N] [--json=PATH]\n"
          "           [--baseline-in=PATH] [--baseline-out=PATH]\n"
          "           [--check] [--check-wall] [--tolerance-pct=P]\n"
          "--check compares the fresh measurements against the\n"
          "--baseline-in JSON (scale-free metrics only; --check-wall adds\n"
          "wall-clock times for same-machine runs) and fails on any\n"
          "regression beyond the tolerance (default 25%%).\n");
      return 2;
    }
  }
  if (check && baseline_in.empty()) {
    std::fprintf(stderr, "error: --check requires --baseline-in=PATH\n");
    return 2;
  }

  const WindowProblem problem(windim::net::canada_topology(),
                              windim::net::four_class_traffic(6, 6, 6, 12));

  DimensionOptions cold;
  cold.threads = 1;
  cold.warm_start = false;

  windim::solver::WorkspacePool workspaces;
  DimensionOptions engine;
  engine.threads = 4;
  engine.warm_start = true;
  engine.workspaces = &workspaces;

  // Warm-up: page in code, grow the persistent pool's arenas to the
  // run's high-water mark (the one-time cost the allocation gate
  // excludes by design).
  (void)windim::core::dimension_windows(problem, cold);
  (void)legacy_dimension(problem, 4);
  (void)windim::core::dimension_windows(problem, engine);

  DimensionResult cold_result;
  const double cold_ms = median_ms(reps, [&] {
    cold_result = windim::core::dimension_windows(problem, cold);
  });

  LegacyResult legacy_result;
  const double legacy_ms =
      median_ms(reps, [&] { legacy_result = legacy_dimension(problem, 4); });

  const double guard_ns = guard_cost_ns();

  // Allocation gate: the timed compiled-engine reps must not grow any
  // workspace arena (nor copy any scratch model) anywhere in the process.
  const std::uint64_t allocs_before =
      windim::solver::Workspace::total_heap_allocations();
  DimensionResult engine_result;
  const double engine_ms = median_ms(reps, [&] {
    engine_result = windim::core::dimension_windows(problem, engine);
  });
  const std::uint64_t warm_allocations =
      windim::solver::Workspace::total_heap_allocations() - allocs_before;

  // Everything so far ran with the registry disabled; it must be empty.
  const windim::obs::MetricsSnapshot disabled_snapshot =
      windim::obs::MetricsRegistry::global().snapshot();
  const bool disabled_clean =
      disabled_snapshot.counter_or("search.runs") == 0 &&
      disabled_snapshot.counter_or("search.probes") == 0 &&
      disabled_snapshot.counter_or("solver.heuristic-mva.solves") == 0;

  // Fully instrumented run: metrics + search trace on.  Reported as an
  // informational overhead figure; the windows must not change.
  windim::obs::MetricsRegistry::global().set_enabled(true);
  windim::obs::SearchTrace trace;
  DimensionOptions instrumented = engine;
  instrumented.trace = &trace;
  DimensionResult instrumented_result;
  const double instrumented_ms = median_ms(reps, [&] {
    trace.clear();
    instrumented_result =
        windim::core::dimension_windows(problem, instrumented);
  });
  windim::obs::MetricsRegistry::global().set_enabled(false);
  const std::size_t trace_records = trace.records().size();

  std::printf("4-class thesis network, heuristic-MVA, %d reps (median)\n\n",
              reps);
  print_result("serial cold-start", cold_ms, cold_result.optimal_windows,
               cold_result.evaluation.power,
               cold_result.objective_evaluations);
  print_result("PR 1 baseline (legacy)", legacy_ms,
               legacy_result.optimal_windows, legacy_result.power,
               legacy_result.objective_evaluations);
  print_result("compiled engine", engine_ms, engine_result.optimal_windows,
               engine_result.evaluation.power,
               engine_result.objective_evaluations);
  print_result("engine + metrics/trace", instrumented_ms,
               instrumented_result.optimal_windows,
               instrumented_result.evaluation.power,
               instrumented_result.objective_evaluations);

  const bool same_windows =
      cold_result.optimal_windows == engine_result.optimal_windows &&
      legacy_result.optimal_windows == engine_result.optimal_windows &&
      instrumented_result.optimal_windows == engine_result.optimal_windows;
  const double speedup_vs_pr1 = legacy_ms / engine_ms;
  const double speedup_vs_cold = cold_ms / engine_ms;

  // Disabled-guard overhead as a fraction of one evaluation: the warm
  // path crosses the guard once per solve; budget 8 crossings per
  // evaluation for headroom (hooks added later must stay under it).
  constexpr double kGuardCrossingsPerEvaluation = 8.0;
  const double eval_ns =
      engine_ms * 1e6 /
      static_cast<double>(std::max<std::size_t>(
          engine_result.objective_evaluations, 1));
  const double obs_disabled_overhead_pct =
      100.0 * kGuardCrossingsPerEvaluation * guard_ns / eval_ns;
  const double obs_enabled_overhead_pct =
      100.0 * (instrumented_ms - engine_ms) / engine_ms;

  std::printf(
      "\nspeedup vs PR 1 baseline  %.2fx\n"
      "speedup vs serial cold    %.2fx\n"
      "warm-path workspace allocations: %llu\n"
      "disabled guard: %.2f ns/op -> %.4f%% of an evaluation\n"
      "enabled metrics+trace overhead: %.2f%% (informational), "
      "%zu trace records\n"
      "identical windows: %s\n",
      speedup_vs_pr1, speedup_vs_cold,
      static_cast<unsigned long long>(warm_allocations), guard_ns,
      obs_disabled_overhead_pct, obs_enabled_overhead_pct, trace_records,
      same_windows ? "yes" : "NO");

  bool pass = true;
  if (!same_windows) {
    std::printf("FAIL: configurations disagree on the optimal windows\n");
    pass = false;
  }
  if (speedup_vs_pr1 < 1.3) {
    std::printf("FAIL: speedup vs the PR 1 baseline below 1.3x\n");
    pass = false;
  }
  if (warm_allocations != 0) {
    std::printf("FAIL: warm path performed workspace arena allocations\n");
    pass = false;
  }
  if (obs_disabled_overhead_pct >= 2.0) {
    std::printf("FAIL: disabled instrumentation guard costs >= 2%%\n");
    pass = false;
  }
  if (!disabled_clean) {
    std::printf("FAIL: disabled runs recorded metrics\n");
    pass = false;
  }
  if (trace_records == 0) {
    std::printf("FAIL: instrumented run produced an empty search trace\n");
    pass = false;
  }
  if (pass) std::printf("PASS\n");

  windim::obs::JsonWriter w;
  {
    w.begin_object();
    w.key("benchmark");
    w.value("perf_dimension");
    w.key("network");
    w.value("canada_topology/four_class_traffic(6,6,6,12)");
    w.key("evaluator");
    w.value("heuristic-mva");
    w.key("reps");
    w.value(reps);
    w.key("serial_cold_ms");
    w.value(cold_ms);
    w.key("pr1_baseline_ms");
    w.value(legacy_ms);
    w.key("engine_ms");
    w.value(engine_ms);
    w.key("instrumented_ms");
    w.value(instrumented_ms);
    w.key("speedup_vs_pr1");
    w.value(speedup_vs_pr1);
    w.key("speedup_vs_cold");
    w.value(speedup_vs_cold);
    w.key("warm_workspace_allocations");
    w.value(static_cast<std::uint64_t>(warm_allocations));
    w.key("guard_ns_per_op");
    w.value(guard_ns);
    w.key("obs_disabled_overhead_pct");
    w.value(obs_disabled_overhead_pct);
    w.key("obs_enabled_overhead_pct");
    w.value(obs_enabled_overhead_pct);
    w.key("trace_records");
    w.value(static_cast<std::uint64_t>(trace_records));
    w.key("identical_windows");
    w.value(same_windows);
    w.key("pass");
    w.value(pass);
    w.end_object();
  }
  const std::string json = w.str();

  if (!json_path.empty() && !windim::bench::save_file(json_path, json)) {
    std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
    return 1;
  }
  if (!baseline_out.empty() &&
      !windim::bench::save_file(baseline_out, json)) {
    std::fprintf(stderr, "error: cannot write %s\n", baseline_out.c_str());
    return 1;
  }

  if (check) {
    const std::optional<std::string> baseline =
        windim::bench::load_file(baseline_in);
    if (!baseline.has_value()) {
      std::fprintf(stderr, "error: cannot read baseline %s\n",
                   baseline_in.c_str());
      return 1;
    }
    std::vector<windim::bench::CheckSpec> checks =
        windim::bench::perf_dimension_checks(tolerance_pct);
    if (check_wall) {
      std::vector<windim::bench::CheckSpec> wall =
          windim::bench::wall_clock_checks(tolerance_pct);
      checks.insert(checks.end(), wall.begin(), wall.end());
    }
    const windim::bench::BaselineReport report =
        windim::bench::compare_baseline(*baseline, json, checks);
    std::printf("\nbaseline check vs %s (tolerance %.0f%%):\n%s",
                baseline_in.c_str(), tolerance_pct,
                report.render().c_str());
    if (!report.ok()) pass = false;
  }
  return pass ? 0 : 1;
}
