// Acceptance benchmark for the parallel, warm-started evaluation engine:
// dimension the 4-class thesis network (Fig 4.10 traffic) with the
// heuristic-MVA evaluator and compare
//   (a) the serial cold-start baseline (threads = 1, warm_start = false)
//   (b) the engine configuration   (threads = 4, warm_start = true)
// The engine must find the *identical* optimal window vector and be at
// least ~2x faster; the speedup comes from warm-starting each MVA
// fixed point from the nearest accepted base point (lazy sigma refresh)
// plus, on multicore hosts, speculative parallel probe evaluation.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "net/examples.h"
#include "windim/dimension.h"
#include "windim/problem.h"

namespace {

using windim::core::DimensionOptions;
using windim::core::DimensionResult;
using windim::core::WindowProblem;

double median_ms(const WindowProblem& problem, const DimensionOptions& options,
                 int reps, DimensionResult* out) {
  std::vector<double> times;
  times.reserve(reps);
  for (int i = 0; i < reps; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    DimensionResult r = windim::core::dimension_windows(problem, options);
    const auto t1 = std::chrono::steady_clock::now();
    times.push_back(
        std::chrono::duration<double, std::milli>(t1 - t0).count());
    if (out != nullptr) *out = std::move(r);
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

void print_result(const char* label, double ms, const DimensionResult& r) {
  std::printf("%-24s %8.3f ms   evals=%-4zu windows=(", label, ms,
              r.objective_evaluations);
  for (std::size_t i = 0; i < r.optimal_windows.size(); ++i) {
    std::printf("%s%d", i ? "," : "", r.optimal_windows[i]);
  }
  std::printf(")  power=%.4f\n", r.evaluation.power);
}

}  // namespace

int main() {
  const WindowProblem problem(windim::net::canada_topology(),
                              windim::net::four_class_traffic(6, 6, 6, 12));
  const int reps = 31;

  DimensionOptions cold;
  cold.threads = 1;
  cold.warm_start = false;

  DimensionOptions engine;
  engine.threads = 4;
  engine.warm_start = true;

  // Warm-up pass (page in code, spin up allocator arenas).
  (void)windim::core::dimension_windows(problem, cold);

  DimensionResult cold_result;
  DimensionResult engine_result;
  const double cold_ms = median_ms(problem, cold, reps, &cold_result);
  const double engine_ms = median_ms(problem, engine, reps, &engine_result);

  std::printf("4-class thesis network, heuristic-MVA, %d reps (median)\n\n",
              reps);
  print_result("serial cold-start", cold_ms, cold_result);
  print_result("4 threads + warm start", engine_ms, engine_result);

  const bool same_windows =
      cold_result.optimal_windows == engine_result.optimal_windows;
  const double speedup = cold_ms / engine_ms;
  std::printf("\nspeedup   %.2fx\nidentical windows: %s\n", speedup,
              same_windows ? "yes" : "NO");
  if (!same_windows) {
    std::printf("FAIL: engine found a different optimum\n");
    return 1;
  }
  if (speedup < 2.0) {
    std::printf("FAIL: speedup below the 2x acceptance threshold\n");
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
