// Reproduces thesis Table 4.8: effect of *dissimilar* class loadings on
// the optimal window settings for the 2-class network example.
//
// Expected shape (thesis): as the rate ratio S2/S1 grows at constant
// total load, the optimal windows stay close to the symmetric-loading
// choice while the attainable power degrades - "it is therefore
// advantageous to operate the network with similar loading for the
// classes".
#include <cstdio>

#include "util/table.h"
#include "windim/windim.h"

int main() {
  using namespace windim;
  const net::Topology topology = net::canada_topology();

  const double rows[][2] = {
      // Total 25 msg/s at growing imbalance.
      {12.0, 13.0},
      {10.0, 15.0},
      {8.4, 16.6},
      {7.0, 18.0},
      {5.0, 20.0},
      // Total 36 msg/s.
      {18.0, 18.0},
      {15.0, 21.0},
      {12.0, 24.0},
      {9.0, 27.0},
  };

  util::TextTable table(
      {"S1", "S2", "S1+S2", "S2/S1", "E_opt", "P_opt", "P(sym windows)"});

  // Reference: optimal windows under the closest symmetric loading.
  const core::WindowProblem sym25(topology,
                                  net::two_class_traffic(12.5, 12.5));
  const std::vector<int> sym25_windows =
      core::dimension_windows(sym25).optimal_windows;
  const core::WindowProblem sym36(topology,
                                  net::two_class_traffic(18.0, 18.0));
  const std::vector<int> sym36_windows =
      core::dimension_windows(sym36).optimal_windows;

  for (const auto& row : rows) {
    const core::WindowProblem problem(
        topology, net::two_class_traffic(row[0], row[1]));
    const core::DimensionResult result = core::dimension_windows(problem);
    const std::vector<int>& sym_windows =
        (row[0] + row[1] < 30.0) ? sym25_windows : sym36_windows;
    const core::Evaluation at_sym = problem.evaluate(sym_windows);

    table.begin_row()
        .add(row[0], 1)
        .add(row[1], 1)
        .add(row[0] + row[1], 1)
        .add(row[1] / row[0], 2)
        .add_window(result.optimal_windows)
        .add(result.evaluation.power, 1)
        .add(at_sym.power, 1);
  }

  std::printf("Table 4.8 - dissimilar loadings, 2-class network\n");
  std::printf("(thesis: E_opt barely moves with imbalance; P_opt degrades "
              "as S2/S1 grows)\n\n%s\n",
              table.render().c_str());
  return 0;
}
