// Acceptance benchmark for the continental-scale SoA sweep kernels:
// solve generated large-cyclic fixtures (1k and 10k chains, seed 1)
// with
//
//   (a) pre-PR scalar path — a faithful reconstruction of the
//       O(N*R^2) heuristic sweep before the busy[]/total[] hoists
//       (every chain re-sums the other chains' utilization and queue
//       lengths at every station), kept here because the engine no
//       longer has that path;
//   (b) SoA kernel        — the registry's heuristic-mva over the
//       station-major CompiledModel slab with the O(N*R) hoisted
//       sweeps and a warm Workspace arena.
//
// Both run the SAME fixed number of sweeps (tolerance 0), so the
// comparison is per-sweep work, not convergence luck.
//
// Gates (exit 1 on violation):
//   - the 10k-chain kernel is at least 3x faster than the scalar path;
//   - both paths agree on the solved window statistics (max relative
//     throughput difference < 1e-6 — the hoists reassociate the
//     other-chain sums, so agreement is near-exact, not bitwise);
//   - the timed kernel reps perform ZERO workspace arena allocations.
//
// --json=PATH writes the measurements; --check compares them against
// --baseline-in (scale-free metrics); --trace-spans-out=PATH writes a
// Chrome-trace span file covering the timed phases (the CI
// perf-large-model job uploads it).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "baseline.h"
#include "mva/approx.h"
#include "obs/json.h"
#include "obs/span.h"
#include "qn/compiled_model.h"
#include "solver/registry.h"
#include "solver/solver.h"
#include "solver/workspace.h"
#include "verify/gen.h"

namespace {

using windim::qn::CompiledModel;

// --- pre-PR scalar path ---------------------------------------------------
//
// The heuristic sweep exactly as it ran before the station-major hoists
// (see git history of solver/heuristic_mva.cc): STEP 2 re-sums
// rho_other over all other chains per (chain, station) and STEP 3
// re-sums the total queue per (chain, station), making every sweep
// O(N*R^2).  Cold std::vector storage, Chan sigma policy, no warm
// start — the configuration the speedup claim is measured against.
std::vector<double> scalar_solve(const CompiledModel& model,
                                 const std::vector<int>& population,
                                 const windim::mva::ApproxMvaOptions& options) {
  const int num_stations = model.num_stations();
  const int num_chains = model.num_chains();
  const std::size_t cells =
      static_cast<std::size_t>(num_stations) * num_chains;
  std::vector<double> number(cells, 0.0);
  std::vector<double> time(cells, 0.0);
  std::vector<double> lambda(static_cast<std::size_t>(num_chains), 0.0);
  std::vector<double> sigma(cells, 0.0);
  std::vector<double> lambda_prev(static_cast<std::size_t>(num_chains));
  std::vector<double> sub_demand(static_cast<std::size_t>(num_stations));
  std::vector<int> sub_station(static_cast<std::size_t>(num_stations));
  std::vector<int> sub_delay(static_cast<std::size_t>(num_stations));
  std::vector<double> sc_number_prev(static_cast<std::size_t>(num_stations));
  std::vector<double> sc_number_cur(static_cast<std::size_t>(num_stations));
  std::vector<double> sc_time(static_cast<std::size_t>(num_stations));

  // STEP 1: balanced initialization.
  for (int r = 0; r < num_chains; ++r) {
    const int pop = population[static_cast<std::size_t>(r)];
    const std::span<const int> stations = model.stations_of(r);
    if (pop == 0 || stations.empty()) continue;
    double cycle = 0.0;
    for (int n : stations) cycle += model.demand(r, n);
    const double share =
        static_cast<double>(pop) / static_cast<double>(stations.size());
    for (int n : stations) {
      number[static_cast<std::size_t>(n) * num_chains + r] = share;
    }
    lambda[static_cast<std::size_t>(r)] = pop / cycle;
  }
  std::copy(lambda.begin(), lambda.end(), lambda_prev.begin());

  for (int iteration = 1; iteration <= options.max_iterations; ++iteration) {
    // STEP 2: sigma via the isolated single-chain subproblem, with the
    // O(R) other-chain utilization re-sum per visited station.
    for (int r = 0; r < num_chains; ++r) {
      const int pop = population[static_cast<std::size_t>(r)];
      if (pop == 0) continue;
      std::size_t sub_size = 0;
      for (int n = 0; n < num_stations; ++n) {
        const double d = model.demand(r, n);
        if (d <= 0.0) continue;
        double rho_other = 0.0;
        for (int j = 0; j < num_chains; ++j) {
          if (j == r) continue;
          rho_other +=
              lambda[static_cast<std::size_t>(j)] * model.demand(j, n);
        }
        rho_other = std::clamp(rho_other, 0.0, options.utilization_clamp);
        const bool delay = model.is_delay(n);
        sub_demand[sub_size] = delay ? d : d / (1.0 - rho_other);
        sub_delay[sub_size] = delay ? 1 : 0;
        sub_station[sub_size] = n;
        ++sub_size;
      }
      for (std::size_t k = 0; k < sub_size; ++k) sc_number_prev[k] = 0.0;
      for (int k = 1; k <= pop; ++k) {
        double cycle_time = 0.0;
        for (std::size_t i = 0; i < sub_size; ++i) {
          sc_time[i] = sub_delay[i] != 0
                           ? sub_demand[i]
                           : sub_demand[i] * (1.0 + sc_number_prev[i]);
          cycle_time += sc_time[i];
        }
        const double sc_lambda = k / cycle_time;
        for (std::size_t i = 0; i < sub_size; ++i) {
          sc_number_cur[i] = sc_lambda * sc_time[i];
        }
        if (k < pop) {
          std::swap_ranges(sc_number_prev.begin(),
                           sc_number_prev.begin() + sub_size,
                           sc_number_cur.begin());
        }
      }
      for (std::size_t i = 0; i < sub_size; ++i) {
        const double increment = sc_number_cur[i] - sc_number_prev[i];
        sigma[static_cast<std::size_t>(sub_station[i]) * num_chains + r] =
            std::clamp(increment, 0.0, 1.0);
      }
    }

    // STEP 3: queueing times, with the O(R) total-queue re-sum.
    for (int r = 0; r < num_chains; ++r) {
      if (population[static_cast<std::size_t>(r)] == 0) continue;
      for (int n = 0; n < num_stations; ++n) {
        const double d = model.demand(r, n);
        if (d <= 0.0) {
          time[static_cast<std::size_t>(n) * num_chains + r] = 0.0;
          continue;
        }
        if (model.is_delay(n)) {
          time[static_cast<std::size_t>(n) * num_chains + r] = d;
          continue;
        }
        double others = 0.0;
        for (int j = 0; j < num_chains; ++j) {
          others += number[static_cast<std::size_t>(n) * num_chains + j];
        }
        const double seen = std::max(
            0.0,
            others - sigma[static_cast<std::size_t>(n) * num_chains + r]);
        time[static_cast<std::size_t>(n) * num_chains + r] = d * (1.0 + seen);
      }
    }

    // STEP 4: chain throughputs.
    for (int r = 0; r < num_chains; ++r) {
      const int pop = population[static_cast<std::size_t>(r)];
      if (pop == 0) {
        lambda[static_cast<std::size_t>(r)] = 0.0;
        continue;
      }
      double cycle = 0.0;
      for (int n = 0; n < num_stations; ++n) {
        cycle += time[static_cast<std::size_t>(n) * num_chains + r];
      }
      lambda[static_cast<std::size_t>(r)] = pop / cycle;
    }

    // STEP 5: queue lengths.
    for (int r = 0; r < num_chains; ++r) {
      for (int n = 0; n < num_stations; ++n) {
        const std::size_t idx = static_cast<std::size_t>(n) * num_chains + r;
        const double updated = lambda[static_cast<std::size_t>(r)] * time[idx];
        number[idx] =
            options.damping * updated + (1.0 - options.damping) * number[idx];
      }
    }

    // STEP 6: CRIT (irrelevant at tolerance 0 — fixed sweep count).
    double crit = 0.0;
    double scale = 1.0;
    for (int r = 0; r < num_chains; ++r) {
      crit = std::max(crit, std::abs(lambda[static_cast<std::size_t>(r)] -
                                     lambda_prev[static_cast<std::size_t>(r)]));
      scale = std::max(scale, std::abs(lambda[static_cast<std::size_t>(r)]));
    }
    std::copy(lambda.begin(), lambda.end(), lambda_prev.begin());
    if (crit / scale < options.tolerance) break;
  }
  return lambda;
}

template <typename Run>
double median_ms(int reps, const Run& run) {
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    run();
    const auto t1 = std::chrono::steady_clock::now();
    times.push_back(
        std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

struct SizeResult {
  int chains = 0;
  double scalar_ms = 0.0;
  double kernel_ms = 0.0;
  double speedup = 0.0;
  double max_rel_diff = 0.0;
  std::uint64_t warm_allocations = 0;
};

SizeResult run_size(int chains, int sweeps, int reps) {
  windim::obs::SpanTracer::Scope span(&windim::obs::SpanTracer::global(),
                                      "bench.large_model", "bench");
  span.arg("chains", chains);

  windim::verify::GenOptions gen_opt;
  gen_opt.large_chains = chains;
  const windim::verify::Instance inst = windim::verify::generate(
      windim::verify::Family::kLargeCyclic, 1, gen_opt);
  const CompiledModel compiled = CompiledModel::compile(inst.model);
  const std::vector<int> population(compiled.base_populations().begin(),
                                    compiled.base_populations().end());

  // Fixed sweep count for both paths: per-sweep cost is the claim.
  windim::mva::ApproxMvaOptions options;
  options.max_iterations = sweeps;
  options.tolerance = 0.0;

  const windim::solver::Solver& kernel =
      windim::solver::SolverRegistry::instance().require("heuristic-mva");
  windim::solver::Workspace ws;
  ws.hints.mva = &options;

  // Warm-up: grow the arena to this model's high-water mark.
  std::vector<double> kernel_lambda;
  {
    const windim::solver::Solution sol = kernel.solve(compiled, population, ws);
    kernel_lambda.assign(sol.chain_throughput.begin(),
                         sol.chain_throughput.end());
  }

  SizeResult out;
  out.chains = chains;
  const std::uint64_t allocs_before =
      windim::solver::Workspace::total_heap_allocations();
  {
    windim::obs::SpanTracer::Scope s(&windim::obs::SpanTracer::global(),
                                     "bench.kernel_solve", "bench");
    s.arg("chains", chains);
    out.kernel_ms = median_ms(
        reps, [&] { (void)kernel.solve(compiled, population, ws); });
    s.arg("median_ms", out.kernel_ms);
  }
  out.warm_allocations =
      windim::solver::Workspace::total_heap_allocations() - allocs_before;

  std::vector<double> scalar_lambda;
  {
    windim::obs::SpanTracer::Scope s(&windim::obs::SpanTracer::global(),
                                     "bench.scalar_solve", "bench");
    s.arg("chains", chains);
    // The scalar path is O(N*R^2) per sweep — a single rep is minutes
    // of arithmetic at 10k chains; its median over noise is not the
    // bottleneck of the comparison.
    out.scalar_ms = median_ms(
        1, [&] { scalar_lambda = scalar_solve(compiled, population, options); });
    s.arg("median_ms", out.scalar_ms);
  }
  out.speedup = out.scalar_ms / out.kernel_ms;

  for (std::size_t r = 0; r < scalar_lambda.size(); ++r) {
    const double denom = std::max(1e-300, std::abs(scalar_lambda[r]));
    out.max_rel_diff = std::max(
        out.max_rel_diff, std::abs(kernel_lambda[r] - scalar_lambda[r]) / denom);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  int reps = 5;
  int sweeps = 10;
  std::string json_path;
  std::string baseline_in;
  std::string baseline_out;
  std::string spans_path;
  bool check = false;
  double tolerance_pct = 25.0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--reps=", 7) == 0) {
      reps = std::atoi(arg + 7);
      if (reps < 1) reps = 1;
    } else if (std::strncmp(arg, "--sweeps=", 9) == 0) {
      sweeps = std::atoi(arg + 9);
      if (sweeps < 1) sweeps = 1;
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      json_path = arg + 7;
    } else if (std::strncmp(arg, "--baseline-in=", 14) == 0) {
      baseline_in = arg + 14;
    } else if (std::strncmp(arg, "--baseline-out=", 15) == 0) {
      baseline_out = arg + 15;
    } else if (std::strncmp(arg, "--trace-spans-out=", 18) == 0) {
      spans_path = arg + 18;
    } else if (std::strcmp(arg, "--check") == 0) {
      check = true;
    } else if (std::strncmp(arg, "--tolerance-pct=", 16) == 0) {
      tolerance_pct = std::atof(arg + 16);
    } else {
      std::fprintf(
          stderr,
          "usage: bench_perf_large_model [--reps=N] [--sweeps=N]\n"
          "           [--json=PATH] [--trace-spans-out=PATH]\n"
          "           [--baseline-in=PATH] [--baseline-out=PATH]\n"
          "           [--check] [--tolerance-pct=P]\n"
          "--check compares the fresh measurements against the\n"
          "--baseline-in JSON (scale-free metrics only) and fails on\n"
          "any regression beyond the tolerance (default 25%%).\n");
      return 2;
    }
  }
  if (check && baseline_in.empty()) {
    std::fprintf(stderr, "error: --check requires --baseline-in=PATH\n");
    return 2;
  }

  if (!spans_path.empty()) {
    windim::obs::SpanTracer::global().set_enabled(true);
  }

  const SizeResult r1k = run_size(1000, sweeps, reps);
  const SizeResult r10k = run_size(10000, sweeps, reps);

  std::printf("large-cyclic fixtures, %d fixed sweeps, heuristic-MVA\n\n",
              sweeps);
  for (const SizeResult& r : {r1k, r10k}) {
    std::printf(
        "%6d chains: scalar %10.3f ms   kernel %8.3f ms   "
        "speedup %7.1fx   max rel diff %.2e\n",
        r.chains, r.scalar_ms, r.kernel_ms, r.speedup, r.max_rel_diff);
  }

  const bool identical_windows =
      r1k.max_rel_diff < 1e-6 && r10k.max_rel_diff < 1e-6;
  const std::uint64_t warm_allocations =
      r1k.warm_allocations + r10k.warm_allocations;

  bool pass = true;
  if (r10k.speedup < 3.0) {
    std::printf("FAIL: 10k-chain speedup below 3x\n");
    pass = false;
  }
  if (!identical_windows) {
    std::printf("FAIL: scalar and kernel paths disagree on the solution\n");
    pass = false;
  }
  if (warm_allocations != 0) {
    std::printf("FAIL: warm kernel reps performed arena allocations\n");
    pass = false;
  }
  if (pass) std::printf("PASS\n");

  windim::obs::JsonWriter w;
  {
    w.begin_object();
    w.key("benchmark");
    w.value("perf_large_model");
    w.key("large_sweeps");
    w.value(sweeps);
    w.key("large_reps");
    w.value(reps);
    w.key("large_scalar_1k_ms");
    w.value(r1k.scalar_ms);
    w.key("large_kernel_1k_ms");
    w.value(r1k.kernel_ms);
    w.key("large_speedup_1k");
    w.value(r1k.speedup);
    w.key("large_scalar_10k_ms");
    w.value(r10k.scalar_ms);
    w.key("large_kernel_10k_ms");
    w.value(r10k.kernel_ms);
    w.key("large_speedup_10k");
    w.value(r10k.speedup);
    w.key("large_max_rel_diff");
    w.value(std::max(r1k.max_rel_diff, r10k.max_rel_diff));
    w.key("large_warm_workspace_allocations");
    w.value(warm_allocations);
    w.key("large_identical_windows");
    w.value(identical_windows);
    w.key("large_pass");
    w.value(pass);
    w.end_object();
  }
  const std::string json = w.str();

  if (!json_path.empty() && !windim::bench::save_file(json_path, json)) {
    std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
    return 1;
  }
  if (!baseline_out.empty() &&
      !windim::bench::save_file(baseline_out, json)) {
    std::fprintf(stderr, "error: cannot write %s\n", baseline_out.c_str());
    return 1;
  }
  if (!spans_path.empty() &&
      !windim::obs::SpanTracer::global().write_json(spans_path)) {
    std::fprintf(stderr, "error: cannot write %s\n", spans_path.c_str());
    return 1;
  }

  if (check) {
    const std::optional<std::string> baseline =
        windim::bench::load_file(baseline_in);
    if (!baseline.has_value()) {
      std::fprintf(stderr, "error: cannot read baseline %s\n",
                   baseline_in.c_str());
      return 1;
    }
    const windim::bench::BaselineReport report = windim::bench::compare_baseline(
        *baseline, json, windim::bench::perf_large_model_checks(tolerance_pct));
    std::printf("\nbaseline check vs %s (tolerance %.0f%%):\n%s",
                baseline_in.c_str(), tolerance_pct, report.render().c_str());
    if (!report.ok()) pass = false;
  }
  return pass ? 0 : 1;
}
