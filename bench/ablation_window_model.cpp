// Ablation A6: which analytic abstraction of window flow control is
// closest to the simulated truth?
//
// Three models of the same system:
//   closed      - thesis model: source = exponential server 1/S (chain
//                 population fixed at E); matches a simulator whose
//                 source regenerates after each credit;
//   semiclosed  - Poisson source, arrivals beyond the window LOST
//                 (thesis 3.3.3); matches the drop-tail simulator;
//   simulator   - ground truth with an infinite source backlog
//                 (work-conserving, the common real deployment).
//
// Expected: semiclosed == drop-tail sim to simulation noise (it is the
// exact solution of that system); closed model is conservative against
// the backlog simulator (it forgets buffered arrivals); all models agree
// as E grows.
#include <cstdio>

#include "net/examples.h"
#include "sim/msgnet_sim.h"
#include "util/table.h"
#include "windim/windim.h"

int main() {
  using namespace windim;
  const net::Topology topology = net::canada_topology();
  const double s = 25.0;
  const auto classes = net::two_class_traffic(s, s);
  const core::WindowProblem problem(topology, classes);

  util::TextTable table({"window E", "closed thput", "semiclosed thput",
                         "sim drop-tail", "sim backlog", "closed delay(ms)",
                         "sim backlog delay(ms)"});

  for (int e : {1, 2, 3, 4, 6, 8}) {
    const core::Evaluation closed =
        problem.evaluate({e, e}, core::Evaluator::kConvolution);
    const core::Evaluation semi =
        problem.evaluate({e, e}, core::Evaluator::kSemiclosed);

    sim::MsgNetOptions drop;
    drop.windows = {e, e};
    drop.source_queue_limit = 0;
    drop.sim_time = 1500.0;
    drop.warmup = 150.0;
    drop.seed = 23;
    sim::MsgNetOptions backlog = drop;
    backlog.source_queue_limit = -1;

    const sim::MsgNetResult sim_drop =
        sim::simulate_msgnet(topology, classes, drop);
    const sim::MsgNetResult sim_backlog =
        sim::simulate_msgnet(topology, classes, backlog);

    table.begin_row()
        .add(e)
        .add(closed.throughput, 2)
        .add(semi.throughput, 2)
        .add(sim_drop.delivered_rate, 2)
        .add(sim_backlog.delivered_rate, 2)
        .add(closed.mean_delay * 1000.0, 1)
        .add(sim_backlog.mean_network_delay * 1000.0, 1);
  }

  std::printf("Ablation A6 - window-model fidelity (S1=S2=%.0f msg/s)\n", s);
  std::printf("(expected: semiclosed tracks the drop-tail simulation "
              "exactly; the thesis's closed model is a conservative "
              "estimate of the backlog simulation, converging as E "
              "grows)\n\n%s\n",
              table.render().c_str());
  return 0;
}
