// Reproduces thesis Fig 2.1: network throughput versus offered load.
//
// The thesis sketches this qualitatively; we generate it with the full
// store-and-forward simulator on the Fig 4.5 network.  Three regimes:
//   (a) no control, infinite buffers: beyond the knee, fresh admissions
//       crowd transit traffic out of the shared half-duplex channels, so
//       end-to-end throughput *declines* with offered load - the
//       "region of negative slope" exists even without buffer limits;
//   (b) finite node buffers (K=12), NO flow control: hold-the-channel
//       blocking between the two opposed classes adds store-and-forward
//       lockup on top - throughput collapses to zero (deadlock);
//   (c) finite buffers + end-to-end windows (3,3): the windows bound the
//       in-network population to 6 < K, so no blocking cycle can form;
//       throughput saturates and *stays* saturated - flow control shifts
//       congestion to the admittance point.
#include <cstdio>
#include <vector>

#include "net/examples.h"
#include "sim/msgnet_sim.h"
#include "util/table.h"

int main() {
  using namespace windim;
  const net::Topology topology = net::canada_topology();

  const std::vector<double> offered = {5.0,  10.0, 15.0, 20.0, 25.0,
                                       30.0, 35.0, 40.0, 50.0, 60.0};

  util::TextTable table({"offered (msg/s per class)", "no-control thput",
                         "finite buffers thput", "buffers+windows thput",
                         "windows delay (s)"});

  for (double s : offered) {
    const auto classes = net::two_class_traffic(s, s);

    sim::MsgNetOptions uncontrolled;
    uncontrolled.sim_time = 400.0;
    uncontrolled.warmup = 50.0;
    uncontrolled.seed = 11;

    sim::MsgNetOptions finite = uncontrolled;
    finite.node_buffer_limit.assign(6, 12);

    sim::MsgNetOptions controlled = finite;
    controlled.windows = {3, 3};

    const sim::MsgNetResult a =
        sim::simulate_msgnet(topology, classes, uncontrolled);
    const sim::MsgNetResult b =
        sim::simulate_msgnet(topology, classes, finite);
    const sim::MsgNetResult c =
        sim::simulate_msgnet(topology, classes, controlled);

    table.begin_row()
        .add(s, 1)
        .add(a.delivered_rate, 1)
        .add(b.delivered_rate, 1)
        .add(c.delivered_rate, 1)
        .add(c.mean_network_delay, 3);
  }

  std::printf("Fig 2.1 - throughput vs offered load (simulated, Fig 4.5 "
              "network, both classes loaded equally)\n");
  std::printf("(thesis: uncontrolled finite-buffer network shows the "
              "negative-slope congestion region; windows hold the "
              "plateau)\n\n%s\n",
              table.render().c_str());
  return 0;
}
