#include "baseline.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>

#include "obs/json.h"

namespace windim::bench {
namespace {

// Numeric read that also accepts booleans (pass / identical_windows)
// as 1/0, so every gate in the benchmark JSON is checkable.
std::optional<double> metric_value(const obs::JsonValue& root,
                                   const std::string& key) {
  const obs::JsonValue* v = root.find(key);
  if (v == nullptr) {
    return std::nullopt;
  }
  if (v->kind == obs::JsonValue::Kind::kNumber) {
    return v->number;
  }
  if (v->kind == obs::JsonValue::Kind::kBool) {
    return v->boolean ? 1.0 : 0.0;
  }
  return std::nullopt;
}

}  // namespace

bool BaselineReport::ok() const {
  if (!errors.empty()) {
    return false;
  }
  return std::all_of(comparisons.begin(), comparisons.end(),
                     [](const MetricComparison& c) { return c.ok; });
}

std::string BaselineReport::render() const {
  std::ostringstream out;
  for (const MetricComparison& c : comparisons) {
    out << (c.ok ? "  ok   " : "  FAIL ") << c.metric << ": baseline "
        << c.baseline << " -> current " << c.current;
    if (c.drift_pct > 0.0) {
      out << " (" << c.drift_pct << "% worse)";
    }
    out << '\n';
  }
  for (const std::string& e : errors) {
    out << "  ERROR " << e << '\n';
  }
  out << (ok() ? "baseline check PASSED" : "baseline check FAILED") << '\n';
  return out.str();
}

std::vector<CheckSpec> perf_dimension_checks(double tolerance_pct) {
  // Scale-free only: ratios and counts hold across machines of
  // different absolute speed.  The overhead percentage gets a 0.5pp
  // floor — a 0.02% -> 0.05% wobble is noise, not a regression — and
  // the exact gates (allocations, window identity, overall pass) get
  // zero tolerance.
  return {
      {"speedup_vs_pr1", Direction::kHigherIsBetter, tolerance_pct, 0.0},
      {"obs_disabled_overhead_pct", Direction::kLowerIsBetter, tolerance_pct,
       0.5},
      {"warm_workspace_allocations", Direction::kLowerIsBetter, 0.0, 0.0},
      {"identical_windows", Direction::kHigherIsBetter, 0.0, 0.0},
      {"pass", Direction::kHigherIsBetter, 0.0, 0.0},
  };
}

std::vector<CheckSpec> perf_large_model_checks(double tolerance_pct) {
  // Same philosophy as perf_dimension_checks: speedup ratios drift
  // within tolerance, the allocation / solution-identity / pass gates
  // are exact.  The 10k ratio is the acceptance headline (>= 3x is the
  // benchmark's own hard gate; the baseline check additionally pins
  // the measured margin).
  return {
      {"large_speedup_10k", Direction::kHigherIsBetter, tolerance_pct, 0.0},
      {"large_speedup_1k", Direction::kHigherIsBetter, tolerance_pct, 0.0},
      {"large_warm_workspace_allocations", Direction::kLowerIsBetter, 0.0,
       0.0},
      {"large_identical_windows", Direction::kHigherIsBetter, 0.0, 0.0},
      {"large_pass", Direction::kHigherIsBetter, 0.0, 0.0},
  };
}

std::vector<CheckSpec> perf_serve_checks(double tolerance_pct) {
  // The daemon's own hard gate (>= 1000 req/s) folds into serve_pass;
  // the committed baseline additionally pins that the cache keeps
  // absorbing repeat topologies and that the well-formed stream stays
  // error-free.  serve_requests_per_sec / serve_p99_us are recorded in
  // the JSON for trend inspection but are machine-bound, so they carry
  // no cross-machine check.
  // serve_window_overhead_pct prices the live observability plane
  // (sliding windows + trace buffer) against a window-off control run;
  // the benchmark hard-fails at 2%, and the baseline check bounds drift
  // below that (floored at 2.0 so a near-zero committed overhead cannot
  // turn scheduler noise into a huge relative regression).
  return {
      {"serve_cache_hit_rate", Direction::kHigherIsBetter, tolerance_pct,
       0.1},
      {"serve_window_overhead_pct", Direction::kLowerIsBetter, tolerance_pct,
       2.0},
      {"serve_error_free", Direction::kHigherIsBetter, 0.0, 0.0},
      {"serve_pass", Direction::kHigherIsBetter, 0.0, 0.0},
  };
}

std::vector<CheckSpec> perf_pareto_checks(double tolerance_pct) {
  // The front's identity gates are deterministic by construction
  // (serial-replay search, fixed scan order), so they carry zero
  // tolerance; only the pruned-lattice fraction is allowed to drift —
  // it moves when the evaluator or the balanced-job bounds are
  // legitimately tightened or relaxed.
  return {
      {"pareto_front_points", Direction::kHigherIsBetter, 0.0, 0.0},
      {"pareto_deterministic", Direction::kHigherIsBetter, 0.0, 0.0},
      {"pareto_reproducible", Direction::kHigherIsBetter, 0.0, 0.0},
      {"pareto_prune_fraction", Direction::kHigherIsBetter, tolerance_pct,
       0.05},
      {"pareto_prune_identical", Direction::kHigherIsBetter, 0.0, 0.0},
      {"pareto_pass", Direction::kHigherIsBetter, 0.0, 0.0},
  };
}

std::vector<CheckSpec> perf_scenario_checks(double tolerance_pct) {
  // The scorecard identity gates are deterministic by construction
  // (per-cell seeding, preallocated slots, fixed render order), so they
  // carry zero tolerance; only the stationary-cell power ratio is
  // allowed statistical drift around 1.0.
  return {
      {"scenario_cells", Direction::kHigherIsBetter, 0.0, 0.0},
      {"scenario_deterministic", Direction::kHigherIsBetter, 0.0, 0.0},
      {"scenario_reproducible", Direction::kHigherIsBetter, 0.0, 0.0},
      {"scenario_stationary_power_ratio", Direction::kHigherIsBetter,
       tolerance_pct, 0.5},
      {"scenario_pass", Direction::kHigherIsBetter, 0.0, 0.0},
  };
}

std::vector<CheckSpec> wall_clock_checks(double tolerance_pct) {
  // Millisecond floors keep sub-millisecond phases from flagging on
  // scheduler jitter.  Same-machine comparisons only.
  return {
      {"serial_cold_ms", Direction::kLowerIsBetter, tolerance_pct, 1.0},
      {"pr1_baseline_ms", Direction::kLowerIsBetter, tolerance_pct, 1.0},
      {"engine_ms", Direction::kLowerIsBetter, tolerance_pct, 1.0},
      {"instrumented_ms", Direction::kLowerIsBetter, tolerance_pct, 1.0},
  };
}

BaselineReport compare_baseline(const std::string& baseline_json,
                                const std::string& current_json,
                                const std::vector<CheckSpec>& checks) {
  BaselineReport report;
  const std::optional<obs::JsonValue> base = obs::parse_json(baseline_json);
  if (!base.has_value() || !base->is_object()) {
    report.errors.push_back("baseline is not a valid JSON object");
    return report;
  }
  const std::optional<obs::JsonValue> cur = obs::parse_json(current_json);
  if (!cur.has_value() || !cur->is_object()) {
    report.errors.push_back("current result is not a valid JSON object");
    return report;
  }
  for (const CheckSpec& spec : checks) {
    const std::optional<double> b = metric_value(*base, spec.metric);
    const std::optional<double> c = metric_value(*cur, spec.metric);
    if (!b.has_value()) {
      report.errors.push_back("baseline missing metric: " + spec.metric);
      continue;
    }
    if (!c.has_value()) {
      report.errors.push_back("current result missing metric: " +
                              spec.metric);
      continue;
    }
    MetricComparison cmp;
    cmp.metric = spec.metric;
    cmp.baseline = *b;
    cmp.current = *c;
    // Adverse movement in the metric's regression direction, measured
    // against the floored baseline so near-zero denominators cannot
    // amplify noise.  A zero floored baseline degenerates to an exact
    // comparison: any adverse movement at all fails.
    const double adverse = spec.direction == Direction::kLowerIsBetter
                               ? cmp.current - cmp.baseline
                               : cmp.baseline - cmp.current;
    const double denom = std::max(std::abs(cmp.baseline), spec.floor);
    if (adverse > 0.0) {
      cmp.drift_pct =
          denom > 0.0 ? 100.0 * adverse / denom
                      : std::numeric_limits<double>::infinity();
      cmp.ok = cmp.drift_pct <= spec.tolerance_pct;
    }
    report.comparisons.push_back(std::move(cmp));
  }
  return report;
}

std::optional<std::string> load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return std::nullopt;
  }
  std::ostringstream body;
  body << in.rdbuf();
  return std::move(body).str();
}

bool save_file(const std::string& path, const std::string& body) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return false;
  }
  out << body;
  if (body.empty() || body.back() != '\n') {
    out << '\n';
  }
  return out.good();
}

}  // namespace windim::bench
