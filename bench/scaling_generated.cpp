// Scaling beyond the thesis examples: WINDIM on generated topologies.
//
// The thesis closes with "results ... may be readily extended to provide
// insights into the dimensioning problem for larger networks."  This
// bench dimensions rings, grids and random networks with up to 12
// virtual channels, reporting wall time and search effort - only the
// heuristic evaluator makes this tractable (the exact lattice would have
// ~(E+1)^12 points).
#include <chrono>
#include <cstdio>

#include "net/generators.h"
#include "util/rng.h"
#include "util/table.h"
#include "windim/windim.h"

namespace {

using namespace windim;

struct Scenario {
  const char* name;
  net::Topology topology;
  std::vector<net::TrafficClass> classes;
};

}  // namespace

int main() {
  util::Rng rng(2024);
  std::vector<Scenario> scenarios;
  {
    net::Topology t = net::ring_topology(8, 50.0);
    auto classes = net::random_traffic(t, 4, 8.0, 20.0, rng);
    scenarios.push_back({"ring-8 / 4 classes", t, classes});
  }
  {
    net::Topology t = net::grid_topology(4, 4, 50.0);
    auto classes = net::random_traffic(t, 8, 5.0, 15.0, rng);
    scenarios.push_back({"grid-4x4 / 8 classes", t, classes});
  }
  {
    net::Topology t = net::random_topology(12, 6, 25.0, 100.0, rng);
    auto classes = net::random_traffic(t, 12, 4.0, 12.0, rng);
    scenarios.push_back({"random-12 / 12 classes", t, classes});
  }
  {
    net::Topology t = net::star_topology(6, 50.0);
    auto classes = net::random_traffic(t, 6, 6.0, 14.0, rng);
    scenarios.push_back({"star-6 / 6 classes", t, classes});
  }

  util::TextTable table({"scenario", "classes", "E_opt", "power", "evals",
                         "cache hits", "wall ms"});
  for (const Scenario& s : scenarios) {
    const core::WindowProblem problem(s.topology, s.classes);
    const auto start = std::chrono::steady_clock::now();
    const core::DimensionResult r = core::dimension_windows(problem);
    const auto stop = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    table.begin_row()
        .add(s.name)
        .add(static_cast<int>(s.classes.size()))
        .add_window(r.optimal_windows)
        .add(r.evaluation.power, 1)
        .add(static_cast<long>(r.objective_evaluations))
        .add(static_cast<long>(r.cache_hits))
        .add(ms, 1);
  }

  std::printf("Scaling WINDIM to generated networks (heuristic MVA "
              "evaluator)\n");
  std::printf("(expected: 12-channel dimensioning in well under a second; "
              "exact lattice methods would be infeasible here)\n\n%s\n",
              table.render().c_str());
  return 0;
}
