// Reproduces thesis Table 4.12: effect of traffic-arrival-rate variation
// on optimal window settings for the 4-class network example (Fig 4.10).
//
// For each row WINDIM dimensions the four windows; P_op is the power at
// the searched optimum and P_4431 the power at Kleinrock's hop-count
// setting (4,4,3,1).  Expected shape (thesis): with strong inter-class
// interaction the hop-count rule is a poor estimate - P_op clearly
// exceeds P_4431 on every row, the gap widening at high load; for a
// given total load the power is largest when rates are balanced across
// the virtual channels.
#include <cstdio>

#include "util/table.h"
#include "windim/windim.h"

int main() {
  using namespace windim;
  const net::Topology topology = net::canada_topology();

  const double rows[][4] = {
      {6.0, 6.0, 6.0, 12.0},          // total 30
      {9.957, 4.419, 7.656, 7.968},   // total 30
      {17.61, 3.56, 3.0, 5.83},       // total 30
      {12.50, 12.50, 12.50, 25.0},    // total 62.5
      {21.24, 9.86, 18.85, 12.55},    // total 62.5
      {33.59, 1.70, 24.15, 3.06},     // total 62.5
      {20.0, 20.0, 20.0, 40.0},       // total 100
      {28.18, 38.02, 2.87, 30.93},    // total 100
  };

  util::TextTable table({"S1", "S2", "S3", "S4", "sum", "E_op", "P_op",
                         "P_4431", "P_op/P_4431"});

  for (const auto& row : rows) {
    const core::WindowProblem problem(
        topology,
        net::four_class_traffic(row[0], row[1], row[2], row[3]));
    const core::DimensionResult result = core::dimension_windows(problem);
    const core::Evaluation hop_rule = problem.evaluate({4, 4, 3, 1});

    table.begin_row()
        .add(row[0], 2)
        .add(row[1], 2)
        .add(row[2], 2)
        .add(row[3], 2)
        .add(row[0] + row[1] + row[2] + row[3], 1)
        .add_window(result.optimal_windows)
        .add(result.evaluation.power, 1)
        .add(hop_rule.power, 1)
        .add(result.evaluation.power / hop_rule.power, 2);
  }

  std::printf("Table 4.12 - 4-class network: WINDIM optimum vs Kleinrock "
              "hop-count windows (4,4,3,1)\n");
  std::printf("(thesis: P_op > P_4431 on every row; balanced rates "
              "maximize power at fixed total load)\n\n%s\n",
              table.render().c_str());
  return 0;
}
