// Thesis chapter 5 future work, implemented: dimensioning the
// ISARITHMIC (global) flow-control limit analytically.
//
// The thesis closes by urging "the dimensioning of end-to-end, local,
// and possibly, the isarithmic flow control windows".  The semiclosed
// machinery with a global population bound (thesis 3.3.3) is exactly
// the analytic model of an isarithmic permit pool over a loss network:
// sweep the pool size I, compute carried throughput / delay / power,
// and put the optimal global limit next to the optimal per-chain
// windows of equal total population.
//
// Expected: power is unimodal in the total limit under both loadings; a
// SMALL shared pool beats the equal-total per-chain split (permits
// statistically multiplex across classes), while past the optimum the
// per-chain windows dominate (they stop the over-admitted class from
// flooding the shared channels).
#include <cstdio>
#include <vector>

#include "exact/semiclosed.h"
#include "util/table.h"
#include "windim/windim.h"

namespace {

using namespace windim;

struct LossMetrics {
  double throughput = 0.0;
  double delay = 0.0;
  double power = 0.0;
};

/// Loss-model metrics for per-chain caps `windows` plus optional global
/// cap (negative = none).
LossMetrics loss_metrics(const core::WindowProblem& problem,
                         const std::vector<double>& rates,
                         const std::vector<int>& windows, int global_cap) {
  const qn::CyclicNetwork net = problem.network(windows);
  qn::NetworkModel model;
  for (const qn::Station& s : net.stations) model.add_station(s);
  std::vector<exact::SemiclosedChainSpec> specs;
  for (std::size_t r = 0; r < rates.size(); ++r) {
    qn::Chain chain;
    chain.type = qn::ChainType::kClosed;
    const auto& cyc = net.chains[r];
    for (std::size_t k = 0; k + 1 < cyc.route.size(); ++k) {
      chain.visits.push_back(
          qn::Visit{cyc.route[k], 1.0, cyc.service_times[k]});
    }
    model.add_chain(std::move(chain));
    specs.push_back(exact::SemiclosedChainSpec{rates[r], 0, windows[r]});
  }
  const exact::SemiclosedResult r = exact::solve_semiclosed(
      model, specs, exact::SemiclosedGlobalBound{0, global_cap});
  LossMetrics m;
  double customers = 0.0;
  for (std::size_t k = 0; k < rates.size(); ++k) {
    m.throughput += r.carried_throughput[k];
    customers += r.mean_population[k];
  }
  m.delay = customers / m.throughput;
  m.power = m.throughput / m.delay;
  return m;
}

}  // namespace

int main() {
  const net::Topology topology = net::canada_topology();

  for (const auto& [s1, s2] : {std::pair{25.0, 25.0}, std::pair{40.0, 10.0}}) {
    const auto classes = net::two_class_traffic(s1, s2);
    const core::WindowProblem problem(topology, classes);
    const std::vector<double> rates{s1, s2};

    std::printf("== S1=%.0f, S2=%.0f msg/s ==\n", s1, s2);
    util::TextTable table({"total limit", "isarithmic P", "windows split",
                           "per-chain P", "winner"});
    for (int total = 2; total <= 12; total += 2) {
      // Global pool of `total` permits; per-chain bounds loose.
      const LossMetrics global =
          loss_metrics(problem, rates, {total, total}, total);
      // Per-chain windows with the same total population, split by the
      // rate proportions (rounded).
      const int e1 = std::max(
          1, static_cast<int>(total * s1 / (s1 + s2) + 0.5));
      const int e2 = std::max(1, total - e1);
      const LossMetrics split =
          loss_metrics(problem, rates, {e1, e2}, -1);
      table.begin_row()
          .add(total)
          .add(global.power, 1)
          .add("(" + std::to_string(e1) + ", " + std::to_string(e2) + ")")
          .add(split.power, 1)
          .add(global.power > split.power ? "isarithmic" : "per-chain");
    }
    std::printf("%s\n", table.render().c_str());
  }

  std::printf(
      "(thesis ch.5 future work: analytic dimensioning of the isarithmic\n"
      " limit via the semiclosed machinery; small shared pools multiplex\n"
      " better, larger totals favour per-chain windows)\n");
  return 0;
}
