// Ablation A2: operations-count claim of thesis 4.2.
//
// Exact multichain analysis (convolution / exact MVA) costs on the order
// of prod_r (E_r + 1); the WINDIM heuristic on the order of sum_r E_r
// per sweep.  These google-benchmark timings show the exact solvers'
// runtime exploding with the window size and chain count while the
// heuristic stays nearly flat - the thesis's reason to exist.
#include <benchmark/benchmark.h>

#include "exact/convolution.h"
#include "mva/approx.h"
#include "mva/exact_multichain.h"
#include "net/examples.h"
#include "windim/problem.h"

namespace {

using namespace windim;

qn::NetworkModel two_class_model(int window) {
  const core::WindowProblem problem(net::canada_topology(),
                                    net::two_class_traffic(20.0, 20.0));
  return problem.network({window, window}).to_model();
}

qn::NetworkModel four_class_model(int window) {
  const core::WindowProblem problem(
      net::canada_topology(), net::four_class_traffic(6.0, 6.0, 6.0, 12.0));
  return problem.network({window, window, window, window}).to_model();
}

void BM_Heuristic2Class(benchmark::State& state) {
  const qn::NetworkModel m = two_class_model(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mva::solve_approx_mva(m));
  }
}
BENCHMARK(BM_Heuristic2Class)->Arg(2)->Arg(8)->Arg(32);

void BM_ExactMva2Class(benchmark::State& state) {
  const qn::NetworkModel m = two_class_model(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mva::solve_exact_multichain(m));
  }
}
BENCHMARK(BM_ExactMva2Class)->Arg(2)->Arg(8)->Arg(32);

void BM_Convolution2Class(benchmark::State& state) {
  const qn::NetworkModel m = two_class_model(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(exact::solve_convolution(m));
  }
}
BENCHMARK(BM_Convolution2Class)->Arg(2)->Arg(8)->Arg(32);

void BM_Heuristic4Class(benchmark::State& state) {
  const qn::NetworkModel m =
      four_class_model(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mva::solve_approx_mva(m));
  }
}
BENCHMARK(BM_Heuristic4Class)->Arg(2)->Arg(6)->Arg(10);

void BM_ExactMva4Class(benchmark::State& state) {
  const qn::NetworkModel m =
      four_class_model(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mva::solve_exact_multichain(m));
  }
}
// Lattice = (E+1)^4: keep E modest so the bench stays quick.
BENCHMARK(BM_ExactMva4Class)->Arg(2)->Arg(6)->Arg(10);

void BM_Convolution4Class(benchmark::State& state) {
  const qn::NetworkModel m =
      four_class_model(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(exact::solve_convolution(m));
  }
}
BENCHMARK(BM_Convolution4Class)->Arg(2)->Arg(6)->Arg(10);

}  // namespace

BENCHMARK_MAIN();
