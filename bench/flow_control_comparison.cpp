// Ablation A4: the chapter-2 flow-control taxonomy compared by
// simulation on the Fig 4.5 network.
//
// End-to-end windows (per virtual channel), local node-buffer limits
// (K_i, with hold-the-channel blocking), isarithmic permits (global),
// and combinations - measured by delivered throughput, in-network delay
// and power.  Expected (thesis 2.3): each control alone has a failure
// mode (local alone can deadlock; isarithmic alone cannot protect a
// single hot path; end-to-end alone cannot bound a node's buffer), and
// the end-to-end window dominates on the power metric, which is why the
// thesis dimensions it.
#include <cstdio>

#include "net/examples.h"
#include "sim/msgnet_sim.h"
#include "util/table.h"

int main() {
  using namespace windim;
  const net::Topology topology = net::canada_topology();
  const double load = 45.0;  // msg/s per class: well into saturation
  const auto classes = net::two_class_traffic(load, load);

  struct Scenario {
    const char* name;
    sim::MsgNetOptions options;
  };

  sim::MsgNetOptions base;
  base.sim_time = 600.0;
  base.warmup = 60.0;
  base.seed = 3;

  std::vector<Scenario> scenarios;
  scenarios.push_back({"uncontrolled (infinite buffers)", base});
  {
    sim::MsgNetOptions o = base;
    o.windows = {3, 3};
    scenarios.push_back({"end-to-end windows (3,3)", o});
  }
  {
    sim::MsgNetOptions o = base;
    o.node_buffer_limit.assign(6, 6);
    scenarios.push_back({"local buffers K=6 only", o});
  }
  {
    sim::MsgNetOptions o = base;
    o.isarithmic_permits = 6;
    scenarios.push_back({"isarithmic permits = 6", o});
  }
  {
    sim::MsgNetOptions o = base;
    o.windows = {3, 3};
    o.node_buffer_limit.assign(6, 6);
    scenarios.push_back({"windows + local buffers", o});
  }
  {
    sim::MsgNetOptions o = base;
    o.windows = {3, 3};
    o.node_buffer_limit.assign(6, 6);
    o.isarithmic_permits = 6;
    scenarios.push_back({"all three controls", o});
  }

  util::TextTable table({"scenario", "delivered (msg/s)", "net delay (s)",
                         "power", "mean in-network"});
  for (const Scenario& s : scenarios) {
    const sim::MsgNetResult r =
        sim::simulate_msgnet(topology, classes, s.options);
    table.begin_row()
        .add(s.name)
        .add(r.delivered_rate, 1)
        .add(r.mean_network_delay, 4)
        .add(r.power, 1)
        .add(r.mean_in_network, 2);
  }

  std::printf("Ablation A4 - flow-control taxonomy at overload "
              "(S1=S2=%.0f msg/s, Fig 4.5 network)\n",
              load);
  std::printf("(expected: uncontrolled = high delay/low power; end-to-end "
              "windows give the best power; local-only degrades via "
              "blocking)\n\n%s\n",
              table.render().c_str());
  return 0;
}
