// Ablation A9: closing the planning loop - capacity assignment plus
// window dimensioning.
//
// For a fixed budget, compare Kleinrock's square-root capacity
// assignment against the equal-utilization (proportional) baseline, each
// followed by WINDIM on the resulting network.  Expected: sqrt wins on
// the predicted open-network delay (its optimality criterion) and
// carries that advantage through to the dimensioned closed-network
// power; both improve monotonically with budget.
#include <cstdio>

#include "util/table.h"
#include "windim/windim.h"

int main() {
  using namespace windim;
  const net::Topology base = net::canada_topology();
  const auto classes = net::two_class_traffic(25.0, 15.0);

  util::TextTable table({"budget (kbit/s)", "rule", "open delay (ms)",
                         "E_opt", "dimensioned power"});

  for (double budget : {220.0, 300.0, 450.0}) {
    for (int rule = 0; rule < 2; ++rule) {
      const core::CapacityAssignment assignment =
          rule == 0
              ? core::assign_capacities_sqrt(base, classes, budget)
              : core::assign_capacities_proportional(base, classes, budget);
      const net::Topology upgraded =
          core::with_capacities(base, assignment.capacity_kbps);
      const core::WindowProblem problem(upgraded, classes);
      const core::DimensionResult r = core::dimension_windows(problem);
      table.begin_row()
          .add(budget, 0)
          .add(rule == 0 ? "sqrt" : "proportional")
          .add(assignment.mean_delay * 1000.0, 2)
          .add_window(r.optimal_windows)
          .add(r.evaluation.power, 1);
    }
  }

  std::printf("Ablation A9 - capacity assignment + window dimensioning "
              "(S = 25/15 msg/s, Fig 4.5 topology)\n");
  std::printf("(expected: sqrt <= proportional on open delay; power grows "
              "with budget)\n\n%s\n",
              table.render().c_str());
  return 0;
}
