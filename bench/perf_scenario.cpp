// Acceptance benchmark for the dynamic-traffic scenario matrix (PR 9):
// the full policies x scenarios grid over the 2-class Canadian fixture,
// plus the determinism and reproducibility contracts that make the
// scorecard usable as a regression fixture.
//
// Measured:
//   - grid wall time (median over --reps, trend inspection only —
//     machine-bound, no cross-machine check);
//   - cell count of the full default grid;
//   - byte-identity of the rendered scorecard across worker counts
//     (1 vs 8);
//   - scorecard reproducibility from the recorded base seed;
//   - the stationary/static cell's simulated power as a fraction of the
//     analytic optimum (the oracle cell of the matrix).
//
// Gates (exit 1 on violation):
//   - the default grid carries every registered policy and scenario;
//   - scorecards are byte-identical across worker counts;
//   - a rerun from the same seed reproduces the scorecard, a different
//     seed does not;
//   - the stationary/static power lands within 50% of the analytic
//     optimum (the tight envelope lives in sim_vs_exact_test.cc).
//
// --json=PATH writes the measurements with scenario_-prefixed keys so
// the result merges into the shared bench/baselines/BENCH_perf.json;
// --check compares against --baseline-in via perf_scenario_checks()
// (scale-free gates only).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "baseline.h"
#include "control/matrix.h"
#include "control/registry.h"
#include "control/scenario.h"
#include "net/examples.h"
#include "obs/json.h"

using namespace windim;

namespace {

control::MatrixOptions grid_options(int jobs) {
  control::MatrixOptions options;
  options.sim_time = 120.0;
  options.warmup = 12.0;
  options.seed = 29;
  options.jobs = jobs;
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  int reps = 3;
  std::string json_path;
  std::string baseline_in;
  std::string baseline_out;
  bool check = false;
  double tolerance_pct = 25.0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--reps=", 7) == 0) {
      reps = std::atoi(arg + 7);
      if (reps < 1) reps = 1;
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      json_path = arg + 7;
    } else if (std::strncmp(arg, "--baseline-in=", 14) == 0) {
      baseline_in = arg + 14;
    } else if (std::strncmp(arg, "--baseline-out=", 15) == 0) {
      baseline_out = arg + 15;
    } else if (std::strcmp(arg, "--check") == 0) {
      check = true;
    } else if (std::strncmp(arg, "--tolerance-pct=", 16) == 0) {
      tolerance_pct = std::atof(arg + 16);
    } else {
      std::fprintf(
          stderr,
          "usage: bench_perf_scenario [--reps=N] [--json=PATH]\n"
          "           [--baseline-in=PATH] [--baseline-out=PATH] [--check]\n"
          "           [--tolerance-pct=P]\n"
          "--check compares the fresh measurements against the\n"
          "--baseline-in JSON (scale-free scenario_ gates) and fails on\n"
          "any regression beyond the tolerance (default 25%%).\n");
      return 2;
    }
  }
  if (check && baseline_in.empty()) {
    std::fprintf(stderr, "error: --check requires --baseline-in=PATH\n");
    return 2;
  }

  const net::Topology topo = net::canada_topology();
  const auto classes = net::two_class_traffic(25.0, 25.0);

  // Timed full grids on the worker pool (the production configuration).
  std::vector<double> grid_ms;
  control::MatrixResult matrix;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    matrix = control::run_matrix(topo, classes, grid_options(8));
    const auto t1 = std::chrono::steady_clock::now();
    grid_ms.push_back(
        std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  std::sort(grid_ms.begin(), grid_ms.end());
  const double median_grid_ms = grid_ms[grid_ms.size() / 2];

  const std::size_t expected_cells =
      control::policy_names().size() * control::scenario_names().size();
  const bool full_grid = matrix.cells.size() == expected_cells;

  // Determinism: the scorecard must be byte-identical whether the cells
  // ran serially or on 8 workers.
  const std::string parallel_card = control::render_scorecard(matrix);
  const std::string serial_card = control::render_scorecard(
      control::run_matrix(topo, classes, grid_options(1)));
  const bool deterministic = parallel_card == serial_card;

  // Reproducibility: the same base seed rebuilds the scorecard; a
  // different one must not.
  const bool reproducible =
      control::render_scorecard(
          control::run_matrix(topo, classes, grid_options(8))) ==
      parallel_card;
  control::MatrixOptions reseeded = grid_options(8);
  reseeded.seed = 30;
  const bool seed_sensitive =
      control::render_scorecard(
          control::run_matrix(topo, classes, reseeded)) != parallel_card;

  // The oracle cell: stationary traffic under the static optimum must
  // sit near the analytic power the matrix dimensioned against.
  double stationary_power_ratio = 0.0;
  for (std::size_t s = 0; s < matrix.scenarios.size(); ++s) {
    for (std::size_t p = 0; p < matrix.policies.size(); ++p) {
      if (matrix.scenarios[s] == "stationary" &&
          matrix.policies[p] == "static") {
        const control::MatrixCell& cell =
            matrix.cells[s * matrix.policies.size() + p];
        stationary_power_ratio =
            matrix.static_power > 0.0 ? cell.power / matrix.static_power
                                      : 0.0;
      }
    }
  }
  const bool oracle_close =
      std::abs(stationary_power_ratio - 1.0) <= 0.5;

  std::printf(
      "scenario matrix: canada_topology/two_class_traffic(25,25), %d reps\n"
      "  grid       %10.3f ms (median), %zu cells (%zu policies x %zu "
      "scenarios)\n"
      "  identity   deterministic=%s reproducible=%s seed_sensitive=%s\n"
      "  oracle     stationary/static power = %.3f x analytic optimum\n",
      reps, median_grid_ms, matrix.cells.size(), matrix.policies.size(),
      matrix.scenarios.size(), deterministic ? "yes" : "NO",
      reproducible ? "yes" : "NO", seed_sensitive ? "yes" : "NO",
      stationary_power_ratio);

  bool pass = true;
  if (!full_grid) {
    std::printf("FAIL: the default grid does not cover the registries\n");
    pass = false;
  }
  if (!deterministic) {
    std::printf("FAIL: scorecard differs across worker counts\n");
    pass = false;
  }
  if (!reproducible || !seed_sensitive) {
    std::printf("FAIL: scorecard is not a pure function of the seed\n");
    pass = false;
  }
  if (!oracle_close) {
    std::printf("FAIL: stationary/static cell far from the analytic "
                "optimum\n");
    pass = false;
  }
  if (pass) std::printf("PASS\n");

  obs::JsonWriter w;
  {
    w.begin_object();
    w.key("benchmark");
    w.value("perf_scenario");
    w.key("scenario_reps");
    w.value(reps);
    w.key("scenario_grid_ms");
    w.value(median_grid_ms);
    w.key("scenario_cells");
    w.value(static_cast<std::uint64_t>(matrix.cells.size()));
    w.key("scenario_deterministic");
    w.value(deterministic);
    w.key("scenario_reproducible");
    w.value(reproducible && seed_sensitive);
    w.key("scenario_stationary_power_ratio");
    w.value(stationary_power_ratio);
    w.key("scenario_pass");
    w.value(pass);
    w.end_object();
  }
  const std::string json = w.str();

  if (!json_path.empty() && !bench::save_file(json_path, json)) {
    std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
    return 1;
  }
  if (!baseline_out.empty() && !bench::save_file(baseline_out, json)) {
    std::fprintf(stderr, "error: cannot write %s\n", baseline_out.c_str());
    return 1;
  }

  if (check) {
    const std::optional<std::string> baseline = bench::load_file(baseline_in);
    if (!baseline.has_value()) {
      std::fprintf(stderr, "error: cannot read baseline %s\n",
                   baseline_in.c_str());
      return 1;
    }
    const bench::BaselineReport report = bench::compare_baseline(
        *baseline, json, bench::perf_scenario_checks(tolerance_pct));
    std::printf("\nbaseline check vs %s (tolerance %.0f%%):\n%s",
                baseline_in.c_str(), tolerance_pct, report.render().c_str());
    if (!report.ok()) pass = false;
  }
  return pass ? 0 : 1;
}
