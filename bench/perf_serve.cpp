// Acceptance benchmark for the `windim serve` daemon: drive one Server
// with a mixed NDJSON request stream — 2-class and 4-class chains plus
// a long cyclic (24-hop forward + reverse, the large-cyclic fixture
// shape) topology, evaluates interleaved with dimension searches and
// periodic stats probes — from several client threads, exactly the way
// concurrent connections batch onto the worker pool in production.
//
// Measured:
//   - sustained requests/second (median over --reps timed passes after
//     one warm-up pass that fills the model cache);
//   - per-request latency percentiles (p50 / p99, microseconds,
//     aggregated over every timed pass);
//   - cache hit rate and the server's error counter.
//
// Gates (exit 1 on violation):
//   - throughput >= 1000 req/s on the mixed stream;
//   - zero error replies (every request in the stream is well-formed);
//   - the live observability plane (sliding windows, trace buffer,
//     flight digest — measured directly by live_plane_cost_ns) costs
//     < 2% of the per-request CPU time.
//
// --json=PATH writes the measurements with serve_-prefixed keys so the
// result merges into the shared bench/baselines/BENCH_perf.json;
// --check compares against --baseline-in via perf_serve_checks()
// (scale-free gates only: pass, error_free, cache hit rate).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "baseline.h"
#include "obs/json.h"
#include "obs/window.h"
#include "serve/flight.h"
#include "serve/server.h"

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  windim::obs::JsonWriter::append_escaped(out, s);
  return out;
}

/// A line topology of `channels` hops with a forward class over the
/// full path and a reverse class back over the same hops — the closed
/// cycle every request stream below exercises at three sizes.
std::string chain_spec(int channels, double rate) {
  std::string spec;
  for (int i = 0; i <= channels; ++i) {
    spec += "node N" + std::to_string(i) + "\n";
  }
  for (int i = 0; i < channels; ++i) {
    spec += "channel N" + std::to_string(i) + " N" + std::to_string(i + 1) +
            " 50\n";
  }
  std::string path;
  for (int i = 0; i <= channels; ++i) path += " N" + std::to_string(i);
  spec += "class fwd rate " + std::to_string(rate) + " path" + path + "\n";
  std::string reverse;
  for (int i = channels; i >= 0; --i) reverse += " N" + std::to_string(i);
  spec += "class back rate " + std::to_string(rate / 2.0) + " path" +
          reverse + "\n";
  return spec;
}

/// Four classes over a 4-hop chain: both directions of the full path
/// plus both directions of the inner 2-hop segment.
std::string four_class_spec() {
  std::string spec;
  for (int i = 0; i <= 4; ++i) spec += "node N" + std::to_string(i) + "\n";
  for (int i = 0; i < 4; ++i) {
    spec += "channel N" + std::to_string(i) + " N" + std::to_string(i + 1) +
            " 60\n";
  }
  spec += "class c0 rate 12 path N0 N1 N2 N3 N4\n";
  spec += "class c1 rate 8 path N4 N3 N2 N1 N0\n";
  spec += "class c2 rate 10 path N1 N2 N3\n";
  spec += "class c3 rate 6 path N3 N2 N1\n";
  return spec;
}

/// The mixed request stream, ids 0..n-1: per 10-request block, one
/// dimension search, one large-cyclic evaluate, one stats probe, and
/// seven small evaluates alternating the 2- and 4-class models with
/// varying windows (so the cache serves four distinct topologies).
std::vector<std::string> request_lines(int n) {
  const std::string s2a = json_escape(chain_spec(2, 20.0));
  const std::string s2b = json_escape(chain_spec(3, 15.0));
  const std::string s4 = json_escape(four_class_spec());
  const std::string big = json_escape(chain_spec(24, 2.0));
  std::vector<std::string> lines;
  lines.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const std::string id = ",\"id\":" + std::to_string(i) + "}";
    switch (i % 10) {
      case 0:
        lines.push_back("{\"op\":\"dimension\",\"spec\":\"" + s2a +
                        "\",\"max_window\":6" + id);
        break;
      case 5:
        lines.push_back("{\"op\":\"evaluate\",\"spec\":\"" + big +
                        "\",\"windows\":[" + std::to_string(2 + i % 3) +
                        ",2]" + id);
        break;
      case 9:
        lines.push_back("{\"op\":\"stats\"" + id);
        break;
      default:
        if (i % 2 == 0) {
          lines.push_back("{\"op\":\"evaluate\",\"spec\":\"" + s4 +
                          "\",\"windows\":[" + std::to_string(1 + i % 4) +
                          ",2,1,3]" + id);
        } else {
          lines.push_back("{\"op\":\"evaluate\",\"spec\":\"" +
                          (i % 4 == 1 ? s2a : s2b) + "\",\"windows\":[" +
                          std::to_string(1 + i % 4) + "," +
                          std::to_string(1 + i % 2) + "]" + id);
        }
        break;
    }
  }
  return lines;
}

/// One pass of the stream: `clients` threads issue disjoint strided
/// slices against the shared server, recording per-request latencies.
/// Returns the pass wall time in seconds.
double run_pass(windim::serve::Server& server,
                const std::vector<std::string>& lines, int clients,
                std::vector<double>* latencies_us) {
  std::vector<std::vector<double>> per_client(
      static_cast<std::size_t>(clients));
  const auto t0 = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([c, clients, &lines, &server, &per_client]() {
        std::vector<double>& lat = per_client[static_cast<std::size_t>(c)];
        for (std::size_t i = static_cast<std::size_t>(c); i < lines.size();
             i += static_cast<std::size_t>(clients)) {
          const auto r0 = std::chrono::steady_clock::now();
          const windim::serve::Server::Reply reply =
              server.handle_line(lines[i]);
          const auto r1 = std::chrono::steady_clock::now();
          if (reply.json.empty()) std::abort();  // contract: never empty
          lat.push_back(
              std::chrono::duration<double, std::micro>(r1 - r0).count());
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }
  const auto t1 = std::chrono::steady_clock::now();
  if (latencies_us != nullptr) {
    for (const std::vector<double>& lat : per_client) {
      latencies_us->insert(latencies_us->end(), lat.begin(), lat.end());
    }
  }
  return std::chrono::duration<double>(t1 - t0).count();
}

double percentile(std::vector<double>& sorted_in_place, double p) {
  if (sorted_in_place.empty()) return 0.0;
  std::sort(sorted_in_place.begin(), sorted_in_place.end());
  const double rank =
      p * static_cast<double>(sorted_in_place.size() - 1) / 100.0;
  const std::size_t idx = static_cast<std::size_t>(std::llround(rank));
  return sorted_in_place[std::min(idx, sorted_in_place.size() - 1)];
}

/// Direct measurement of the live observability plane's per-request
/// work: the sliding-window updates (per-op + aggregate counter and
/// histogram), the span clock reads, the trace-buffer push (with the
/// strings and span vector a real request carries) and the flight
/// digest.  Measuring the instrumentation itself — instead of
/// differencing two noisy end-to-end timings — is what makes the <2%
/// gate stable; perf_dimension's guard_cost_ns() sets the precedent.
double live_plane_cost_ns() {
  windim::obs::WindowClock* clock = &windim::obs::steady_window_clock();
  windim::obs::WindowCounter op_requests(clock);
  windim::obs::WindowCounter all_requests(clock);
  windim::obs::WindowHistogram op_latency(clock);
  windim::obs::WindowHistogram all_latency(clock);
  windim::serve::TraceBuffer traces(256);
  windim::serve::FlightRecorder flight(512);

  constexpr int kOps = 1 << 15;
  std::uint64_t sink = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kOps; ++i) {
    // Span timing: four stages, a start and an end read each.
    for (int r = 0; r < 8; ++r) sink += clock->now_us();
    windim::serve::RequestTrace trace;
    trace.seq = static_cast<std::uint64_t>(i);
    trace.id = "42";
    trace.op = "evaluate";
    trace.outcome = "ok";
    trace.topology_hash = sink;
    trace.spans = {{"parse", 0, 1},
                   {"cache_lookup", 1, 1},
                   {"workspace_lease", 2, 1},
                   {"solve", 3, 1}};
    windim::serve::RequestDigest digest;
    digest.seq = trace.seq;
    digest.op = trace.op;
    digest.id = trace.id;
    digest.outcome = trace.outcome;
    digest.latency_us = 50.0;
    op_requests.add();
    all_requests.add();
    op_latency.observe(50.0);
    all_latency.observe(50.0);
    traces.push(std::move(trace));
    flight.record(std::move(digest));
  }
  const auto t1 = std::chrono::steady_clock::now();
  if (sink == 42) std::abort();  // keep the clock reads observable
  return std::chrono::duration<double, std::nano>(t1 - t0).count() / kOps;
}

}  // namespace

int main(int argc, char** argv) {
  int requests = 600;
  int reps = 5;
  int clients = 4;
  std::string json_path;
  std::string baseline_in;
  std::string baseline_out;
  bool check = false;
  double tolerance_pct = 25.0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--requests=", 11) == 0) {
      requests = std::atoi(arg + 11);
      if (requests < 10) requests = 10;
    } else if (std::strncmp(arg, "--reps=", 7) == 0) {
      reps = std::atoi(arg + 7);
      if (reps < 1) reps = 1;
    } else if (std::strncmp(arg, "--clients=", 10) == 0) {
      clients = std::atoi(arg + 10);
      if (clients < 1) clients = 1;
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      json_path = arg + 7;
    } else if (std::strncmp(arg, "--baseline-in=", 14) == 0) {
      baseline_in = arg + 14;
    } else if (std::strncmp(arg, "--baseline-out=", 15) == 0) {
      baseline_out = arg + 15;
    } else if (std::strcmp(arg, "--check") == 0) {
      check = true;
    } else if (std::strncmp(arg, "--tolerance-pct=", 16) == 0) {
      tolerance_pct = std::atof(arg + 16);
    } else {
      std::fprintf(
          stderr,
          "usage: bench_perf_serve [--requests=N] [--reps=N] [--clients=N]\n"
          "           [--json=PATH] [--baseline-in=PATH]\n"
          "           [--baseline-out=PATH] [--check] [--tolerance-pct=P]\n"
          "--check compares the fresh measurements against the\n"
          "--baseline-in JSON (scale-free serve_ gates) and fails on any\n"
          "regression beyond the tolerance (default 25%%).\n");
      return 2;
    }
  }
  if (check && baseline_in.empty()) {
    std::fprintf(stderr, "error: --check requires --baseline-in=PATH\n");
    return 2;
  }

  const std::vector<std::string> lines = request_lines(requests);

  windim::serve::ServeOptions options;
  options.threads = clients;
  options.enable_metrics = true;
  windim::serve::Server server(options);

  // Warm-up pass: compiles all four topologies into the cache and grows
  // the workspace pool to its high-water mark, so the timed passes see
  // the steady daemon state.
  (void)run_pass(server, lines, clients, nullptr);

  std::vector<double> pass_seconds;
  std::vector<double> latencies_us;
  latencies_us.reserve(static_cast<std::size_t>(requests) *
                       static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    pass_seconds.push_back(run_pass(server, lines, clients, &latencies_us));
  }
  std::sort(pass_seconds.begin(), pass_seconds.end());
  const double median_seconds = pass_seconds[pass_seconds.size() / 2];
  const double requests_per_sec =
      static_cast<double>(requests) / median_seconds;

  // Live-plane cost as a fraction of the per-request CPU time the
  // stream actually consumed (clients threads each busy for the pass).
  const double live_ns = live_plane_cost_ns();
  const double request_cpu_ns = static_cast<double>(clients) * 1e9 /
                                std::max(requests_per_sec, 1.0);
  const double window_overhead_pct = 100.0 * live_ns / request_cpu_ns;
  const double p50_us = percentile(latencies_us, 50.0);
  const double p99_us = percentile(latencies_us, 99.0);

  const windim::serve::ServeCounters counters = server.counters();
  const windim::serve::CacheStats cache = server.cache_stats();
  const double hit_rate =
      cache.hits + cache.misses > 0
          ? static_cast<double>(cache.hits) /
                static_cast<double>(cache.hits + cache.misses)
          : 0.0;
  const bool error_free = counters.errors == 0;

  std::printf(
      "mixed serve stream: %d requests x %d reps, %d client threads\n"
      "  throughput %10.1f req/s   (median pass %.3f ms)\n"
      "  live plane %10.3f %% overhead (%.0f ns/request of %.0f ns "
      "request CPU)\n"
      "  latency    p50 %8.1f us   p99 %8.1f us\n"
      "  cache      %llu hits / %llu misses (hit rate %.4f), %llu entries\n"
      "  counters   %llu requests, %llu ok, %llu errors\n",
      requests, reps, clients, requests_per_sec, median_seconds * 1e3,
      window_overhead_pct, live_ns, request_cpu_ns,
      p50_us, p99_us, static_cast<unsigned long long>(cache.hits),
      static_cast<unsigned long long>(cache.misses), hit_rate,
      static_cast<unsigned long long>(cache.entries),
      static_cast<unsigned long long>(counters.requests),
      static_cast<unsigned long long>(counters.ok),
      static_cast<unsigned long long>(counters.errors));

  bool pass = true;
  if (requests_per_sec < 1000.0) {
    std::printf("FAIL: throughput below 1000 req/s\n");
    pass = false;
  }
  if (!error_free) {
    std::printf("FAIL: the well-formed stream produced error replies\n");
    pass = false;
  }
  if (window_overhead_pct >= 2.0) {
    std::printf("FAIL: live plane costs %.3f%% of serve throughput "
                "(budget < 2%%)\n",
                window_overhead_pct);
    pass = false;
  }
  if (pass) std::printf("PASS\n");

  windim::obs::JsonWriter w;
  {
    w.begin_object();
    w.key("benchmark");
    w.value("perf_serve");
    w.key("serve_requests");
    w.value(requests);
    w.key("serve_reps");
    w.value(reps);
    w.key("serve_clients");
    w.value(clients);
    w.key("serve_requests_per_sec");
    w.value(requests_per_sec);
    w.key("serve_window_overhead_pct");
    w.value(window_overhead_pct);
    w.key("serve_p50_us");
    w.value(p50_us);
    w.key("serve_p99_us");
    w.value(p99_us);
    w.key("serve_cache_hit_rate");
    w.value(hit_rate);
    w.key("serve_cache_entries");
    w.value(static_cast<double>(cache.entries));
    w.key("serve_errors");
    w.value(static_cast<double>(counters.errors));
    w.key("serve_error_free");
    w.value(error_free);
    w.key("serve_pass");
    w.value(pass);
    w.end_object();
  }
  const std::string json = w.str();

  if (!json_path.empty() && !windim::bench::save_file(json_path, json)) {
    std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
    return 1;
  }
  if (!baseline_out.empty() &&
      !windim::bench::save_file(baseline_out, json)) {
    std::fprintf(stderr, "error: cannot write %s\n", baseline_out.c_str());
    return 1;
  }

  if (check) {
    const std::optional<std::string> baseline =
        windim::bench::load_file(baseline_in);
    if (!baseline.has_value()) {
      std::fprintf(stderr, "error: cannot read baseline %s\n",
                   baseline_in.c_str());
      return 1;
    }
    const windim::bench::BaselineReport report =
        windim::bench::compare_baseline(
            *baseline, json, windim::bench::perf_serve_checks(tolerance_pct));
    std::printf("\nbaseline check vs %s (tolerance %.0f%%):\n%s",
                baseline_in.c_str(), tolerance_pct, report.render().c_str());
    if (!report.ok()) pass = false;
  }
  return pass ? 0 : 1;
}
