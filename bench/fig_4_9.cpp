// Reproduces thesis Fig 4.9: network power versus class traffic arrival
// rate (S1 = S2) for fixed symmetric window settings E = (e, e).
//
// Expected shape (thesis): for large windows (e >= 5) the power rises to
// a sharp maximum at light load, then *degrades* to a plateau as load
// grows; for small windows the curve is monotone increasing to its
// plateau; large windows are dominated at almost any load.
#include <cstdio>
#include <vector>

#include "util/table.h"
#include "windim/windim.h"

int main() {
  using namespace windim;
  const net::Topology topology = net::canada_topology();

  const std::vector<double> rates = {2.5, 5.0,  7.5,  10.0, 12.5, 15.0,
                                     20.0, 25.0, 30.0, 40.0, 50.0, 75.0,
                                     100.0};
  const std::vector<int> windows = {1, 2, 3, 4, 5, 6, 7};

  std::vector<std::string> header{"S1=S2"};
  for (int e : windows) {
    header.push_back("P@E=(" + std::to_string(e) + "," + std::to_string(e) +
                     ")");
  }
  util::TextTable table(header);

  for (double s : rates) {
    const core::WindowProblem problem(topology,
                                      net::two_class_traffic(s, s));
    table.begin_row().add(s, 1);
    for (int e : windows) {
      table.add(problem.evaluate({e, e}).power, 1);
    }
  }

  std::printf("Fig 4.9 - network power vs class arrival rate for fixed "
              "windows (series = E)\n");
  std::printf("(thesis: small windows rise monotonically to a plateau; "
              "large windows peak early then degrade and stay "
              "dominated)\n\n%s\n",
              table.render().c_str());

  // Emit the same data as CSV for plotting.
  std::printf("CSV:\n%s", table.render_csv().c_str());
  return 0;
}
