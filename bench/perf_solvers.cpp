// P1: microbenchmarks of the solver kernels (google-benchmark).
//
// Tracks the cost of the primitives everything else is built from:
// Buzen convolution, single-chain MVA, the full WINDIM dimensioning
// run, the brute-force product form (for scale), the CTMC oracle — and
// a registry sweep that times every solver::Solver through the uniform
// CompiledModel/Workspace interface (registered dynamically from
// SolverRegistry, so new solvers get a benchmark for free).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "exact/buzen.h"
#include "obs/metrics.h"
#include "exact/product_form.h"
#include "markov/closed_ctmc.h"
#include "mva/approx.h"
#include "mva/single_chain.h"
#include "net/examples.h"
#include "search/pattern_search.h"
#include "solver/registry.h"
#include "solver/workspace.h"
#include "windim/windim.h"

namespace {

using namespace windim;

qn::Station fcfs(const std::string& name) {
  qn::Station s;
  s.name = name;
  s.discipline = qn::Discipline::kFcfs;
  return s;
}

qn::NetworkModel single_chain_cycle(int stations, int population) {
  qn::NetworkModel m;
  qn::Chain c;
  c.type = qn::ChainType::kClosed;
  c.population = population;
  for (int n = 0; n < stations; ++n) {
    const int idx = m.add_station(fcfs("q" + std::to_string(n)));
    c.visits.push_back({idx, 1.0, 0.02 + 0.01 * (n % 5)});
  }
  m.add_chain(std::move(c));
  return m;
}

void BM_BuzenConvolution(benchmark::State& state) {
  const qn::NetworkModel m = single_chain_cycle(
      static_cast<int>(state.range(0)), static_cast<int>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(exact::solve_buzen(m));
  }
}
BENCHMARK(BM_BuzenConvolution)->Args({5, 10})->Args({10, 50})->Args({20, 100});

void BM_BuzenLogDomain(benchmark::State& state) {
  const qn::NetworkModel m = single_chain_cycle(
      static_cast<int>(state.range(0)), static_cast<int>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(exact::solve_buzen_log(m));
  }
}
BENCHMARK(BM_BuzenLogDomain)->Args({5, 10})->Args({10, 50});

void BM_SingleChainMva(benchmark::State& state) {
  const qn::NetworkModel m = single_chain_cycle(
      static_cast<int>(state.range(0)), static_cast<int>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mva::solve_single_chain(m));
  }
}
BENCHMARK(BM_SingleChainMva)->Args({5, 10})->Args({10, 50})->Args({20, 100});

void BM_ProductFormBruteForce(benchmark::State& state) {
  const qn::NetworkModel m =
      single_chain_cycle(5, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(exact::solve_product_form(m));
  }
}
BENCHMARK(BM_ProductFormBruteForce)->Arg(6)->Arg(10);

void BM_CtmcOracle(benchmark::State& state) {
  qn::CyclicNetwork net;
  net.stations = {fcfs("a"), fcfs("b"), fcfs("c")};
  net.chains = {{"c1", {0, 1}, {0.08, 0.05}, static_cast<int>(state.range(0))},
                {"c2", {1, 2}, {0.05, 0.11}, static_cast<int>(state.range(0))}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(markov::solve_closed_ctmc(net));
  }
}
BENCHMARK(BM_CtmcOracle)->Arg(3)->Arg(6);

void BM_PowerEvaluationHeuristic(benchmark::State& state) {
  const core::WindowProblem problem(net::canada_topology(),
                                    net::two_class_traffic(20.0, 20.0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(problem.evaluate({4, 4}));
  }
}
BENCHMARK(BM_PowerEvaluationHeuristic);

void BM_PowerEvaluationLegacyRebuild(benchmark::State& state) {
  // The pre-CompiledModel per-evaluation cost: copy the cyclic network,
  // build a NetworkModel and run the heap-allocating legacy heuristic.
  // Compare against BM_PowerEvaluationHeuristic (compiled + arena) for
  // the per-evaluation win of compile-once/solve-many.
  const core::WindowProblem problem(net::canada_topology(),
                                    net::two_class_traffic(20.0, 20.0));
  for (auto _ : state) {
    const qn::NetworkModel m = problem.network({4, 4}).to_model();
    benchmark::DoNotOptimize(mva::solve_approx_mva(m));
  }
}
BENCHMARK(BM_PowerEvaluationLegacyRebuild);

void BM_FullWindimTwoClass(benchmark::State& state) {
  const core::WindowProblem problem(net::canada_topology(),
                                    net::two_class_traffic(20.0, 20.0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::dimension_windows(problem));
  }
}
BENCHMARK(BM_FullWindimTwoClass);

void BM_FullWindimFourClass(benchmark::State& state) {
  const core::WindowProblem problem(
      net::canada_topology(), net::four_class_traffic(6.0, 6.0, 6.0, 12.0));
  // range(0): worker threads; range(1): warm start on/off.  (1, 0) is the
  // pre-engine serial cold-start baseline; see also bench_perf_dimension
  // for the headline comparison.
  core::DimensionOptions options;
  options.threads = static_cast<int>(state.range(0));
  options.warm_start = state.range(1) != 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::dimension_windows(problem, options));
  }
}
BENCHMARK(BM_FullWindimFourClass)->Args({1, 0})->Args({1, 1})->Args({4, 1});

// Times `Solver::solve_profiled` on a warm workspace: the steady-state
// cost a dimensioning run pays per evaluation (arena already at its
// high-water mark, zero heap allocations).  With --metrics-out the
// global registry is enabled, so the sweep doubles as a profiling-hook
// exerciser and the per-solver counters land in the exported snapshot.
void BM_RegistrySolver(benchmark::State& state, const solver::Solver* s,
                       const qn::CompiledModel* model,
                       solver::PopulationVector population) {
  solver::Workspace ws;
  (void)s->solve_profiled(*model, population, ws);  // warm the arena
  for (auto _ : state) {
    benchmark::DoNotOptimize(s->solve_profiled(*model, population, ws));
  }
}

// One benchmark per registry solver, on the fixture its traits accept:
// single-chain solvers get a 10-station cycle at population 20, the
// rest get the two-class thesis network at windows (4,4) — the
// semiclosed view for semiclosed_view solvers.  Solvers that reject
// their fixture outright (runtime_error on the probe) are skipped.
void RegisterRegistrySolverBenchmarks() {
  static const core::WindowProblem problem(net::canada_topology(),
                                           net::two_class_traffic(20.0, 20.0));
  static const qn::CompiledModel single =
      qn::CompiledModel::compile(single_chain_cycle(10, 20));
  for (const solver::Solver* s : solver::SolverRegistry::instance().solvers()) {
    const solver::Traits traits = s->traits();
    const qn::CompiledModel* model =
        traits.requires_single_chain ? &single
        : traits.semiclosed_view     ? &problem.compiled_semiclosed()
                                     : &problem.compiled();
    solver::PopulationVector population =
        traits.requires_single_chain ? solver::PopulationVector{20}
                                     : solver::PopulationVector{4, 4};
    try {
      solver::Workspace probe;
      (void)s->solve(*model, population, probe);
    } catch (const std::exception&) {
      continue;
    }
    benchmark::RegisterBenchmark(
        ("BM_RegistrySolver/" + std::string(s->name())).c_str(),
        BM_RegistrySolver, s, model, std::move(population));
  }
}

void BM_PatternSearchQuadratic(benchmark::State& state) {
  const search::Objective f = [](const search::Point& p) {
    double v = 0.0;
    for (std::size_t i = 0; i < p.size(); ++i) {
      const double d = p[i] - 17.0;
      v += d * d;
    }
    return v;
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        search::pattern_search(f, search::Point(4, 0)));
  }
}
BENCHMARK(BM_PatternSearchQuadratic);

}  // namespace

// Custom main (vs BENCHMARK_MAIN): the registry sweep registers its
// benchmarks at runtime, one per SolverRegistry entry.  --metrics-out
// is ours, not google-benchmark's: strip it from argv before
// Initialize, enable the global registry for the run, and write the
// merged snapshot as JSON afterwards.
int main(int argc, char** argv) {
  std::string metrics_out;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--metrics-out=", 14) == 0) {
      metrics_out = argv[i] + 14;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;

  RegisterRegistrySolverBenchmarks();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (!metrics_out.empty()) {
    windim::obs::MetricsRegistry::global().set_enabled(true);
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!metrics_out.empty()) {
    const std::string json =
        windim::obs::MetricsRegistry::global().snapshot().to_json() + "\n";
    std::FILE* f = std::fopen(metrics_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", metrics_out.c_str());
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
  }
  return 0;
}
