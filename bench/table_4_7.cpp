// Reproduces thesis Table 4.7: effect of symmetrical class loadings on
// the optimal window settings for the 2-class network example (Fig 4.5).
//
// For each symmetric load S1 = S2 the WINDIM algorithm dimensions the
// windows (heuristic MVA + pattern search, Kleinrock initialization).
// Expected shape (thesis): optimal windows symmetric, shrinking from
// (5,5) to (2,2) as the load grows; maximum power increasing with load.
// The exhaustive column certifies the searched optimum over the
// [1,8]^2 box; the exact-MVA column prices the heuristic's bias.
#include <cstdio>
#include <limits>

#include "util/table.h"
#include "windim/windim.h"

int main() {
  using namespace windim;
  const net::Topology topology = net::canada_topology();

  // Thesis rows: S1, S2 (first row is 12 & 13 in the thesis).
  const double rows[][2] = {
      {12.0, 13.0}, {15.5, 15.5}, {18.0, 18.0},  {20.0, 20.0},
      {22.5, 22.5}, {25.0, 25.0}, {37.5, 37.5},  {50.0, 50.0},
      {62.5, 62.5}, {75.0, 75.0},
  };

  util::TextTable table({"S1", "S2", "S1+S2", "E_opt", "P_opt(heur)",
                         "E_exhaustive", "P(exact MVA)", "evals"});

  for (const auto& row : rows) {
    const core::WindowProblem problem(
        topology, net::two_class_traffic(row[0], row[1]));
    const core::DimensionResult result = core::dimension_windows(problem);

    // Exhaustive certification over the [1,8]^2 box (heuristic objective).
    const search::Objective objective = [&](const search::Point& e) {
      const core::Evaluation ev = problem.evaluate(e);
      return ev.power > 0.0 ? 1.0 / ev.power
                            : std::numeric_limits<double>::infinity();
    };
    const search::ExhaustiveResult exhaustive =
        search::exhaustive_search(objective, {1, 1}, {8, 8});

    // Exact power at the dimensioned windows.
    const core::Evaluation exact = problem.evaluate(
        result.optimal_windows, core::Evaluator::kExactMva);

    table.begin_row()
        .add(row[0], 1)
        .add(row[1], 1)
        .add(row[0] + row[1], 1)
        .add_window(result.optimal_windows)
        .add(result.evaluation.power, 1)
        .add_window(exhaustive.best)
        .add(exact.power, 1)
        .add(static_cast<long>(result.objective_evaluations));
  }

  std::printf("Table 4.7 - symmetric loadings, 2-class network\n");
  std::printf("(thesis: E_opt (5,5)->(2,2) shrinking, P_opt 159->196 "
              "growing with load)\n\n%s\n",
              table.render().c_str());
  return 0;
}
