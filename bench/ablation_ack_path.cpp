// Ablation A5: cost of the instantaneous-acknowledgment assumption.
//
// The thesis's closed-chain model returns window credits the instant a
// message is delivered.  Real windows wait for an acknowledgment that
// consumes reverse-channel capacity.  This bench simulates both on the
// 2-class network across window sizes and ack lengths.  Expected: light
// (100-bit) acks cost a few percent of throughput - the assumption is
// benign; data-sized acks halve the effective window and shift the
// optimal setting upward.
#include <cstdio>

#include "net/examples.h"
#include "sim/msgnet_sim.h"
#include "util/table.h"

int main() {
  using namespace windim;
  const net::Topology topology = net::canada_topology();
  const auto classes = net::two_class_traffic(25.0, 25.0);

  util::TextTable table({"window E", "thput instant", "thput ack=100b",
                         "thput ack=1000b", "delay instant (ms)",
                         "delay ack=1000b (ms)"});

  for (int e : {1, 2, 3, 4, 6, 8}) {
    sim::MsgNetOptions base;
    base.windows = {e, e};
    base.sim_time = 800.0;
    base.warmup = 80.0;
    base.seed = 17;

    sim::MsgNetOptions light = base;
    light.ack_mode = sim::AckMode::kReversePath;
    light.ack_bits = 100.0;

    sim::MsgNetOptions heavy = base;
    heavy.ack_mode = sim::AckMode::kReversePath;
    heavy.ack_bits = 1000.0;

    const sim::MsgNetResult a = sim::simulate_msgnet(topology, classes, base);
    const sim::MsgNetResult b =
        sim::simulate_msgnet(topology, classes, light);
    const sim::MsgNetResult c =
        sim::simulate_msgnet(topology, classes, heavy);

    table.begin_row()
        .add(e)
        .add(a.delivered_rate, 1)
        .add(b.delivered_rate, 1)
        .add(c.delivered_rate, 1)
        .add(a.mean_network_delay * 1000.0, 1)
        .add(c.mean_network_delay * 1000.0, 1);
  }

  std::printf("Ablation A5 - instantaneous vs reverse-path acknowledgments "
              "(simulated, S1=S2=25 msg/s)\n");
  std::printf("(expected: ~20%% loss even for tiny acks - credit return "
              "queues behind data on the shared half-duplex channels; "
              "data-sized acks roughly halve throughput)\n\n%s\n",
              table.render().c_str());
  return 0;
}
